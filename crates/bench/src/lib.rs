//! Benchmark-support crate.
//!
//! The actual benchmarks live in `benches/`, one per table or figure of the
//! paper's evaluation (§6); each prints the regenerated table to stdout and
//! measures the underlying operation with Criterion. This library exposes
//! the few helpers they share.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::FsSpec;
use b3_vfs::workload::Workload;

/// Runs one workload under CrashMonkey with a small device, panicking on
/// setup errors (benchmarks want the happy path).
pub fn test_workload(spec: &dyn FsSpec, workload: &Workload) -> WorkloadOutcome {
    CrashMonkey::with_config(spec, CrashMonkeyConfig::small())
        .test_workload(workload)
        .expect("benchmark workload runs")
}

/// True when `B3_BENCH_QUICK=1` (or any non-`0` value) is set: benches
/// shrink their workload samples and skip exact enumeration of the large
/// bounded spaces (the ROADMAP "Bench runtime budget" knob).
pub fn bench_quick() -> bool {
    matches!(std::env::var("B3_BENCH_QUICK"), Ok(v) if v != "0")
}

/// Caps a workload-sample size in quick mode.
pub fn sample_limit(full: usize) -> usize {
    if bench_quick() {
        full.min(500)
    } else {
        full
    }
}

/// The first `limit` workloads of `bounds`, generated once per process and
/// shared: several benches sample the same seq-1/seq-2 prefixes, and a full
/// `cargo bench` used to re-enumerate the space for each of them.
pub fn sample_workloads(bounds: &Bounds, limit: usize) -> Arc<Vec<Workload>> {
    type CacheKey = (String, usize);
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<Vec<Workload>>>>> = OnceLock::new();
    // The key must separate any two bounds that enumerate differently: the
    // ordered op list plus the Table 3 description (file set, patterns)
    // cover everything `describe()`-visible, and the prefix covers presets.
    let key = (
        format!(
            "{}/{:?}/{}/{:?}",
            bounds.name_prefix,
            bounds.ops,
            bounds.describe(),
            bounds.persistence
        ),
        limit,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("workload cache poisoned");
    Arc::clone(cache.entry(key).or_insert_with(|| {
        Arc::new(
            WorkloadGenerator::new(bounds.clone())
                .take(limit)
                .collect::<Vec<_>>(),
        )
    }))
}

/// A representative seq-2 workload used by the performance benchmarks.
pub fn representative_workload() -> Workload {
    b3_vfs::workload::parse_workload(
        "[setup]\nmkdir A\ncreat A/foo\n[ops]\nwrite A/foo 0 16384\nsync\nlink A/foo A/bar\nfsync A/foo\n",
        "bench-representative",
    )
    .expect("representative workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;

    #[test]
    fn representative_workload_runs_cleanly_on_patched_fs() {
        let spec = CowFsSpec::patched();
        let outcome = test_workload(&spec, &representative_workload());
        assert!(outcome.skipped.is_none());
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn sample_workloads_are_cached_per_bounds_and_limit() {
        let bounds = Bounds::paper_seq1();
        let first = sample_workloads(&bounds, 50);
        let second = sample_workloads(&bounds, 50);
        assert!(Arc::ptr_eq(&first, &second), "same sample must be shared");
        assert_eq!(first.len(), 50);
        let smaller = sample_workloads(&bounds, 10);
        assert_eq!(smaller.len(), 10);
        assert!(!Arc::ptr_eq(&first, &smaller));
    }
}
