//! Benchmark-support crate.
//!
//! The actual benchmarks live in `benches/`, one per table or figure of the
//! paper's evaluation (§6); each prints the regenerated table to stdout and
//! measures the underlying operation with Criterion. This library exposes
//! the few helpers they share.

use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::FsSpec;
use b3_vfs::workload::Workload;

/// Runs one workload under CrashMonkey with a small device, panicking on
/// setup errors (benchmarks want the happy path).
pub fn test_workload(spec: &dyn FsSpec, workload: &Workload) -> WorkloadOutcome {
    CrashMonkey::with_config(spec, CrashMonkeyConfig::small())
        .test_workload(workload)
        .expect("benchmark workload runs")
}

/// A representative seq-2 workload used by the performance benchmarks.
pub fn representative_workload() -> Workload {
    b3_vfs::workload::parse_workload(
        "[setup]\nmkdir A\ncreat A/foo\n[ops]\nwrite A/foo 0 16384\nsync\nlink A/foo A/bar\nfsync A/foo\n",
        "bench-representative",
    )
    .expect("representative workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;

    #[test]
    fn representative_workload_runs_cleanly_on_patched_fs() {
        let spec = CowFsSpec::patched();
        let outcome = test_workload(&spec, &representative_workload());
        assert!(outcome.skipped.is_none());
        assert!(outcome.bugs.is_empty());
    }
}
