//! §6.5 resource consumption.
//!
//! The paper reports ~20.12 MB of memory per CrashMonkey instance (dominated
//! by the copy-on-write wrapper device), ~480 KB of persistent storage per
//! workload, and negligible CPU. This bench accounts for the same
//! quantities on the simulator: copy-on-write overlay bytes of the
//! constructed crash states, recorded-IO bytes, and serialized workload
//! size, averaged over a sample of generated workloads.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_ace::Bounds;
use b3_bench::test_workload;
use b3_fs_cow::CowFsSpec;
use b3_harness::Table;
use b3_vfs::KernelEra;

fn print_resource_accounting() {
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let sample = b3_bench::sample_workloads(&Bounds::paper_seq2(), b3_bench::sample_limit(200));
    let mut overlay = 0u64;
    let mut recorded = 0u64;
    let mut storage = 0u64;
    let mut tested = 0u64;
    for workload in sample.iter() {
        let outcome = test_workload(&spec, workload);
        if outcome.skipped.is_some() {
            continue;
        }
        tested += 1;
        overlay += outcome.resource.crash_state_overlay_bytes;
        recorded += outcome.resource.recorded_io_bytes;
        storage += outcome.resource.workload_storage_bytes;
    }
    let mb = |bytes: u64| format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0));
    let kb = |bytes: u64| format!("{:.1} KB", bytes as f64 / 1024.0);

    println!("\n=== §6.5 resource consumption (average over {tested} seq-2 workloads) ===\n");
    let mut table = Table::new(vec!["resource", "measured (simulator)", "paper"]);
    table.row(vec![
        "crash-state copy-on-write memory".into(),
        mb(overlay / tested.max(1)),
        "20.12 MB average".into(),
    ]);
    table.row(vec![
        "recorded block IO per workload".into(),
        kb(recorded / tested.max(1)),
        "(dominated by the CoW device)".into(),
    ]);
    table.row(vec![
        "persistent storage per workload".into(),
        kb(storage / tested.max(1)),
        "480 KB".into(),
    ]);
    println!("{}", table.render());
}

fn bench(c: &mut Criterion) {
    print_resource_accounting();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let workload = b3_bench::representative_workload();
    c.bench_function("resources/workload_with_accounting", |b| {
        b.iter(|| criterion::black_box(test_workload(&spec, &workload)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
