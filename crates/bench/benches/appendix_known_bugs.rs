//! Appendix 9.1: the previously-reported bugs reproduced by CrashMonkey and
//! ACE, replayed from the corpus.
//!
//! Prints one row per known bug (workload, kernel era, detection result) and
//! measures the end-to-end cost of reproducing a representative entry.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_bench::test_workload;
use b3_harness::corpus::{known_bugs, ReproStatus};
use b3_harness::Table;

fn print_reproductions() {
    println!("\n=== Appendix 9.1: previously reported bugs ===\n");
    let mut table = Table::new(vec![
        "workload",
        "file system",
        "kernel",
        "status",
        "observed consequence",
    ]);
    let mut reproduced_unique = 0;
    for entry in known_bugs() {
        if !entry.is_runnable() {
            table.row(vec![
                entry.id.to_string(),
                entry.fs.paper_name().to_string(),
                entry.era.to_string(),
                "not reproduced (out of bounds)".to_string(),
                "-".to_string(),
            ]);
            continue;
        }
        let check = entry.replay().expect("corpus entry runs");
        if check.detected_expected && !entry.id.ends_with("-f2fs") {
            reproduced_unique += 1;
        }
        let status = match (check.detected_expected, entry.status) {
            (true, ReproStatus::Approximate) => "reproduced (adapted workload)",
            (true, _) => "reproduced",
            (false, _) => "NOT detected",
        };
        table.row(vec![
            entry.id.to_string(),
            entry.fs.paper_name().to_string(),
            entry.era.to_string(),
            status.to_string(),
            check
                .observed
                .map_or_else(|| "-".to_string(), |c| c.describe().to_string()),
        ]);
    }
    println!("{}", table.render());
    println!("reproduced {reproduced_unique} of 26 unique reported bugs (paper: 24 of 26)");
}

fn bench(c: &mut Criterion) {
    print_reproductions();
    let entry = known_bugs()
        .into_iter()
        .find(|e| e.id == "known-16")
        .expect("known-16 exists");
    let spec = entry.fs.spec(entry.era);
    let workload = entry.workload();
    c.bench_function("appendix/reproduce_known_16_end_to_end", |b| {
        b.iter(|| criterion::black_box(test_workload(spec.as_ref(), &workload)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
