//! §6.3 CrashMonkey performance: per-phase latency.
//!
//! The paper reports 4.6 s end-to-end per workload on real kernels, with 84%
//! of it being kernel-imposed mount/settle delays, ~20 ms to construct each
//! crash state and ~20 ms for the consistency checks. This bench measures
//! the same three phases on the simulator and prints both the measured
//! numbers and the modeled numbers with the kernel delays added back, so the
//! shape (delays dominate; construction and checking are cheap) is directly
//! comparable.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_bench::representative_workload;
use b3_crashmonkey::{AutoChecker, CrashMonkey, CrashMonkeyConfig};
use b3_fs_cow::CowFsSpec;
use b3_harness::Table;

fn print_phase_breakdown() {
    let spec = CowFsSpec::patched();
    let mut config = CrashMonkeyConfig::small();
    config.model_kernel_delays = true;
    let monkey = CrashMonkey::with_config(&spec, config);
    let workload = representative_workload();
    let outcome = monkey.test_workload(&workload).expect("workload runs");

    println!("\n=== §6.3 CrashMonkey performance (representative seq-2 workload) ===\n");
    let mut table = Table::new(vec![
        "phase",
        "measured (simulator)",
        "paper (real kernels)",
    ]);
    table.row(vec![
        "profiling".into(),
        format!("{:.1?}", outcome.timing.profile),
        "~3.9 s (84% kernel mount/settle delays)".into(),
    ]);
    table.row(vec![
        "crash-state construction".into(),
        format!("{:.1?}", outcome.timing.crash_state_construction),
        "20 ms per crash state".into(),
    ]);
    table.row(vec![
        "consistency checking".into(),
        format!("{:.1?}", outcome.timing.checking),
        "20 ms per crash state".into(),
    ]);
    table.row(vec![
        "end-to-end".into(),
        format!(
            "{:.1?} measured / {:.2} s modeled with kernel delays",
            outcome.timing.total,
            outcome.timing.modeled_total_seconds()
        ),
        "4.6 s".into(),
    ]);
    println!("{}", table.render());
}

fn bench(c: &mut Criterion) {
    print_phase_breakdown();
    let spec = CowFsSpec::patched();
    let config = CrashMonkeyConfig::small();
    let monkey = CrashMonkey::with_config(&spec, config);
    let workload = representative_workload();

    c.bench_function("crashmonkey/profile", |b| {
        b.iter(|| criterion::black_box(monkey.profile_only(&workload).unwrap()));
    });

    let profile = monkey.profile_only(&workload).unwrap();
    let last = profile.checkpoints.last().unwrap().id;
    c.bench_function("crashmonkey/construct_crash_state", |b| {
        b.iter(|| criterion::black_box(monkey.crash_state_for(&profile, last).unwrap()));
    });

    c.bench_function("crashmonkey/check_crash_state", |b| {
        b.iter(|| {
            let state = monkey.crash_state_for(&profile, last).unwrap();
            let checker = AutoChecker::new(&spec, monkey.config());
            let info = profile.checkpoints.last().unwrap();
            criterion::black_box(checker.check(&workload, &profile, info, state))
        });
    });

    c.bench_function("crashmonkey/end_to_end", |b| {
        b.iter(|| criterion::black_box(monkey.test_workload(&workload).unwrap()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
