//! Incremental crash-state recovery vs remount-from-scratch.
//!
//! Under `CrashPointPolicy::All` a workload contributes one crash state
//! per persistence point, and the recovery engine — not the profiler — is
//! the part that scales with the crash-state count. This bench compares
//! the two [`RecoveryMode`]s end to end on a representative seq-2
//! workload, plus the isolated recovery step (`RecoverySession` consuming
//! adjacent-state deltas vs `FsSpec::mount` per state). The committed
//! before/after trajectory lives in `BENCH_7.json` (emitted by
//! `examples/bench_recovery.rs`).

use criterion::{criterion_group, criterion_main, Criterion};

use b3_bench::representative_workload;
use b3_crashmonkey::{session_for, CrashMonkey, CrashMonkeyConfig, RecoveryMode, RecoverySession};
use b3_fs_cow::CowFsSpec;

fn config(recovery: RecoveryMode) -> CrashMonkeyConfig {
    CrashMonkeyConfig {
        recovery,
        ..CrashMonkeyConfig::exhaustive_crash_points()
    }
}

fn bench(c: &mut Criterion) {
    let spec = CowFsSpec::patched();
    let workload = representative_workload();

    for (label, mode) in [
        ("recovery/workload_remount", RecoveryMode::Remount),
        (
            "recovery/workload_patch_forward",
            RecoveryMode::PatchForward,
        ),
    ] {
        let monkey = CrashMonkey::with_config(&spec, config(mode));
        c.bench_function(label, |b| {
            b.iter(|| criterion::black_box(monkey.test_workload(&workload).unwrap()));
        });
    }

    // The recovery step in isolation: walk every crash state of one
    // profiled workload through a persistent (re-primed per iteration)
    // session, exactly as a sweep does per workload.
    let monkey = CrashMonkey::with_config(&spec, config(RecoveryMode::PatchForward));
    let profile = monkey.profile_only(&workload).unwrap();
    for (label, mode) in [
        ("recovery/states_remount", RecoveryMode::Remount),
        ("recovery/states_patch_forward", RecoveryMode::PatchForward),
    ] {
        let mut persistent = session_for(&spec, mode);
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut session = RecoverySession::new(
                    &spec,
                    &profile.base_image,
                    &profile.log,
                    persistent.as_mut(),
                );
                for info in &profile.checkpoints {
                    let (_, recovered) = session.recover_at(info.id).unwrap();
                    criterion::black_box(recovered.unwrap());
                }
            });
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
