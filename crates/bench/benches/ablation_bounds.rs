//! Ablation: how each B3 bound affects the size of the workload space
//! (§4.2 and the "Running ACE with relaxed bounds" discussion of §5.2).
//!
//! The paper's headline data point is that adding a single nested directory
//! to the file-set bound grows the seq-3 space ~2.5×. This bench quantifies
//! that, plus the effect of the operation-set and sequence-length bounds, by
//! counting candidate workloads analytically and (for the small spaces)
//! exactly, and compares the baselines: the xfstests-style regression suite
//! (26 tests) and random generation.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_harness::baseline::{xfstests_suite, RandomWorkloads};
use b3_harness::Table;
use b3_vfs::workload::OpKind;

fn print_ablation() {
    println!("\n=== Ablation: effect of each bound on the workload space ===\n");
    let mut table = Table::new(vec!["configuration", "candidate workloads"]);
    let rows: Vec<(&str, u64)> = vec![
        (
            "seq-1, paper bounds",
            WorkloadGenerator::estimate_candidates(&Bounds::paper_seq1()),
        ),
        (
            "seq-2, paper bounds",
            WorkloadGenerator::estimate_candidates(&Bounds::paper_seq2()),
        ),
        (
            "seq-3-metadata, paper bounds",
            WorkloadGenerator::estimate_candidates(&Bounds::paper_seq3_metadata()),
        ),
        (
            "seq-3-metadata, +1 nested directory (relaxed file set)",
            WorkloadGenerator::estimate_candidates(
                &Bounds::paper_seq3_metadata().with_nested_files(),
            ),
        ),
        (
            "seq-3-metadata, restricted to link+rename",
            WorkloadGenerator::estimate_candidates(
                &Bounds::paper_seq3_metadata().with_ops(vec![OpKind::Link, OpKind::Rename]),
            ),
        ),
        (
            "xfstests-style regression suite",
            xfstests_suite().len() as u64,
        ),
    ];
    for (label, count) in rows {
        table.row(vec![label.to_string(), count.to_string()]);
    }
    println!("{}", table.render());

    let base = WorkloadGenerator::estimate_candidates(&Bounds::paper_seq3_metadata());
    let relaxed =
        WorkloadGenerator::estimate_candidates(&Bounds::paper_seq3_metadata().with_nested_files());
    println!(
        "relaxing the file-set bound grows the seq-3-metadata space {:.1}x (paper: 2.5x)\n",
        relaxed as f64 / base as f64
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    c.bench_function("ablation/estimate_seq3_relaxed", |b| {
        b.iter(|| {
            criterion::black_box(WorkloadGenerator::estimate_candidates(
                &Bounds::paper_seq3_metadata().with_nested_files(),
            ))
        });
    });
    c.bench_function("ablation/random_generation_100", |b| {
        b.iter(|| {
            criterion::black_box(
                RandomWorkloads::new(Bounds::paper_seq2(), 11)
                    .take(100)
                    .count(),
            )
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
