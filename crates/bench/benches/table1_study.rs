//! Table 1 and Table 2: the §3 bug-study breakdowns.
//!
//! The tables are pure data (re-verified against the paper's totals by the
//! harness's unit tests); this bench prints them and measures the cost of
//! recomputing the breakdowns from the per-bug dataset.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_harness::study;

fn print_tables() {
    println!("\n=== Table 1: crash-consistency bug study ===\n");
    println!("{}", study::render_table1());
    println!("=== Table 2: example reported bugs ===\n");
    println!("{}", study::render_table2());
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("table1/breakdowns", |b| {
        b.iter(|| {
            let by_consequence = study::by_consequence();
            let by_version = study::by_kernel_version();
            let by_fs = study::by_file_system();
            let by_ops = study::by_num_ops();
            criterion::black_box((by_consequence, by_version, by_fs, by_ops))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
