//! §6.4 ACE performance: workload-generation throughput.
//!
//! The paper generates 3.37 M workloads in 374 minutes (~150 workloads per
//! second of single-threaded Python). This bench measures the Rust
//! generator's throughput over the exhaustive seq-1 space and a seq-2
//! prefix, prints the workloads-per-second figure, and also times workload
//! serialization (the "deploying workloads" cost of §6.4).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use b3_ace::{to_crashmonkey_test, Bounds, WorkloadGenerator};
use b3_harness::Table;

fn print_throughput() {
    println!("\n=== §6.4 ACE performance ===\n");
    let mut table = Table::new(vec!["bound", "workloads", "time", "workloads/s", "paper"]);
    let prefix = b3_bench::sample_limit(50_000);
    for (label, bounds, limit) in [
        ("seq-1 (exhaustive)", Bounds::paper_seq1(), usize::MAX),
        ("seq-2 (prefix)", Bounds::paper_seq2(), prefix),
        (
            "seq-3-metadata (prefix)",
            Bounds::paper_seq3_metadata(),
            prefix,
        ),
    ] {
        let start = Instant::now();
        let count = WorkloadGenerator::new(bounds).take(limit).count();
        let elapsed = start.elapsed();
        let rate = count as f64 / elapsed.as_secs_f64();
        table.row(vec![
            label.to_string(),
            count.to_string(),
            format!("{elapsed:.2?}"),
            format!("{rate:.0}"),
            "~150 workloads/s".to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn bench(c: &mut Criterion) {
    print_throughput();
    c.bench_function("ace/generate_1000_seq2_workloads", |b| {
        b.iter(|| {
            criterion::black_box(
                WorkloadGenerator::new(Bounds::paper_seq2())
                    .take(1000)
                    .count(),
            )
        });
    });
    let sample = b3_bench::sample_workloads(&Bounds::paper_seq2(), 1000);
    c.bench_function("ace/serialize_1000_workloads", |b| {
        b.iter(|| {
            let bytes: usize = sample
                .iter()
                .map(|w| to_crashmonkey_test(w).unwrap().len())
                .sum();
            criterion::black_box(bytes)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
