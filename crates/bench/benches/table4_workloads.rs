//! Table 4: workloads per sequence set and the time to generate/test them.
//!
//! Prints the bounds (Table 3), the number of workloads each preset expands
//! to (exact for seq-1/seq-2, analytically estimated for the seq-3 sets
//! unless `B3_EXACT_COUNTS=1` is set), and the measured testing throughput,
//! from which a projected "run time" column comparable to the paper's is
//! derived.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use b3_ace::{Bounds, SequencePreset, WorkloadGenerator};
use b3_bench::test_workload;
use b3_fs_cow::CowFsSpec;
use b3_harness::Table;
use b3_vfs::KernelEra;

fn count_for(preset: SequencePreset, exact: bool) -> (u64, &'static str) {
    let bounds = preset.bounds();
    // Quick mode only walks the 300-workload seq-1 space exactly; everything
    // else uses the analytic candidate count.
    let walk = match preset {
        SequencePreset::Seq1 => true,
        SequencePreset::Seq2 => exact || !b3_bench::bench_quick(),
        _ => exact,
    };
    if walk {
        (WorkloadGenerator::new(bounds).count() as u64, "exact")
    } else {
        (WorkloadGenerator::estimate_candidates(&bounds), "estimated")
    }
}

fn print_table4() {
    println!("\n=== Table 3: bounds used by ACE ===\n");
    for preset in SequencePreset::ALL {
        println!("{:>16}: {}", preset.name(), preset.bounds().describe());
    }

    // Measure single-workload testing latency to project run times.
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let sample = b3_bench::sample_workloads(&Bounds::paper_seq1(), 100);
    let start = Instant::now();
    for workload in sample.iter() {
        let _ = test_workload(&spec, workload);
    }
    let per_workload = start.elapsed() / sample.len() as u32;

    let exact = std::env::var("B3_EXACT_COUNTS").is_ok();
    println!("\n=== Table 4: workloads tested ===\n");
    let mut table = Table::new(vec![
        "sequence type",
        "# of workloads",
        "count mode",
        "projected run time (1 thread)",
        "paper (#)",
    ]);
    let paper = [
        ("seq-1", "300"),
        ("seq-2", "254K"),
        ("seq-3-data", "120K"),
        ("seq-3-metadata", "1.5M"),
        ("seq-3-nested", "1.5M"),
    ];
    let mut total = 0u64;
    for (preset, (_, paper_count)) in SequencePreset::ALL.into_iter().zip(paper) {
        let (count, mode) = count_for(preset, exact);
        total += count;
        let projected = per_workload * count.min(u64::from(u32::MAX)) as u32;
        table.row(vec![
            preset.name().to_string(),
            count.to_string(),
            mode.to_string(),
            format!("{projected:.0?}"),
            paper_count.to_string(),
        ]);
    }
    table.row(vec![
        "Total".into(),
        total.to_string(),
        String::new(),
        String::new(),
        "3.37M".into(),
    ]);
    println!("{}", table.render());
    println!(
        "measured CrashMonkey latency: {per_workload:.0?} per workload on the simulator \
         (the paper reports 4.6 s per workload on real kernels, 84% of it kernel delays)"
    );
}

fn bench(c: &mut Criterion) {
    print_table4();
    c.bench_function("table4/generate_seq1_exhaustive", |b| {
        b.iter(|| criterion::black_box(WorkloadGenerator::new(Bounds::paper_seq1()).count()));
    });
    c.bench_function("table4/generate_seq2_first_1000", |b| {
        b.iter(|| {
            criterion::black_box(
                WorkloadGenerator::new(Bounds::paper_seq2())
                    .take(1000)
                    .count(),
            )
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
