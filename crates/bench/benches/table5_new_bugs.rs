//! Table 5: the new bugs found by CrashMonkey and ACE.
//!
//! Replays every Table 5 / Appendix 9.2 corpus entry on its 4.16-era file
//! system, prints the regenerated table (consequence, #ops, detection), and
//! measures the cost of detecting one of the new bugs end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use b3_bench::test_workload;
use b3_harness::corpus::new_bugs;
use b3_harness::Table;

fn print_table5() {
    println!("\n=== Table 5: newly discovered bugs ===\n");
    let mut table = Table::new(vec![
        "bug #",
        "file system",
        "consequence (paper)",
        "# of ops",
        "detected",
        "observed consequence",
    ]);
    let mut detected = 0;
    let entries = new_bugs();
    for (i, entry) in entries.iter().enumerate() {
        let check = entry.replay().expect("corpus entry runs");
        if check.detected_expected {
            detected += 1;
        }
        table.row(vec![
            (i + 1).to_string(),
            entry.fs.paper_name().to_string(),
            entry.title.to_string(),
            entry.workload().sequence_length().to_string(),
            if check.detected_expected { "yes" } else { "NO" }.to_string(),
            check
                .observed
                .map_or_else(|| "-".to_string(), |c| c.describe().to_string()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "detected {detected} of {} new bugs (paper: 10 file-system bugs + 1 FSCQ bug)",
        entries.len()
    );
}

fn bench(c: &mut Criterion) {
    print_table5();
    let entries = new_bugs();
    let rename_atomicity = &entries[0];
    let spec = rename_atomicity.fs.spec(rename_atomicity.era);
    let workload = rename_atomicity.workload();
    c.bench_function("table5/detect_new_bug_1_end_to_end", |b| {
        b.iter(|| criterion::black_box(test_workload(spec.as_ref(), &workload)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
