//! The IO-recording wrapper device and its shared IO log.
//!
//! This is the userspace analogue of CrashMonkey's first kernel module
//! (§5.1 "Profiling workloads"): a wrapper block device that records every
//! write the target file system issues — sector, payload, and flags — and
//! into whose request stream CrashMonkey inserts *checkpoint* markers, one
//! per completed persistence operation, so that the low-level IO stream can
//! later be cut at exactly the persistence points.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::device::{BlockDevice, BlockIndex, BLOCK_SIZE};
use crate::error::BlockResult;
use crate::flags::IoFlags;
use crate::stats::DeviceStats;

/// Identifier of a checkpoint (persistence point) within a recorded run.
/// Checkpoints are numbered from 1 in the order they are inserted.
pub type CheckpointId = u32;

/// One entry in the recorded IO stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoRecord {
    /// A block write with its payload and flags.
    Write {
        /// Monotonic sequence number within the log.
        seq: u64,
        /// Destination block.
        index: BlockIndex,
        /// Payload (at most one block).
        data: Bytes,
        /// Request flags.
        flags: IoFlags,
    },
    /// An explicit cache flush.
    Flush {
        /// Monotonic sequence number within the log.
        seq: u64,
    },
    /// A CrashMonkey checkpoint marker: "an empty block IO request with a
    /// special flag, to correlate the completion of a persistence operation
    /// with the low-level block IO stream".
    Checkpoint {
        /// Monotonic sequence number within the log.
        seq: u64,
        /// Checkpoint number (1-based).
        id: CheckpointId,
    },
}

impl IoRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            IoRecord::Write { seq, .. }
            | IoRecord::Flush { seq }
            | IoRecord::Checkpoint { seq, .. } => *seq,
        }
    }

    /// Returns the checkpoint id if this record is a checkpoint marker.
    pub fn checkpoint_id(&self) -> Option<CheckpointId> {
        match self {
            IoRecord::Checkpoint { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Returns true for data/metadata writes.
    pub fn is_write(&self) -> bool {
        matches!(self, IoRecord::Write { .. })
    }
}

/// The complete recorded IO stream of one workload execution.
#[derive(Debug, Default, Clone)]
pub struct IoLog {
    records: Vec<IoRecord>,
    next_seq: u64,
    checkpoints: u32,
    /// Running number of write records appended so far.
    writes: usize,
    /// `checkpoint_writes[id - 1]` is the number of write records that
    /// precede checkpoint marker `id` — maintained on append so
    /// [`IoLog::writes_until_checkpoint`] is a lookup instead of a rescan.
    checkpoint_writes: Vec<usize>,
}

impl IoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        IoLog::default()
    }

    /// All records in arrival order.
    pub fn records(&self) -> &[IoRecord] {
        &self.records
    }

    /// Number of records of any kind.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of checkpoint markers recorded so far.
    pub fn num_checkpoints(&self) -> u32 {
        self.checkpoints
    }

    /// Total bytes of write payload recorded. The paper reports ~480 KB of
    /// persistent storage per workload (§6.5); this figure feeds that
    /// comparison.
    pub fn recorded_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                IoRecord::Write { data, .. } => data.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of write records between the start of the log and the given
    /// checkpoint (exclusive of later records). Unknown checkpoint ids count
    /// every write in the log.
    ///
    /// Checkpoint ids are assigned densely from 1 on append, so this is an
    /// O(1) index lookup; [`IoLog::writes_until_checkpoint_scanning`] is the
    /// reference implementation it must agree with.
    pub fn writes_until_checkpoint(&self, checkpoint: CheckpointId) -> usize {
        match checkpoint
            .checked_sub(1)
            .and_then(|i| self.checkpoint_writes.get(i as usize))
        {
            Some(count) => *count,
            None => self.writes,
        }
    }

    /// The pre-index implementation of [`IoLog::writes_until_checkpoint`]:
    /// a linear rescan of the record stream. Kept as the behavioural
    /// reference the O(1) index is tested against.
    pub fn writes_until_checkpoint_scanning(&self, checkpoint: CheckpointId) -> usize {
        let mut count = 0;
        for record in &self.records {
            match record {
                IoRecord::Checkpoint { id, .. } if *id == checkpoint => return count,
                IoRecord::Write { .. } => count += 1,
                _ => {}
            }
        }
        count
    }

    fn push_write(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.writes += 1;
        self.records.push(IoRecord::Write {
            seq,
            index,
            data: Bytes::copy_from_slice(data),
            flags,
        });
    }

    fn push_flush(&mut self) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(IoRecord::Flush { seq });
    }

    fn push_checkpoint(&mut self) -> CheckpointId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.checkpoints += 1;
        let id = self.checkpoints;
        self.checkpoint_writes.push(self.writes);
        self.records.push(IoRecord::Checkpoint { seq, id });
        id
    }
}

/// A cloneable handle onto the shared [`IoLog`] of a [`RecordingDevice`].
///
/// CrashMonkey keeps one of these while the file system under test owns the
/// device itself; the handle is how CrashMonkey inserts checkpoint markers
/// and later retrieves the recorded stream.
#[derive(Clone)]
pub struct LogHandle {
    log: Arc<Mutex<IoLog>>,
}

impl LogHandle {
    /// Inserts a checkpoint marker into the IO stream and returns its id.
    pub fn checkpoint(&self) -> CheckpointId {
        self.log.lock().push_checkpoint()
    }

    /// Returns a snapshot (clone) of the log at this instant.
    pub fn snapshot(&self) -> IoLog {
        self.log.lock().clone()
    }

    /// Number of checkpoints inserted so far.
    pub fn num_checkpoints(&self) -> u32 {
        self.log.lock().num_checkpoints()
    }

    /// Number of records of any kind.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// Total bytes of recorded write payload.
    pub fn recorded_bytes(&self) -> u64 {
        self.log.lock().recorded_bytes()
    }
}

impl std::fmt::Debug for LogHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let log = self.log.lock();
        f.debug_struct("LogHandle")
            .field("records", &log.len())
            .field("checkpoints", &log.num_checkpoints())
            .finish()
    }
}

/// The wrapper block device that records all IO passing through it.
pub struct RecordingDevice {
    inner: Box<dyn BlockDevice>,
    log: Arc<Mutex<IoLog>>,
}

impl RecordingDevice {
    /// Wraps `inner`, recording every write and flush into a fresh log.
    pub fn new(inner: Box<dyn BlockDevice>) -> Self {
        RecordingDevice {
            inner,
            log: Arc::new(Mutex::new(IoLog::new())),
        }
    }

    /// Returns a handle to the shared log. Call this before handing the
    /// device to the file system under test.
    pub fn log_handle(&self) -> LogHandle {
        LogHandle {
            log: Arc::clone(&self.log),
        }
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> Box<dyn BlockDevice> {
        self.inner
    }

    /// Access to the wrapped device (e.g. to freeze its final image).
    pub fn inner(&self) -> &dyn BlockDevice {
        self.inner.as_ref()
    }
}

impl std::fmt::Debug for RecordingDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingDevice")
            .field("num_blocks", &self.inner.num_blocks())
            .field("log", &self.log_handle())
            .finish()
    }
}

impl BlockDevice for RecordingDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        self.inner.read_block(index)
    }

    fn write_block(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()> {
        self.inner.write_block(index, data, flags)?;
        self.log.lock().push_write(index, data, flags);
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        self.inner.flush()?;
        self.log.lock().push_flush();
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

/// Ensures recorded payloads never exceed one block (mirrors the device
/// contract; useful in debug assertions elsewhere).
pub fn max_record_payload() -> usize {
    BLOCK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDisk;

    fn recording_ramdisk(blocks: u64) -> (RecordingDevice, LogHandle) {
        let device = RecordingDevice::new(Box::new(RamDisk::new(blocks)));
        let handle = device.log_handle();
        (device, handle)
    }

    #[test]
    fn writes_are_forwarded_and_recorded() {
        let (mut dev, log) = recording_ramdisk(16);
        dev.write_block(3, b"recorded", IoFlags::DATA).unwrap();
        assert_eq!(&dev.read_block(3).unwrap()[..8], b"recorded");
        let snapshot = log.snapshot();
        assert_eq!(snapshot.len(), 1);
        match &snapshot.records()[0] {
            IoRecord::Write {
                index, data, flags, ..
            } => {
                assert_eq!(*index, 3);
                assert_eq!(&data[..], b"recorded");
                assert!(flags.contains(IoFlags::DATA));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn flushes_and_checkpoints_are_recorded_in_order() {
        let (mut dev, log) = recording_ramdisk(16);
        dev.write_block(0, b"a", IoFlags::META).unwrap();
        dev.flush().unwrap();
        let cp1 = log.checkpoint();
        dev.write_block(1, b"b", IoFlags::META).unwrap();
        let cp2 = log.checkpoint();
        assert_eq!(cp1, 1);
        assert_eq!(cp2, 2);

        let snapshot = log.snapshot();
        assert_eq!(snapshot.num_checkpoints(), 2);
        let seqs: Vec<u64> = snapshot
            .records()
            .iter()
            .map(super::IoRecord::seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "records must be in arrival order");
    }

    #[test]
    fn writes_until_checkpoint_counts_prefix_writes() {
        let (mut dev, log) = recording_ramdisk(16);
        dev.write_block(0, b"a", IoFlags::META).unwrap();
        dev.write_block(1, b"b", IoFlags::META).unwrap();
        log.checkpoint();
        dev.write_block(2, b"c", IoFlags::META).unwrap();
        log.checkpoint();
        let snapshot = log.snapshot();
        assert_eq!(snapshot.writes_until_checkpoint(1), 2);
        assert_eq!(snapshot.writes_until_checkpoint(2), 3);
        // Unknown checkpoint: counts all writes.
        assert_eq!(snapshot.writes_until_checkpoint(9), 3);
    }

    #[test]
    fn writes_until_checkpoint_index_matches_scanning_reference() {
        let (mut dev, log) = recording_ramdisk(64);
        // An irregular interleaving: bare checkpoints, runs of writes,
        // flushes between markers, writes after the last marker.
        log.checkpoint();
        for i in 0..5u64 {
            dev.write_block(i, b"w", IoFlags::DATA).unwrap();
        }
        dev.flush().unwrap();
        log.checkpoint();
        log.checkpoint();
        dev.write_block(9, b"tail", IoFlags::META).unwrap();
        log.checkpoint();
        dev.write_block(10, b"post", IoFlags::META).unwrap();

        let snapshot = log.snapshot();
        // Checkpoint 0 is never assigned; 9 is unknown; both must agree
        // with the scan (which counts all writes for ids it never finds).
        for id in 0..=9 {
            assert_eq!(
                snapshot.writes_until_checkpoint(id),
                snapshot.writes_until_checkpoint_scanning(id),
                "checkpoint {id}"
            );
        }
        assert_eq!(snapshot.writes_until_checkpoint(1), 0);
        assert_eq!(snapshot.writes_until_checkpoint(4), 6);
        assert_eq!(snapshot.writes_until_checkpoint(9), 7);
    }

    #[test]
    fn recorded_bytes_sums_payloads() {
        let (mut dev, log) = recording_ramdisk(16);
        dev.write_block(0, &[1u8; 100], IoFlags::DATA).unwrap();
        dev.write_block(1, &[2u8; 200], IoFlags::DATA).unwrap();
        assert_eq!(log.recorded_bytes(), 300);
    }

    #[test]
    fn log_handle_survives_device_consumption() {
        let (mut dev, log) = recording_ramdisk(16);
        dev.write_block(0, b"kept", IoFlags::DATA).unwrap();
        let inner = dev.into_inner();
        assert_eq!(&inner.read_block(0).unwrap()[..4], b"kept");
        assert_eq!(log.len(), 1);
    }
}
