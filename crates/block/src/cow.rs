//! Copy-on-write snapshot device.
//!
//! CrashMonkey needs to construct many *crash states* from the same base
//! file-system image. The paper does this with an in-memory copy-on-write
//! block device kernel module: "resetting a snapshot to the base image simply
//! means dropping the modified data blocks, making it efficient" (§5.1).
//! [`CowSnapshotDevice`] is the userspace equivalent.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use crate::device::{check_read, check_write, pad_block, BlockDevice, BlockIndex, BLOCK_SIZE};
use crate::error::BlockResult;
use crate::flags::IoFlags;
use crate::stats::DeviceStats;

/// An immutable, reference-counted disk image.
///
/// Produced by [`RamDisk::snapshot`](crate::RamDisk::snapshot) (or
/// [`CowSnapshotDevice::freeze`]), and shared by any number of snapshots.
#[derive(Debug, Clone)]
pub struct DiskImage {
    blocks: Arc<HashMap<BlockIndex, Bytes>>,
    num_blocks: u64,
}

impl DiskImage {
    /// Wraps an existing block map as an immutable image.
    pub fn new(blocks: Arc<HashMap<BlockIndex, Bytes>>, num_blocks: u64) -> Self {
        DiskImage { blocks, num_blocks }
    }

    /// Creates an empty (all-zero) image of the given size.
    pub fn empty(num_blocks: u64) -> Self {
        DiskImage {
            blocks: Arc::new(HashMap::new()),
            num_blocks,
        }
    }

    /// Number of addressable blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Number of blocks with non-default contents.
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Reads one block from the image.
    pub fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        check_read(index, self.num_blocks)?;
        Ok(self
            .blocks
            .get(&index)
            .map(|b| b.to_vec())
            .unwrap_or_else(|| vec![0u8; BLOCK_SIZE]))
    }

    pub(crate) fn get(&self, index: BlockIndex) -> Option<&Bytes> {
        self.blocks.get(&index)
    }
}

/// A writable copy-on-write overlay on top of a [`DiskImage`].
///
/// Reads fall through to the base image unless the block has been overwritten
/// in the overlay. [`CowSnapshotDevice::reset`] drops the overlay, returning
/// the device to the base image in O(overlay) time.
#[derive(Debug, Clone)]
pub struct CowSnapshotDevice {
    base: DiskImage,
    overlay: HashMap<BlockIndex, Bytes>,
    stats: DeviceStats,
}

impl CowSnapshotDevice {
    /// Creates a snapshot of `base` with an empty overlay.
    pub fn new(base: DiskImage) -> Self {
        CowSnapshotDevice {
            base,
            overlay: HashMap::new(),
            stats: DeviceStats::new(),
        }
    }

    /// Drops all modifications, returning to the base image.
    pub fn reset(&mut self) {
        self.overlay.clear();
    }

    /// Number of blocks currently held in the copy-on-write overlay.
    pub fn overlay_blocks(&self) -> usize {
        self.overlay.len()
    }

    /// Approximate memory consumed by the overlay, in bytes. This is the
    /// quantity the paper's §6.5 memory-consumption numbers are about.
    pub fn overlay_bytes(&self) -> u64 {
        self.overlay.len() as u64 * BLOCK_SIZE as u64
    }

    /// Reference to the base image this snapshot overlays.
    pub fn base(&self) -> &DiskImage {
        &self.base
    }

    /// Freezes base + overlay into a new immutable [`DiskImage`].
    pub fn freeze(&self) -> DiskImage {
        let mut merged: HashMap<BlockIndex, Bytes> = (*self.base.blocks).clone();
        for (idx, block) in &self.overlay {
            merged.insert(*idx, block.clone());
        }
        DiskImage::new(Arc::new(merged), self.base.num_blocks)
    }
}

impl BlockDevice for CowSnapshotDevice {
    fn num_blocks(&self) -> u64 {
        self.base.num_blocks()
    }

    fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        check_read(index, self.num_blocks())?;
        if let Some(block) = self.overlay.get(&index) {
            return Ok(block.to_vec());
        }
        if let Some(block) = self.base.get(index) {
            return Ok(block.to_vec());
        }
        Ok(vec![0u8; BLOCK_SIZE])
    }

    fn write_block(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()> {
        check_write(index, self.num_blocks(), data)?;
        self.stats
            .record_write(data.len(), flags.contains(IoFlags::FUA));
        self.overlay.insert(index, Bytes::from(pad_block(data)));
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDisk;

    fn base_image() -> DiskImage {
        let mut disk = RamDisk::new(32);
        disk.write_block(0, b"base-block-0", IoFlags::META).unwrap();
        disk.write_block(5, b"base-block-5", IoFlags::DATA).unwrap();
        disk.snapshot()
    }

    #[test]
    fn reads_fall_through_to_base() {
        let snap = CowSnapshotDevice::new(base_image());
        assert_eq!(&snap.read_block(0).unwrap()[..12], b"base-block-0");
        assert!(snap.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn writes_shadow_base_without_mutating_it() {
        let image = base_image();
        let mut snap = CowSnapshotDevice::new(image.clone());
        snap.write_block(0, b"overlay!", IoFlags::DATA).unwrap();
        assert_eq!(&snap.read_block(0).unwrap()[..8], b"overlay!");
        assert_eq!(&image.read_block(0).unwrap()[..12], b"base-block-0");
        assert_eq!(snap.overlay_blocks(), 1);
    }

    #[test]
    fn reset_drops_overlay() {
        let mut snap = CowSnapshotDevice::new(base_image());
        snap.write_block(0, b"overlay!", IoFlags::DATA).unwrap();
        snap.write_block(20, b"new", IoFlags::DATA).unwrap();
        assert_eq!(snap.overlay_blocks(), 2);
        snap.reset();
        assert_eq!(snap.overlay_blocks(), 0);
        assert_eq!(&snap.read_block(0).unwrap()[..12], b"base-block-0");
        assert!(snap.read_block(20).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn freeze_merges_overlay_over_base() {
        let mut snap = CowSnapshotDevice::new(base_image());
        snap.write_block(5, b"frozen", IoFlags::DATA).unwrap();
        snap.write_block(7, b"extra", IoFlags::DATA).unwrap();
        let frozen = snap.freeze();
        assert_eq!(&frozen.read_block(5).unwrap()[..6], b"frozen");
        assert_eq!(&frozen.read_block(7).unwrap()[..5], b"extra");
        assert_eq!(&frozen.read_block(0).unwrap()[..12], b"base-block-0");
    }

    #[test]
    fn overlay_bytes_accounting() {
        let mut snap = CowSnapshotDevice::new(DiskImage::empty(64));
        for i in 0..10 {
            snap.write_block(i, b"x", IoFlags::DATA).unwrap();
        }
        assert_eq!(snap.overlay_bytes(), 10 * BLOCK_SIZE as u64);
    }

    #[test]
    fn multiple_snapshots_share_one_base() {
        let image = base_image();
        let mut a = CowSnapshotDevice::new(image.clone());
        let mut b = CowSnapshotDevice::new(image);
        a.write_block(0, b"from-a", IoFlags::DATA).unwrap();
        b.write_block(0, b"from-b", IoFlags::DATA).unwrap();
        assert_eq!(&a.read_block(0).unwrap()[..6], b"from-a");
        assert_eq!(&b.read_block(0).unwrap()[..6], b"from-b");
    }
}
