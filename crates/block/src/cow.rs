//! Copy-on-write snapshot device with layered (incremental) images.
//!
//! CrashMonkey needs to construct many *crash states* from the same base
//! file-system image. The paper does this with an in-memory copy-on-write
//! block device kernel module: "resetting a snapshot to the base image simply
//! means dropping the modified data blocks, making it efficient" (§5.1).
//! [`CowSnapshotDevice`] is the userspace equivalent.
//!
//! A [`DiskImage`] is a *stack* of immutable block layers: freezing a
//! snapshot produces a new image that records only the overlay and points at
//! its base, so adjacent crash states share every block of their common
//! replayed prefix instead of re-merging the whole map. Reads walk the chain
//! newest-layer first; the chain is flattened once it grows past
//! [`MAX_CHAIN_DEPTH`] so lookups stay O(1) amortized.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use crate::device::{check_read, check_write, pad_block, BlockDevice, BlockIndex, BLOCK_SIZE};
use crate::error::BlockResult;
use crate::flags::IoFlags;
use crate::stats::DeviceStats;

/// Chain length at which [`DiskImage::layered`] collapses the stack into a
/// single layer. Crash-state construction produces one layer per checkpoint,
/// and workloads have a handful of checkpoints, so flattening is rare; the
/// bound exists to keep pathological chains from degrading reads.
pub const MAX_CHAIN_DEPTH: u32 = 32;

/// An immutable, reference-counted disk image: one block layer plus an
/// optional parent image the layer shadows.
///
/// Produced by [`RamDisk::snapshot`](crate::RamDisk::snapshot) (a single
/// layer) or [`CowSnapshotDevice::freeze`] (a layer over the frozen base),
/// and shared by any number of snapshots. Cloning is O(1).
#[derive(Debug, Clone)]
pub struct DiskImage {
    layer: Arc<HashMap<BlockIndex, Bytes>>,
    parent: Option<Arc<DiskImage>>,
    num_blocks: u64,
    depth: u32,
}

impl DiskImage {
    /// Wraps an existing block map as a single-layer image.
    pub fn new(blocks: Arc<HashMap<BlockIndex, Bytes>>, num_blocks: u64) -> Self {
        DiskImage {
            layer: blocks,
            parent: None,
            num_blocks,
            depth: 0,
        }
    }

    /// Creates an empty (all-zero) image of the given size.
    pub fn empty(num_blocks: u64) -> Self {
        DiskImage::new(Arc::new(HashMap::new()), num_blocks)
    }

    /// True when both images are clones of one original (and therefore hold
    /// identical contents). Layers are immutable and every construction
    /// allocates a fresh layer `Arc`, so pointer identity of the top layer
    /// is a sound, O(1) content-identity witness — two independently built
    /// images never share it, however equal their bytes.
    pub fn ptr_eq(&self, other: &DiskImage) -> bool {
        Arc::ptr_eq(&self.layer, &other.layer)
    }

    /// Stacks `layer` on top of `parent` without copying the parent's
    /// blocks. Flattens the chain when it grows past [`MAX_CHAIN_DEPTH`].
    pub fn layered(parent: &DiskImage, layer: HashMap<BlockIndex, Bytes>) -> Self {
        let image = DiskImage {
            layer: Arc::new(layer),
            parent: Some(Arc::new(parent.clone())),
            num_blocks: parent.num_blocks,
            depth: parent.depth + 1,
        };
        if image.depth >= MAX_CHAIN_DEPTH {
            image.flatten()
        } else {
            image
        }
    }

    /// Collapses the layer chain into a single-layer image with identical
    /// contents.
    pub fn flatten(&self) -> DiskImage {
        let mut merged: HashMap<BlockIndex, Bytes> = HashMap::new();
        self.for_each_layer_oldest_first(&mut |layer| {
            for (index, block) in layer {
                merged.insert(*index, block.clone());
            }
        });
        DiskImage::new(Arc::new(merged), self.num_blocks)
    }

    fn for_each_layer_oldest_first(&self, f: &mut dyn FnMut(&HashMap<BlockIndex, Bytes>)) {
        if let Some(parent) = &self.parent {
            parent.for_each_layer_oldest_first(f);
        }
        f(&self.layer);
    }

    /// Number of addressable blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Number of layers stacked in this image (1 for a flat image).
    pub fn chain_depth(&self) -> u32 {
        self.depth + 1
    }

    /// Number of distinct blocks with non-default contents across all
    /// layers.
    pub fn allocated_blocks(&self) -> usize {
        if self.parent.is_none() {
            return self.layer.len();
        }
        let mut seen: std::collections::HashSet<BlockIndex> = std::collections::HashSet::new();
        self.for_each_layer_oldest_first(&mut |layer| seen.extend(layer.keys()));
        seen.len()
    }

    /// Reads one block from the image.
    pub fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        check_read(index, self.num_blocks)?;
        Ok(self
            .get(index)
            .map_or_else(|| vec![0u8; BLOCK_SIZE], |b| b.to_vec()))
    }

    pub(crate) fn get(&self, index: BlockIndex) -> Option<&Bytes> {
        let mut image = self;
        loop {
            if let Some(block) = image.layer.get(&index) {
                return Some(block);
            }
            match &image.parent {
                Some(parent) => image = parent,
                None => return None,
            }
        }
    }
}

/// A writable copy-on-write overlay on top of a [`DiskImage`].
///
/// Reads fall through to the base image unless the block has been overwritten
/// in the overlay. [`CowSnapshotDevice::reset`] drops the overlay, returning
/// the device to the base image in O(overlay) time.
#[derive(Debug, Clone)]
pub struct CowSnapshotDevice {
    base: DiskImage,
    overlay: HashMap<BlockIndex, Bytes>,
    stats: DeviceStats,
}

impl CowSnapshotDevice {
    /// Creates a snapshot of `base` with an empty overlay.
    pub fn new(base: DiskImage) -> Self {
        CowSnapshotDevice {
            base,
            overlay: HashMap::new(),
            stats: DeviceStats::new(),
        }
    }

    /// Drops all modifications, returning to the base image.
    pub fn reset(&mut self) {
        self.overlay.clear();
    }

    /// Number of blocks currently held in the copy-on-write overlay.
    pub fn overlay_blocks(&self) -> usize {
        self.overlay.len()
    }

    /// Approximate memory consumed by the overlay, in bytes. This is the
    /// quantity the paper's §6.5 memory-consumption numbers are about.
    pub fn overlay_bytes(&self) -> u64 {
        self.overlay.len() as u64 * BLOCK_SIZE as u64
    }

    /// Reference to the base image this snapshot overlays.
    pub fn base(&self) -> &DiskImage {
        &self.base
    }

    /// Freezes base + overlay into a new immutable [`DiskImage`].
    ///
    /// O(overlay): the new image stacks the overlay as a layer over the
    /// (shared, uncopied) base instead of merging the base's block map.
    pub fn freeze(&self) -> DiskImage {
        DiskImage::layered(&self.base, self.overlay.clone())
    }

    /// Freezes base + overlay and makes the frozen image this device's new
    /// base, leaving the overlay empty. Subsequent writes accumulate a fresh
    /// layer on top — the primitive incremental crash-state construction is
    /// built on: each checkpoint's image shares the replayed prefix of every
    /// earlier checkpoint.
    pub fn commit(&mut self) -> DiskImage {
        let overlay = std::mem::take(&mut self.overlay);
        let image = DiskImage::layered(&self.base, overlay);
        self.base = image.clone();
        image
    }
}

impl BlockDevice for CowSnapshotDevice {
    fn num_blocks(&self) -> u64 {
        self.base.num_blocks()
    }

    fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        check_read(index, self.num_blocks())?;
        if let Some(block) = self.overlay.get(&index) {
            return Ok(block.to_vec());
        }
        if let Some(block) = self.base.get(index) {
            return Ok(block.to_vec());
        }
        Ok(vec![0u8; BLOCK_SIZE])
    }

    fn write_block(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()> {
        check_write(index, self.num_blocks(), data)?;
        self.stats
            .record_write(data.len(), flags.contains(IoFlags::FUA));
        self.overlay.insert(index, Bytes::from(pad_block(data)));
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn freeze_image(&self) -> Option<DiskImage> {
        Some(self.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDisk;

    fn base_image() -> DiskImage {
        let mut disk = RamDisk::new(32);
        disk.write_block(0, b"base-block-0", IoFlags::META).unwrap();
        disk.write_block(5, b"base-block-5", IoFlags::DATA).unwrap();
        disk.snapshot()
    }

    #[test]
    fn reads_fall_through_to_base() {
        let snap = CowSnapshotDevice::new(base_image());
        assert_eq!(&snap.read_block(0).unwrap()[..12], b"base-block-0");
        assert!(snap.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn writes_shadow_base_without_mutating_it() {
        let image = base_image();
        let mut snap = CowSnapshotDevice::new(image.clone());
        snap.write_block(0, b"overlay!", IoFlags::DATA).unwrap();
        assert_eq!(&snap.read_block(0).unwrap()[..8], b"overlay!");
        assert_eq!(&image.read_block(0).unwrap()[..12], b"base-block-0");
        assert_eq!(snap.overlay_blocks(), 1);
    }

    #[test]
    fn reset_drops_overlay() {
        let mut snap = CowSnapshotDevice::new(base_image());
        snap.write_block(0, b"overlay!", IoFlags::DATA).unwrap();
        snap.write_block(20, b"new", IoFlags::DATA).unwrap();
        assert_eq!(snap.overlay_blocks(), 2);
        snap.reset();
        assert_eq!(snap.overlay_blocks(), 0);
        assert_eq!(&snap.read_block(0).unwrap()[..12], b"base-block-0");
        assert!(snap.read_block(20).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn freeze_layers_overlay_over_base() {
        let mut snap = CowSnapshotDevice::new(base_image());
        snap.write_block(5, b"frozen", IoFlags::DATA).unwrap();
        snap.write_block(7, b"extra", IoFlags::DATA).unwrap();
        let frozen = snap.freeze();
        assert_eq!(&frozen.read_block(5).unwrap()[..6], b"frozen");
        assert_eq!(&frozen.read_block(7).unwrap()[..5], b"extra");
        assert_eq!(&frozen.read_block(0).unwrap()[..12], b"base-block-0");
        // The frozen image shares the base instead of copying it.
        assert_eq!(frozen.chain_depth(), 2);
        assert_eq!(frozen.allocated_blocks(), 3);
    }

    #[test]
    fn commit_accumulates_layers_sharing_the_prefix() {
        let mut snap = CowSnapshotDevice::new(base_image());
        snap.write_block(1, b"cp1", IoFlags::DATA).unwrap();
        let first = snap.commit();
        assert_eq!(snap.overlay_blocks(), 0);
        snap.write_block(2, b"cp2", IoFlags::DATA).unwrap();
        let second = snap.commit();

        assert_eq!(&first.read_block(1).unwrap()[..3], b"cp1");
        assert!(first.read_block(2).unwrap().iter().all(|&b| b == 0));
        assert_eq!(&second.read_block(1).unwrap()[..3], b"cp1");
        assert_eq!(&second.read_block(2).unwrap()[..3], b"cp2");
        assert_eq!(second.chain_depth(), first.chain_depth() + 1);
    }

    #[test]
    fn deep_chains_flatten_and_preserve_contents() {
        let mut snap = CowSnapshotDevice::new(DiskImage::empty(64));
        let mut images = Vec::new();
        for i in 0..(MAX_CHAIN_DEPTH as u64 + 8) {
            snap.write_block(i % 64, format!("layer-{i}").as_bytes(), IoFlags::DATA)
                .unwrap();
            images.push(snap.commit());
        }
        let last = images.last().unwrap();
        assert!(last.chain_depth() <= MAX_CHAIN_DEPTH + 1);
        // Later layers win for the blocks they overwrote.
        let block = last.read_block((MAX_CHAIN_DEPTH as u64 + 7) % 64).unwrap();
        assert!(block.starts_with(format!("layer-{}", MAX_CHAIN_DEPTH as u64 + 7).as_bytes()));

        let flat = last.flatten();
        assert_eq!(flat.chain_depth(), 1);
        for i in 0..64 {
            assert_eq!(flat.read_block(i).unwrap(), last.read_block(i).unwrap());
        }
    }

    #[test]
    fn overlay_bytes_accounting() {
        let mut snap = CowSnapshotDevice::new(DiskImage::empty(64));
        for i in 0..10 {
            snap.write_block(i, b"x", IoFlags::DATA).unwrap();
        }
        assert_eq!(snap.overlay_bytes(), 10 * BLOCK_SIZE as u64);
    }

    #[test]
    fn multiple_snapshots_share_one_base() {
        let image = base_image();
        let mut a = CowSnapshotDevice::new(image.clone());
        let mut b = CowSnapshotDevice::new(image);
        a.write_block(0, b"from-a", IoFlags::DATA).unwrap();
        b.write_block(0, b"from-b", IoFlags::DATA).unwrap();
        assert_eq!(&a.read_block(0).unwrap()[..6], b"from-a");
        assert_eq!(&b.read_block(0).unwrap()[..6], b"from-b");
    }
}
