//! Simulated block-device substrate for the B3 crash-testing framework.
//!
//! The original CrashMonkey implementation (OSDI '18) uses two Linux kernel
//! modules: a *wrapper block device* that records every block IO request a
//! workload generates (including persistence-point "checkpoint" markers), and
//! an in-memory *copy-on-write block device* that provides cheap writable
//! snapshots from which crash states are constructed by replaying recorded IO.
//!
//! This crate provides the userspace equivalents of both modules, plus the
//! RAM-backed disk they sit on:
//!
//! * [`RamDisk`] — a fixed-size, RAM-backed block device.
//! * [`RecordingDevice`] — a wrapper device that forwards IO to an inner
//!   device while appending every write, flush, and checkpoint to a shared
//!   [`IoLog`].
//! * [`CowSnapshotDevice`] — a copy-on-write overlay over an immutable
//!   [`DiskImage`]; resetting a snapshot simply drops the overlay.
//! * [`replay`] — utilities that replay a recorded [`IoLog`] up to a chosen
//!   checkpoint onto a fresh snapshot, producing the *crash state* the paper
//!   describes.
//!
//! All file systems in this workspace speak to storage exclusively through
//! the object-safe [`BlockDevice`] trait, which keeps CrashMonkey strictly
//! black-box with respect to the file system under test.

pub mod cow;
pub mod device;
pub mod error;
pub mod flags;
pub mod ramdisk;
pub mod record;
pub mod replay;
pub mod stats;

pub use cow::{CowSnapshotDevice, DiskImage, MAX_CHAIN_DEPTH};
pub use device::{BlockDevice, BlockIndex, BLOCK_SIZE};
pub use error::{BlockError, BlockResult};
pub use flags::IoFlags;
pub use ramdisk::RamDisk;
pub use record::{CheckpointId, IoLog, IoRecord, LogHandle, RecordingDevice};
pub use replay::{
    crash_state, replay_log, replay_until_checkpoint, CrashStateStep, CrashStateStream, StateDelta,
};
pub use stats::DeviceStats;
