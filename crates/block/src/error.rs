//! Error type for block-device operations.

use std::fmt;

/// Result alias used throughout the block layer.
pub type BlockResult<T> = Result<T, BlockError>;

/// Errors produced by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// A read or write addressed a block beyond the end of the device.
    OutOfRange {
        /// The offending block index.
        index: u64,
        /// The number of blocks on the device.
        num_blocks: u64,
    },
    /// A write supplied more than [`BLOCK_SIZE`](crate::BLOCK_SIZE) bytes.
    OversizedWrite {
        /// The length of the rejected payload.
        len: usize,
    },
    /// The device has been marked read-only (e.g. a frozen base image).
    ReadOnly,
    /// The device was disconnected mid-operation (used for fault injection).
    Disconnected,
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange { index, num_blocks } => write!(
                f,
                "block index {index} out of range for device with {num_blocks} blocks"
            ),
            BlockError::OversizedWrite { len } => {
                write!(f, "write of {len} bytes exceeds block size")
            }
            BlockError::ReadOnly => write!(f, "device is read-only"),
            BlockError::Disconnected => write!(f, "device is disconnected"),
        }
    }
}

impl std::error::Error for BlockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_range() {
        let err = BlockError::OutOfRange {
            index: 10,
            num_blocks: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains("4"));
    }

    #[test]
    fn display_oversized() {
        let err = BlockError::OversizedWrite { len: 9000 };
        assert!(err.to_string().contains("9000"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&BlockError::ReadOnly);
    }
}
