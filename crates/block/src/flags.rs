//! IO request flags.
//!
//! These mirror the subset of Linux block-layer request flags that matter for
//! crash-consistency testing: whether a request carries data or metadata,
//! whether it is a barrier/flush, whether it is forced-unit-access (FUA), and
//! whether it is one of CrashMonkey's synthetic *checkpoint* markers inserted
//! at persistence points.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A small hand-rolled bit-flag set describing one block IO request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IoFlags(u16);

impl IoFlags {
    /// No flags set.
    pub const NONE: IoFlags = IoFlags(0);
    /// The request writes data blocks (file contents).
    pub const DATA: IoFlags = IoFlags(1 << 0);
    /// The request writes metadata blocks (inodes, trees, journals, …).
    pub const META: IoFlags = IoFlags(1 << 1);
    /// The request asks the device to flush its volatile cache first
    /// (`REQ_PREFLUSH`).
    pub const FLUSH: IoFlags = IoFlags(1 << 2);
    /// Forced unit access: the write must reach stable media before the
    /// request completes (`REQ_FUA`).
    pub const FUA: IoFlags = IoFlags(1 << 3);
    /// The request is synchronous (issued from an fsync-like path).
    pub const SYNC: IoFlags = IoFlags(1 << 4);
    /// CrashMonkey checkpoint marker: an empty request correlating the
    /// completion of a persistence operation with the block IO stream.
    pub const CHECKPOINT: IoFlags = IoFlags(1 << 5);
    /// Journal / log commit block (useful when eyeballing recorded traces).
    pub const COMMIT: IoFlags = IoFlags(1 << 6);

    /// Returns true if every flag in `other` is also set in `self`.
    pub fn contains(self, other: IoFlags) -> bool {
        (self.0 & other.0) == other.0
    }

    /// Returns true if no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the raw bit representation.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs flags from raw bits (unknown bits are preserved).
    pub fn from_bits(bits: u16) -> IoFlags {
        IoFlags(bits)
    }
}

impl BitOr for IoFlags {
    type Output = IoFlags;
    fn bitor(self, rhs: IoFlags) -> IoFlags {
        IoFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for IoFlags {
    fn bitor_assign(&mut self, rhs: IoFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for IoFlags {
    type Output = IoFlags;
    fn bitand(self, rhs: IoFlags) -> IoFlags {
        IoFlags(self.0 & rhs.0)
    }
}

impl fmt::Debug for IoFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (flag, name) in [
            (IoFlags::DATA, "DATA"),
            (IoFlags::META, "META"),
            (IoFlags::FLUSH, "FLUSH"),
            (IoFlags::FUA, "FUA"),
            (IoFlags::SYNC, "SYNC"),
            (IoFlags::CHECKPOINT, "CHECKPOINT"),
            (IoFlags::COMMIT, "COMMIT"),
        ] {
            if self.contains(flag) {
                names.push(name);
            }
        }
        if names.is_empty() {
            write!(f, "NONE")
        } else {
            write!(f, "{}", names.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_and_contains() {
        let flags = IoFlags::DATA | IoFlags::FUA;
        assert!(flags.contains(IoFlags::DATA));
        assert!(flags.contains(IoFlags::FUA));
        assert!(!flags.contains(IoFlags::META));
        assert!(flags.contains(IoFlags::DATA | IoFlags::FUA));
        assert!(!flags.contains(IoFlags::DATA | IoFlags::META));
    }

    #[test]
    fn or_assign() {
        let mut flags = IoFlags::NONE;
        assert!(flags.is_empty());
        flags |= IoFlags::FLUSH;
        assert!(flags.contains(IoFlags::FLUSH));
        assert!(!flags.is_empty());
    }

    #[test]
    fn debug_formatting() {
        let flags = IoFlags::META | IoFlags::FLUSH | IoFlags::FUA;
        let s = format!("{flags:?}");
        assert_eq!(s, "META|FLUSH|FUA");
        assert_eq!(format!("{:?}", IoFlags::NONE), "NONE");
    }

    #[test]
    fn round_trip_bits() {
        let flags = IoFlags::CHECKPOINT | IoFlags::SYNC;
        assert_eq!(IoFlags::from_bits(flags.bits()), flags);
    }
}
