//! A RAM-backed block device.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use crate::cow::DiskImage;
use crate::device::{check_read, check_write, pad_block, BlockDevice, BlockIndex, BLOCK_SIZE};
use crate::error::BlockResult;
use crate::flags::IoFlags;
use crate::stats::DeviceStats;

/// A sparse, RAM-backed block device.
///
/// Blocks are stored in a hash map keyed by block index; unwritten blocks
/// read as zeroes, which keeps even a "100 MB" device (the paper's initial
/// file-system image size, Table 3) cheap to instantiate.
#[derive(Debug, Clone)]
pub struct RamDisk {
    blocks: HashMap<BlockIndex, Bytes>,
    num_blocks: u64,
    stats: DeviceStats,
}

impl RamDisk {
    /// Creates a device with `num_blocks` blocks of [`BLOCK_SIZE`] bytes.
    pub fn new(num_blocks: u64) -> Self {
        RamDisk {
            blocks: HashMap::new(),
            num_blocks,
            stats: DeviceStats::new(),
        }
    }

    /// Creates a device of the paper's default size: a 100 MB image
    /// (Table 3, "initial file-system state").
    pub fn paper_default() -> Self {
        RamDisk::new(100 * 1024 * 1024 / BLOCK_SIZE as u64)
    }

    /// Number of blocks that have actually been written (sparse footprint).
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Approximate resident memory used by block payloads, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.blocks.len() as u64 * BLOCK_SIZE as u64
    }

    /// Freezes the current contents into an immutable [`DiskImage`] that can
    /// back any number of copy-on-write snapshots.
    pub fn snapshot(&self) -> DiskImage {
        DiskImage::new(Arc::new(self.blocks.clone()), self.num_blocks)
    }
}

impl BlockDevice for RamDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>> {
        check_read(index, self.num_blocks)?;
        Ok(self
            .blocks
            .get(&index)
            .map_or_else(|| vec![0u8; BLOCK_SIZE], |b| b.to_vec()))
    }

    fn write_block(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()> {
        check_write(index, self.num_blocks, data)?;
        self.stats
            .record_write(data.len(), flags.contains(IoFlags::FUA));
        self.blocks.insert(index, Bytes::from(pad_block(data)));
        Ok(())
    }

    fn flush(&mut self) -> BlockResult<()> {
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn freeze_image(&self) -> Option<crate::DiskImage> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BlockError;

    #[test]
    fn unwritten_blocks_read_zero() {
        let disk = RamDisk::new(16);
        let block = disk.read_block(3).unwrap();
        assert_eq!(block.len(), BLOCK_SIZE);
        assert!(block.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut disk = RamDisk::new(16);
        disk.write_block(7, b"payload", IoFlags::DATA).unwrap();
        let block = disk.read_block(7).unwrap();
        assert_eq!(&block[..7], b"payload");
        assert_eq!(disk.allocated_blocks(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut disk = RamDisk::new(4);
        assert!(matches!(
            disk.read_block(4),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            disk.write_block(9, b"x", IoFlags::NONE),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn multi_block_helpers() {
        let mut disk = RamDisk::new(16);
        let data = vec![0xabu8; BLOCK_SIZE + 100];
        disk.write_blocks(2, &data, IoFlags::DATA).unwrap();
        let read = disk.read_blocks(2, 2).unwrap();
        assert_eq!(&read[..data.len()], &data[..]);
        assert!(read[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn snapshot_is_independent_of_later_writes() {
        let mut disk = RamDisk::new(8);
        disk.write_block(0, b"before", IoFlags::META).unwrap();
        let image = disk.snapshot();
        disk.write_block(0, b"after!", IoFlags::META).unwrap();
        assert_eq!(&image.read_block(0).unwrap()[..6], b"before");
        assert_eq!(&disk.read_block(0).unwrap()[..6], b"after!");
    }

    #[test]
    fn stats_track_writes_and_flushes() {
        let mut disk = RamDisk::new(8);
        disk.write_block(0, b"abc", IoFlags::FUA).unwrap();
        disk.write_block(1, b"defg", IoFlags::NONE).unwrap();
        disk.flush().unwrap();
        let stats = disk.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.bytes_written, 7);
        assert_eq!(stats.fua_writes, 1);
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn paper_default_is_100mb() {
        let disk = RamDisk::paper_default();
        assert_eq!(disk.size_bytes(), 100 * 1024 * 1024);
    }
}
