//! The object-safe [`BlockDevice`] trait.

use crate::error::{BlockError, BlockResult};
use crate::flags::IoFlags;
use crate::stats::DeviceStats;

/// Size of one logical block, in bytes. All file systems in this workspace
/// use 4 KiB blocks, matching the page size the paper's file systems use.
pub const BLOCK_SIZE: usize = 4096;

/// Index of a block on a device.
pub type BlockIndex = u64;

/// An object-safe block device.
///
/// File systems own a `Box<dyn BlockDevice>` and perform all persistence
/// through it; CrashMonkey interposes a [`RecordingDevice`](crate::RecordingDevice)
/// without the file system being aware of it — exactly the black-box contract
/// of the paper.
pub trait BlockDevice: Send {
    /// Total number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Reads one block. Blocks that were never written read as zeroes.
    fn read_block(&self, index: BlockIndex) -> BlockResult<Vec<u8>>;

    /// Writes one block. `data` may be shorter than [`BLOCK_SIZE`]; the
    /// remainder of the block is zero-filled. Longer payloads are rejected.
    fn write_block(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()>;

    /// Flushes the device's volatile write cache.
    fn flush(&mut self) -> BlockResult<()>;

    /// Cumulative IO statistics for this device.
    fn stats(&self) -> DeviceStats;

    /// Reads `count` consecutive blocks starting at `index` into one buffer.
    fn read_blocks(&self, index: BlockIndex, count: u64) -> BlockResult<Vec<u8>> {
        let mut out = Vec::with_capacity((count as usize) * BLOCK_SIZE);
        for i in 0..count {
            out.extend_from_slice(&self.read_block(index + i)?);
        }
        Ok(out)
    }

    /// Writes `data` across consecutive blocks starting at `index`. The last
    /// block is zero-padded.
    fn write_blocks(&mut self, index: BlockIndex, data: &[u8], flags: IoFlags) -> BlockResult<()> {
        for (i, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
            self.write_block(index + i as u64, chunk, flags)?;
        }
        Ok(())
    }

    /// Capacity of the device in bytes.
    fn size_bytes(&self) -> u64 {
        self.num_blocks() * BLOCK_SIZE as u64
    }

    /// Freezes the device's current contents into an immutable
    /// [`DiskImage`](crate::DiskImage), when the implementation supports it.
    /// Used to capture a formatted file system once and re-mount snapshots
    /// of it for every workload instead of re-running mkfs.
    fn freeze_image(&self) -> Option<crate::DiskImage> {
        None
    }
}

/// Validates the common preconditions shared by all device implementations.
pub(crate) fn check_write(index: BlockIndex, num_blocks: u64, data: &[u8]) -> BlockResult<()> {
    if index >= num_blocks {
        return Err(BlockError::OutOfRange { index, num_blocks });
    }
    if data.len() > BLOCK_SIZE {
        return Err(BlockError::OversizedWrite { len: data.len() });
    }
    Ok(())
}

/// Validates a read address.
pub(crate) fn check_read(index: BlockIndex, num_blocks: u64) -> BlockResult<()> {
    if index >= num_blocks {
        return Err(BlockError::OutOfRange { index, num_blocks });
    }
    Ok(())
}

/// Pads or copies `data` into a fresh [`BLOCK_SIZE`] buffer.
pub(crate) fn pad_block(data: &[u8]) -> Vec<u8> {
    let mut block = vec![0u8; BLOCK_SIZE];
    block[..data.len()].copy_from_slice(data);
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_block_zero_fills() {
        let block = pad_block(b"hello");
        assert_eq!(block.len(), BLOCK_SIZE);
        assert_eq!(&block[..5], b"hello");
        assert!(block[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn check_write_rejects_out_of_range() {
        assert_eq!(
            check_write(5, 5, &[0u8; 10]),
            Err(BlockError::OutOfRange {
                index: 5,
                num_blocks: 5
            })
        );
    }

    #[test]
    fn check_write_rejects_oversized() {
        let big = vec![0u8; BLOCK_SIZE + 1];
        assert_eq!(
            check_write(0, 5, &big),
            Err(BlockError::OversizedWrite {
                len: BLOCK_SIZE + 1
            })
        );
    }

    #[test]
    fn check_read_bounds() {
        assert!(check_read(4, 5).is_ok());
        assert!(check_read(5, 5).is_err());
    }
}
