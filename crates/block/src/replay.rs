//! Replaying recorded IO to construct crash states.
//!
//! "To create a crash state, CrashMonkey starts from the initial state of the
//! file system (before the workload was run), and uses a utility similar to
//! dd to replay all recorded IO requests from the start of the workload until
//! the next checkpoint in the IO stream." (§5.1)

use crate::cow::{CowSnapshotDevice, DiskImage};
use crate::device::BlockDevice;
use crate::error::BlockResult;
use crate::record::{CheckpointId, IoLog, IoRecord};

/// Replays every record of `log` onto `target`.
pub fn replay_log(log: &IoLog, target: &mut dyn BlockDevice) -> BlockResult<usize> {
    replay_records(log.records(), target)
}

/// Replays `log` onto `target`, stopping immediately after the checkpoint
/// marker with id `checkpoint` (i.e. the resulting state contains exactly the
/// writes that had reached the device when that persistence operation
/// completed). Returns the number of write records applied.
pub fn replay_until_checkpoint(
    log: &IoLog,
    checkpoint: CheckpointId,
    target: &mut dyn BlockDevice,
) -> BlockResult<usize> {
    let mut applied = 0;
    for record in log.records() {
        match record {
            IoRecord::Write {
                index, data, flags, ..
            } => {
                target.write_block(*index, data, *flags)?;
                applied += 1;
            }
            IoRecord::Flush { .. } => target.flush()?,
            IoRecord::Checkpoint { id, .. } => {
                if *id == checkpoint {
                    return Ok(applied);
                }
            }
        }
    }
    Ok(applied)
}

/// Constructs the crash state for `checkpoint`: a fresh copy-on-write
/// snapshot of `base` with the recorded IO replayed up to that checkpoint.
///
/// The returned device "represents the state of the storage just after the
/// persistence-related call completed on the storage device" and is
/// considered uncleanly unmounted; mounting a file system on it will trigger
/// that file system's recovery code.
///
/// Each call replays the log from the start; when constructing crash states
/// for several checkpoints of one recorded run, prefer
/// [`CrashStateStream`], which replays every record exactly once.
pub fn crash_state(
    base: &DiskImage,
    log: &IoLog,
    checkpoint: CheckpointId,
) -> BlockResult<CowSnapshotDevice> {
    let mut snapshot = CowSnapshotDevice::new(base.clone());
    replay_until_checkpoint(log, checkpoint, &mut snapshot)?;
    Ok(snapshot)
}

/// Incremental crash-state construction over one recorded run.
///
/// [`crash_state`] replays the whole prefix of the log for every checkpoint,
/// so constructing the states of checkpoints 1..n replays O(n²) records and
/// each state carries its own copy of the replayed blocks. The stream
/// instead replays every record exactly once: after reaching a checkpoint it
/// freezes the accumulated writes into a new [`DiskImage`] layer
/// ([`CowSnapshotDevice::commit`]) and hands out a fresh snapshot of it, so
/// adjacent crash states *share* the replayed prefix structurally.
///
/// Checkpoints must be requested in increasing order (the order
/// [`IoLog`] assigns them); requesting an already-passed checkpoint falls
/// back to a from-scratch [`crash_state`] replay.
pub struct CrashStateStream<'a> {
    base: &'a DiskImage,
    log: &'a IoLog,
    device: CowSnapshotDevice,
    /// Index of the next unapplied record in `log`.
    position: usize,
    /// Highest checkpoint id already passed.
    reached: CheckpointId,
    /// Distinct blocks written since the start of the log (the copy-on-write
    /// memory the crash state occupies on top of the base image — §6.5's
    /// accounting, which used to be the snapshot device's own overlay before
    /// crash states became layered).
    written: std::collections::HashSet<crate::device::BlockIndex>,
}

impl<'a> CrashStateStream<'a> {
    /// Creates a stream positioned at the start of the log.
    pub fn new(base: &'a DiskImage, log: &'a IoLog) -> Self {
        CrashStateStream {
            base,
            log,
            device: CowSnapshotDevice::new(base.clone()),
            position: 0,
            reached: 0,
            written: std::collections::HashSet::new(),
        }
    }

    /// Bytes of copy-on-write state the current position's crash state holds
    /// on top of the base image (distinct replayed blocks × block size).
    pub fn replayed_bytes(&self) -> u64 {
        self.written.len() as u64 * crate::device::BLOCK_SIZE as u64
    }

    /// Returns the crash state at `checkpoint`, replaying only the records
    /// between the previously requested checkpoint and this one.
    pub fn state_at(&mut self, checkpoint: CheckpointId) -> BlockResult<CowSnapshotDevice> {
        if checkpoint <= self.reached && self.reached != 0 {
            // Out-of-order request: the incremental prefix is already past
            // this point, so construct the state the slow way.
            return crash_state(self.base, self.log, checkpoint);
        }
        let records = self.log.records();
        while self.position < records.len() {
            let record = &records[self.position];
            self.position += 1;
            match record {
                IoRecord::Write {
                    index, data, flags, ..
                } => {
                    self.device.write_block(*index, data, *flags)?;
                    self.written.insert(*index);
                }
                IoRecord::Flush { .. } => self.device.flush()?,
                IoRecord::Checkpoint { id, .. } => {
                    self.reached = *id;
                    if *id == checkpoint {
                        break;
                    }
                }
            }
        }
        let image = self.device.commit();
        Ok(CowSnapshotDevice::new(image))
    }
}

fn replay_records(records: &[IoRecord], target: &mut dyn BlockDevice) -> BlockResult<usize> {
    let mut applied = 0;
    for record in records {
        match record {
            IoRecord::Write {
                index, data, flags, ..
            } => {
                target.write_block(*index, data, *flags)?;
                applied += 1;
            }
            IoRecord::Flush { .. } => target.flush()?,
            IoRecord::Checkpoint { .. } => {}
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::IoFlags;
    use crate::ramdisk::RamDisk;
    use crate::record::RecordingDevice;

    /// Builds a base image, then records a three-checkpoint run on top of it.
    fn recorded_run() -> (DiskImage, IoLog) {
        let mut base = RamDisk::new(32);
        base.write_block(0, b"superblock-v0", IoFlags::META)
            .unwrap();
        let image = base.snapshot();

        let mut dev = RecordingDevice::new(Box::new(CowSnapshotDevice::new(image.clone())));
        let log = dev.log_handle();

        dev.write_block(1, b"first", IoFlags::DATA).unwrap();
        dev.flush().unwrap();
        log.checkpoint(); // cp 1

        dev.write_block(2, b"second", IoFlags::DATA).unwrap();
        dev.write_block(0, b"superblock-v1", IoFlags::META | IoFlags::FUA)
            .unwrap();
        log.checkpoint(); // cp 2

        dev.write_block(3, b"third", IoFlags::DATA).unwrap();
        log.checkpoint(); // cp 3

        (image, log.snapshot())
    }

    #[test]
    fn crash_state_at_first_checkpoint_excludes_later_writes() {
        let (image, log) = recorded_run();
        let state = crash_state(&image, &log, 1).unwrap();
        assert_eq!(&state.read_block(1).unwrap()[..5], b"first");
        assert!(state.read_block(2).unwrap().iter().all(|&b| b == 0));
        assert_eq!(&state.read_block(0).unwrap()[..13], b"superblock-v0");
    }

    #[test]
    fn crash_state_at_second_checkpoint_includes_prefix() {
        let (image, log) = recorded_run();
        let state = crash_state(&image, &log, 2).unwrap();
        assert_eq!(&state.read_block(1).unwrap()[..5], b"first");
        assert_eq!(&state.read_block(2).unwrap()[..6], b"second");
        assert_eq!(&state.read_block(0).unwrap()[..13], b"superblock-v1");
        assert!(state.read_block(3).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn replay_full_log_equals_final_state() {
        let (image, log) = recorded_run();
        let mut full = CowSnapshotDevice::new(image);
        let applied = replay_log(&log, &mut full).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(&full.read_block(3).unwrap()[..5], b"third");
    }

    #[test]
    fn replay_until_unknown_checkpoint_applies_everything() {
        let (image, log) = recorded_run();
        let mut dev = CowSnapshotDevice::new(image);
        let applied = replay_until_checkpoint(&log, 99, &mut dev).unwrap();
        assert_eq!(applied, 4);
    }

    #[test]
    fn crash_states_are_independent() {
        let (image, log) = recorded_run();
        let mut s1 = crash_state(&image, &log, 1).unwrap();
        let s2 = crash_state(&image, &log, 2).unwrap();
        s1.write_block(9, b"mutate", IoFlags::DATA).unwrap();
        assert!(s2.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn stream_matches_from_scratch_replay_at_every_checkpoint() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        for checkpoint in 1..=log.num_checkpoints() {
            let incremental = stream.state_at(checkpoint).unwrap();
            let scratch = crash_state(&image, &log, checkpoint).unwrap();
            for block in 0..image.num_blocks() {
                assert_eq!(
                    incremental.read_block(block).unwrap(),
                    scratch.read_block(block).unwrap(),
                    "checkpoint {checkpoint}, block {block}"
                );
            }
        }
    }

    #[test]
    fn stream_states_are_independent_and_share_the_prefix() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let mut s1 = stream.state_at(1).unwrap();
        let s2 = stream.state_at(2).unwrap();
        // Layered images: the second state's chain extends the first's.
        assert!(s2.base().chain_depth() > s1.base().chain_depth());
        s1.write_block(9, b"mutate", IoFlags::DATA).unwrap();
        assert!(s2.read_block(9).unwrap().iter().all(|&b| b == 0));
        assert_eq!(&s2.read_block(1).unwrap()[..5], b"first");
    }

    #[test]
    fn stream_out_of_order_request_falls_back_to_full_replay() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let _ = stream.state_at(3).unwrap();
        let s1 = stream.state_at(1).unwrap();
        assert_eq!(&s1.read_block(1).unwrap()[..5], b"first");
        assert!(s1.read_block(2).unwrap().iter().all(|&b| b == 0));
    }
}
