//! Replaying recorded IO to construct crash states.
//!
//! "To create a crash state, CrashMonkey starts from the initial state of the
//! file system (before the workload was run), and uses a utility similar to
//! dd to replay all recorded IO requests from the start of the workload until
//! the next checkpoint in the IO stream." (§5.1)

use crate::cow::{CowSnapshotDevice, DiskImage};
use crate::device::{BlockDevice, BlockIndex, BLOCK_SIZE};
use crate::error::BlockResult;
use crate::record::{CheckpointId, IoLog, IoRecord};

/// The set of distinct blocks written between two adjacent crash states of
/// one recorded run — the structural difference [`CrashStateStream`] applies
/// when stepping from one checkpoint to the next.
///
/// A file system that knows which blocks changed can patch its recovered
/// view forward instead of remounting from scratch; this type makes that
/// delta a first-class value instead of an internal detail of the stream.
/// Blocks are sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateDelta {
    blocks: Vec<BlockIndex>,
}

impl StateDelta {
    /// Builds a delta from an arbitrary collection of touched blocks.
    pub fn from_blocks(mut blocks: Vec<BlockIndex>) -> Self {
        blocks.sort_unstable();
        blocks.dedup();
        StateDelta { blocks }
    }

    /// The touched blocks, sorted ascending and deduplicated.
    pub fn blocks(&self) -> &[BlockIndex] {
        &self.blocks
    }

    /// Number of distinct blocks that changed between the two states.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of device state the delta covers (distinct blocks × block size).
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * BLOCK_SIZE as u64
    }

    /// True when no block differs between the two states.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// True when the delta touches `block`.
    pub fn contains(&self, block: BlockIndex) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }

    /// True when the delta touches any block in `start..start + len`.
    pub fn overlaps_range(&self, start: BlockIndex, len: u64) -> bool {
        let from = self.blocks.partition_point(|&b| b < start);
        self.blocks
            .get(from)
            .is_some_and(|&b| b < start.saturating_add(len))
    }
}

impl<'a> IntoIterator for &'a StateDelta {
    type Item = BlockIndex;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, BlockIndex>>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter().copied()
    }
}

/// One step of a [`CrashStateStream`]: the crash state at the requested
/// checkpoint plus, when the stream advanced in order, the [`StateDelta`]
/// between the previously returned state and this one.
///
/// On the first step of a stream `delta` is relative to the *base image*
/// the stream replays onto — the base acts as crash state zero, which is
/// what lets a recovery session primed on the (shared) base treat even the
/// first crash state incrementally. `delta` is `None` for out-of-order
/// requests that fell back to a from-scratch replay, and for every step
/// after one (the step cursor no longer corresponds to the returned
/// states).
#[derive(Debug)]
pub struct CrashStateStep {
    /// The crash state at the requested checkpoint.
    pub state: CowSnapshotDevice,
    /// Distinct blocks written since the previous in-order step (or since
    /// the base image on the first step), if known.
    pub delta: Option<StateDelta>,
}

/// Replays every record of `log` onto `target`.
pub fn replay_log(log: &IoLog, target: &mut dyn BlockDevice) -> BlockResult<usize> {
    replay_records(log.records(), target)
}

/// Replays `log` onto `target`, stopping immediately after the checkpoint
/// marker with id `checkpoint` (i.e. the resulting state contains exactly the
/// writes that had reached the device when that persistence operation
/// completed). Returns the number of write records applied.
pub fn replay_until_checkpoint(
    log: &IoLog,
    checkpoint: CheckpointId,
    target: &mut dyn BlockDevice,
) -> BlockResult<usize> {
    let mut applied = 0;
    for record in log.records() {
        match record {
            IoRecord::Write {
                index, data, flags, ..
            } => {
                target.write_block(*index, data, *flags)?;
                applied += 1;
            }
            IoRecord::Flush { .. } => target.flush()?,
            IoRecord::Checkpoint { id, .. } => {
                if *id == checkpoint {
                    return Ok(applied);
                }
            }
        }
    }
    Ok(applied)
}

/// Constructs the crash state for `checkpoint`: a fresh copy-on-write
/// snapshot of `base` with the recorded IO replayed up to that checkpoint.
///
/// The returned device "represents the state of the storage just after the
/// persistence-related call completed on the storage device" and is
/// considered uncleanly unmounted; mounting a file system on it will trigger
/// that file system's recovery code.
///
/// Each call replays the log from the start; when constructing crash states
/// for several checkpoints of one recorded run, prefer
/// [`CrashStateStream`], which replays every record exactly once.
pub fn crash_state(
    base: &DiskImage,
    log: &IoLog,
    checkpoint: CheckpointId,
) -> BlockResult<CowSnapshotDevice> {
    let mut snapshot = CowSnapshotDevice::new(base.clone());
    replay_until_checkpoint(log, checkpoint, &mut snapshot)?;
    Ok(snapshot)
}

/// Incremental crash-state construction over one recorded run.
///
/// [`crash_state`] replays the whole prefix of the log for every checkpoint,
/// so constructing the states of checkpoints 1..n replays O(n²) records and
/// each state carries its own copy of the replayed blocks. The stream
/// instead replays every record exactly once: after reaching a checkpoint it
/// freezes the accumulated writes into a new [`DiskImage`] layer
/// ([`CowSnapshotDevice::commit`]) and hands out a fresh snapshot of it, so
/// adjacent crash states *share* the replayed prefix structurally.
///
/// Checkpoints must be requested in increasing order (the order
/// [`IoLog`] assigns them); requesting an already-passed checkpoint falls
/// back to a from-scratch [`crash_state`] replay.
pub struct CrashStateStream<'a> {
    base: &'a DiskImage,
    log: &'a IoLog,
    device: CowSnapshotDevice,
    /// Index of the next unapplied record in `log`.
    position: usize,
    /// Highest checkpoint id already passed.
    reached: CheckpointId,
    /// Distinct blocks written since the start of the log (the copy-on-write
    /// memory the crash state occupies on top of the base image — §6.5's
    /// accounting, which used to be the snapshot device's own overlay before
    /// crash states became layered).
    written: std::collections::HashSet<BlockIndex>,
    /// Blocks written since the previous in-order [`CrashStateStream::step_to`]
    /// call — or since the base image, before the first one (not
    /// deduplicated; `StateDelta::from_blocks` dedups on handoff).
    step_blocks: Vec<BlockIndex>,
    /// Set once an out-of-order request falls back to a from-scratch
    /// replay: the step cursor no longer corresponds to the states handed
    /// out, so no later step may claim a delta.
    diverged: bool,
}

impl<'a> CrashStateStream<'a> {
    /// Creates a stream positioned at the start of the log.
    pub fn new(base: &'a DiskImage, log: &'a IoLog) -> Self {
        CrashStateStream {
            base,
            log,
            device: CowSnapshotDevice::new(base.clone()),
            position: 0,
            reached: 0,
            written: std::collections::HashSet::new(),
            step_blocks: Vec::new(),
            diverged: false,
        }
    }

    /// Bytes of copy-on-write state the current position's crash state holds
    /// on top of the base image (distinct replayed blocks × block size).
    pub fn replayed_bytes(&self) -> u64 {
        self.written.len() as u64 * crate::device::BLOCK_SIZE as u64
    }

    /// Returns the crash state at `checkpoint`, replaying only the records
    /// between the previously requested checkpoint and this one.
    pub fn state_at(&mut self, checkpoint: CheckpointId) -> BlockResult<CowSnapshotDevice> {
        Ok(self.step_to(checkpoint)?.state)
    }

    /// Like [`state_at`](Self::state_at), but also reports the
    /// [`StateDelta`] — the distinct blocks written between the previously
    /// returned state and this one (the base image, on the first step). The
    /// delta is `None` on out-of-order requests, which fall back to a
    /// from-scratch replay, and on every step after one.
    pub fn step_to(&mut self, checkpoint: CheckpointId) -> BlockResult<CrashStateStep> {
        if checkpoint <= self.reached && self.reached != 0 {
            // Out-of-order request: the incremental prefix is already past
            // this point, so construct the state the slow way. The stream's
            // step cursor no longer corresponds to the returned state, so
            // subsequent in-order steps must not claim a delta either.
            self.diverged = true;
            self.step_blocks.clear();
            return Ok(CrashStateStep {
                state: crash_state(self.base, self.log, checkpoint)?,
                delta: None,
            });
        }
        let records = self.log.records();
        while self.position < records.len() {
            let record = &records[self.position];
            self.position += 1;
            match record {
                IoRecord::Write {
                    index, data, flags, ..
                } => {
                    self.device.write_block(*index, data, *flags)?;
                    self.written.insert(*index);
                    self.step_blocks.push(*index);
                }
                IoRecord::Flush { .. } => self.device.flush()?,
                IoRecord::Checkpoint { id, .. } => {
                    self.reached = *id;
                    if *id == checkpoint {
                        break;
                    }
                }
            }
        }
        let delta = if self.diverged {
            self.step_blocks.clear();
            None
        } else {
            Some(StateDelta::from_blocks(std::mem::take(
                &mut self.step_blocks,
            )))
        };
        let image = self.device.commit();
        Ok(CrashStateStep {
            state: CowSnapshotDevice::new(image),
            delta,
        })
    }
}

fn replay_records(records: &[IoRecord], target: &mut dyn BlockDevice) -> BlockResult<usize> {
    let mut applied = 0;
    for record in records {
        match record {
            IoRecord::Write {
                index, data, flags, ..
            } => {
                target.write_block(*index, data, *flags)?;
                applied += 1;
            }
            IoRecord::Flush { .. } => target.flush()?,
            IoRecord::Checkpoint { .. } => {}
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::IoFlags;
    use crate::ramdisk::RamDisk;
    use crate::record::RecordingDevice;

    /// Builds a base image, then records a three-checkpoint run on top of it.
    fn recorded_run() -> (DiskImage, IoLog) {
        let mut base = RamDisk::new(32);
        base.write_block(0, b"superblock-v0", IoFlags::META)
            .unwrap();
        let image = base.snapshot();

        let mut dev = RecordingDevice::new(Box::new(CowSnapshotDevice::new(image.clone())));
        let log = dev.log_handle();

        dev.write_block(1, b"first", IoFlags::DATA).unwrap();
        dev.flush().unwrap();
        log.checkpoint(); // cp 1

        dev.write_block(2, b"second", IoFlags::DATA).unwrap();
        dev.write_block(0, b"superblock-v1", IoFlags::META | IoFlags::FUA)
            .unwrap();
        log.checkpoint(); // cp 2

        dev.write_block(3, b"third", IoFlags::DATA).unwrap();
        log.checkpoint(); // cp 3

        (image, log.snapshot())
    }

    #[test]
    fn crash_state_at_first_checkpoint_excludes_later_writes() {
        let (image, log) = recorded_run();
        let state = crash_state(&image, &log, 1).unwrap();
        assert_eq!(&state.read_block(1).unwrap()[..5], b"first");
        assert!(state.read_block(2).unwrap().iter().all(|&b| b == 0));
        assert_eq!(&state.read_block(0).unwrap()[..13], b"superblock-v0");
    }

    #[test]
    fn crash_state_at_second_checkpoint_includes_prefix() {
        let (image, log) = recorded_run();
        let state = crash_state(&image, &log, 2).unwrap();
        assert_eq!(&state.read_block(1).unwrap()[..5], b"first");
        assert_eq!(&state.read_block(2).unwrap()[..6], b"second");
        assert_eq!(&state.read_block(0).unwrap()[..13], b"superblock-v1");
        assert!(state.read_block(3).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn replay_full_log_equals_final_state() {
        let (image, log) = recorded_run();
        let mut full = CowSnapshotDevice::new(image);
        let applied = replay_log(&log, &mut full).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(&full.read_block(3).unwrap()[..5], b"third");
    }

    #[test]
    fn replay_until_unknown_checkpoint_applies_everything() {
        let (image, log) = recorded_run();
        let mut dev = CowSnapshotDevice::new(image);
        let applied = replay_until_checkpoint(&log, 99, &mut dev).unwrap();
        assert_eq!(applied, 4);
    }

    #[test]
    fn crash_states_are_independent() {
        let (image, log) = recorded_run();
        let mut s1 = crash_state(&image, &log, 1).unwrap();
        let s2 = crash_state(&image, &log, 2).unwrap();
        s1.write_block(9, b"mutate", IoFlags::DATA).unwrap();
        assert!(s2.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn stream_matches_from_scratch_replay_at_every_checkpoint() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        for checkpoint in 1..=log.num_checkpoints() {
            let incremental = stream.state_at(checkpoint).unwrap();
            let scratch = crash_state(&image, &log, checkpoint).unwrap();
            for block in 0..image.num_blocks() {
                assert_eq!(
                    incremental.read_block(block).unwrap(),
                    scratch.read_block(block).unwrap(),
                    "checkpoint {checkpoint}, block {block}"
                );
            }
        }
    }

    #[test]
    fn stream_states_are_independent_and_share_the_prefix() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let mut s1 = stream.state_at(1).unwrap();
        let s2 = stream.state_at(2).unwrap();
        // Layered images: the second state's chain extends the first's.
        assert!(s2.base().chain_depth() > s1.base().chain_depth());
        s1.write_block(9, b"mutate", IoFlags::DATA).unwrap();
        assert!(s2.read_block(9).unwrap().iter().all(|&b| b == 0));
        assert_eq!(&s2.read_block(1).unwrap()[..5], b"first");
    }

    /// Brute-force diff of two crash states: every block whose contents
    /// differ between them.
    fn brute_force_delta(a: &CowSnapshotDevice, b: &CowSnapshotDevice) -> Vec<BlockIndex> {
        (0..a.num_blocks())
            .filter(|&i| a.read_block(i).unwrap() != b.read_block(i).unwrap())
            .collect()
    }

    #[test]
    fn step_delta_covers_every_block_that_differs_between_adjacent_states() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        // The first step diffs against the base image itself: the base acts
        // as crash state zero.
        let mut previous = CowSnapshotDevice::new(image.clone());
        for checkpoint in 1..=log.num_checkpoints() {
            let step = stream.step_to(checkpoint).unwrap();
            let delta = step
                .delta
                .as_ref()
                .unwrap_or_else(|| panic!("in-order step {checkpoint} must report a delta"));
            // The delta may over-approximate (a block rewritten with
            // identical contents still counts) but must never miss a
            // block that actually differs.
            for block in brute_force_delta(&previous, &step.state) {
                assert!(
                    delta.contains(block),
                    "checkpoint {checkpoint}: block {block} differs but is \
                     missing from the delta {:?}",
                    delta.blocks()
                );
            }
            // Sorted + deduplicated.
            assert!(delta.blocks().windows(2).all(|w| w[0] < w[1]));
            previous = step.state;
        }
    }

    #[test]
    fn step_delta_matches_recorded_writes_between_checkpoints() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let first = stream.step_to(1).unwrap();
        // The first step's delta is relative to the base image.
        let base_delta = first
            .delta
            .expect("first step reports a base-relative delta");
        assert!(!base_delta.is_empty());
        let second = stream.step_to(2).unwrap();
        // Between cp 1 and cp 2 the run wrote blocks 2 and 0.
        let delta = second.delta.expect("in-order step reports a delta");
        assert_eq!(delta.blocks(), &[0, 2]);
        assert_eq!(delta.num_blocks(), 2);
        assert_eq!(delta.bytes(), 2 * crate::device::BLOCK_SIZE as u64);
        assert!(delta.contains(0) && delta.contains(2) && !delta.contains(1));
        assert!(delta.overlaps_range(1, 2));
        assert!(!delta.overlaps_range(3, 4));
        assert!(!delta.overlaps_range(1, 0));
        assert_eq!((&delta).into_iter().collect::<Vec<_>>(), vec![0, 2]);
        let third = stream.step_to(3).unwrap();
        assert_eq!(third.delta.unwrap().blocks(), &[3]);
    }

    #[test]
    fn step_after_out_of_order_fallback_reports_no_delta() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let _ = stream.step_to(2).unwrap();
        let fallback = stream.step_to(1).unwrap();
        assert!(fallback.delta.is_none(), "fallback step has no delta");
        // The stream's cursor no longer matches the state the caller holds,
        // so the next in-order step must not claim one either.
        let next = stream.step_to(3).unwrap();
        assert!(next.delta.is_none());
        assert_eq!(&next.state.read_block(3).unwrap()[..5], b"third");
    }

    #[test]
    fn stream_out_of_order_request_falls_back_to_full_replay() {
        let (image, log) = recorded_run();
        let mut stream = CrashStateStream::new(&image, &log);
        let _ = stream.state_at(3).unwrap();
        let s1 = stream.state_at(1).unwrap();
        assert_eq!(&s1.read_block(1).unwrap()[..5], b"first");
        assert!(s1.read_block(2).unwrap().iter().all(|&b| b == 0));
    }
}
