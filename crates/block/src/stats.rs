//! Per-device IO statistics.
//!
//! Section 6.5 of the paper reports CrashMonkey's resource consumption
//! (memory of the copy-on-write device, storage per workload, CPU). The
//! statistics collected here feed the `fig_resources` benchmark.

/// Cumulative counters maintained by every block device implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of block reads served.
    pub reads: u64,
    /// Number of block writes accepted.
    pub writes: u64,
    /// Bytes of payload written (pre-padding).
    pub bytes_written: u64,
    /// Bytes of payload read.
    pub bytes_read: u64,
    /// Number of explicit cache flushes.
    pub flushes: u64,
    /// Number of writes carrying the FUA flag.
    pub fua_writes: u64,
}

impl DeviceStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes` bytes.
    pub fn record_read(&mut self, bytes: usize) {
        self.reads += 1;
        self.bytes_read += bytes as u64;
    }

    /// Records a write of `bytes` bytes with the given FUA disposition.
    pub fn record_write(&mut self, bytes: usize, fua: bool) {
        self.writes += 1;
        self.bytes_written += bytes as u64;
        if fua {
            self.fua_writes += 1;
        }
    }

    /// Records a flush request.
    pub fn record_flush(&mut self) {
        self.flushes += 1;
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.flushes += other.flushes;
        self.fua_writes += other.fua_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = DeviceStats::new();
        a.record_read(4096);
        a.record_write(100, true);
        a.record_write(200, false);
        a.record_flush();
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 2);
        assert_eq!(a.bytes_written, 300);
        assert_eq!(a.fua_writes, 1);
        assert_eq!(a.flushes, 1);

        let mut b = DeviceStats::new();
        b.record_write(50, false);
        b.merge(&a);
        assert_eq!(b.writes, 3);
        assert_eq!(b.bytes_written, 350);
        assert_eq!(b.bytes_read, 4096);
    }
}
