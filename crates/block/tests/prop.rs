//! Property-based tests for the block layer: recorded IO replays losslessly
//! and copy-on-write snapshots never leak writes into their base image.

use proptest::prelude::*;

use b3_block::{
    crash_state, replay_log, BlockDevice, CowSnapshotDevice, DiskImage, IoFlags, RamDisk,
    RecordingDevice, BLOCK_SIZE,
};

#[derive(Debug, Clone)]
enum Action {
    Write { block: u64, byte: u8, len: usize },
    Flush,
    Checkpoint,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..64, any::<u8>(), 1usize..BLOCK_SIZE).prop_map(|(block, byte, len)| Action::Write {
            block,
            byte,
            len
        }),
        Just(Action::Flush),
        Just(Action::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying the full recorded log onto a fresh snapshot reproduces the
    /// final device contents block for block.
    #[test]
    fn full_replay_reproduces_final_state(actions in prop::collection::vec(action_strategy(), 1..40)) {
        let base = DiskImage::empty(64);
        let mut device = RecordingDevice::new(Box::new(CowSnapshotDevice::new(base.clone())));
        let log_handle = device.log_handle();

        for action in &actions {
            match action {
                Action::Write { block, byte, len } => {
                    device
                        .write_block(*block, &vec![*byte; *len], IoFlags::DATA)
                        .unwrap();
                }
                Action::Flush => device.flush().unwrap(),
                Action::Checkpoint => {
                    log_handle.checkpoint();
                }
            }
        }

        let mut replayed = CowSnapshotDevice::new(base.clone());
        replay_log(&log_handle.snapshot(), &mut replayed).unwrap();
        for block in 0..64 {
            prop_assert_eq!(
                device.read_block(block).unwrap(),
                replayed.read_block(block).unwrap(),
                "block {} differs after replay",
                block
            );
        }
    }

    /// A crash state constructed at checkpoint k contains exactly the writes
    /// issued before the k-th checkpoint and none issued after it.
    #[test]
    fn crash_states_respect_checkpoint_boundaries(
        before in prop::collection::vec((0u64..32, any::<u8>()), 1..10),
        after in prop::collection::vec((32u64..64, any::<u8>()), 1..10),
    ) {
        let base = DiskImage::empty(64);
        let mut device = RecordingDevice::new(Box::new(CowSnapshotDevice::new(base.clone())));
        let log_handle = device.log_handle();
        for (block, byte) in &before {
            device.write_block(*block, &[*byte; 16], IoFlags::DATA).unwrap();
        }
        let checkpoint = log_handle.checkpoint();
        for (block, byte) in &after {
            device.write_block(*block, &[*byte; 16], IoFlags::DATA).unwrap();
        }
        log_handle.checkpoint();

        let state = crash_state(&base, &log_handle.snapshot(), checkpoint).unwrap();
        // Last write to each block before the checkpoint wins.
        let mut expected = std::collections::HashMap::new();
        for (block, byte) in &before {
            expected.insert(*block, *byte);
        }
        for (block, byte) in expected {
            prop_assert_eq!(state.read_block(block).unwrap()[0], byte);
        }
        for (block, _) in &after {
            prop_assert!(state.read_block(*block).unwrap().iter().all(|&b| b == 0));
        }
    }

    /// Copy-on-write snapshots never modify their base image, and resetting
    /// them restores the base contents exactly.
    #[test]
    fn cow_snapshots_isolate_and_reset(writes in prop::collection::vec((0u64..32, any::<u8>()), 1..20)) {
        let mut disk = RamDisk::new(32);
        disk.write_block(0, b"base", IoFlags::META).unwrap();
        let image = disk.snapshot();
        let mut snapshot = CowSnapshotDevice::new(image.clone());
        for (block, byte) in &writes {
            snapshot.write_block(*block, &[*byte; 8], IoFlags::DATA).unwrap();
        }
        for block in 0..32 {
            prop_assert_eq!(image.read_block(block).unwrap(), disk.read_block(block).unwrap());
        }
        snapshot.reset();
        for block in 0..32 {
            prop_assert_eq!(snapshot.read_block(block).unwrap(), disk.read_block(block).unwrap());
        }
    }
}
