//! Property tests for the checkpoint merge algebra.
//!
//! A distributed sweep reassembles its result from per-worker partial
//! checkpoints, so the correctness of the whole fan-out rests on `merge`
//! being a true set union: commutative, associative, idempotent, and
//! refusing to combine checkpoints of different sweeps. The subsets here
//! are carved (via [`SweepCheckpoint::subset`]) out of one real completed
//! sweep, so every merged shard carries real results, grouped reports
//! included.
//!
//! Shard results are deduplicated at the source (per-group exemplars +
//! counts, see `b3_harness::dedup`), so this suite additionally pins the
//! **dedup equivalence**: merging grouped shard results over *any* shard
//! partition, in *any* order, produces the same (group → count, exemplar)
//! table as post-hoc `group_reports` over the raw, ungrouped report stream
//! of a plain `run_stream` sweep.

use std::sync::OnceLock;

use b3_ace::{Bounds, WorkloadGenerator};
use b3_fs_cow::CowFsSpec;
use b3_harness::{group_reports, run_stream, BugGroup, RunConfig, Sweep, SweepCheckpoint};
use b3_vfs::KernelEra;
use proptest::prelude::*;

const NUM_SHARDS: usize = 8;

/// One fully swept checkpoint over the tiny bounds, computed once.
fn full_checkpoint() -> &'static SweepCheckpoint {
    static FULL: OnceLock<SweepCheckpoint> = OnceLock::new();
    FULL.get_or_init(|| {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let mut checkpoint = SweepCheckpoint::new(&bounds, NUM_SHARDS);
        let config = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        Sweep::new(&spec, config)
            .shards(NUM_SHARDS)
            .run_resumable(&bounds, &mut checkpoint);
        assert!(checkpoint.is_complete());
        checkpoint
    })
}

/// The post-hoc grouping of the *raw* report stream over the same bounds:
/// an ungrouped `run_stream` sweep (which keeps every report), grouped
/// after the fact — the §5.3 reference the grouped checkpoint must match.
fn post_hoc_groups() -> &'static Vec<BugGroup> {
    static GROUPS: OnceLock<Vec<BugGroup>> = OnceLock::new();
    GROUPS.get_or_init(|| {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let config = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, WorkloadGenerator::new(bounds), &config);
        assert_eq!(summary.raw_reports, summary.reports.len());
        group_reports(&summary.reports)
    })
}

/// The sub-checkpoint holding the shards selected by `mask`'s bits.
fn subset(mask: u8) -> SweepCheckpoint {
    full_checkpoint().subset((0..NUM_SHARDS as u32).filter(|shard| mask & (1 << shard) != 0))
}

fn merged(a: &SweepCheckpoint, b: &SweepCheckpoint) -> SweepCheckpoint {
    let mut union = a.clone();
    union.merge(b).expect("same-sweep merge succeeds");
    union
}

proptest! {
    #[test]
    fn merge_is_commutative(a in 0u32..256, b in 0u32..256) {
        let (a, b) = (subset(a as u8), subset(b as u8));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in 0u32..256, b in 0u32..256, c in 0u32..256) {
        let (a, b, c) = (subset(a as u8), subset(b as u8), subset(c as u8));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merge_is_idempotent(a in 0u32..256) {
        let a = subset(a as u8);
        prop_assert_eq!(merged(&a, &a), a);
    }

    #[test]
    fn merge_is_a_set_union_over_shards(a in 0u32..256, b in 0u32..256) {
        // Merging overlapping subsets of the same run equals the subset of
        // the bitmask union — duplicate shards collapse, nothing is counted
        // twice.
        let union = merged(&subset(a as u8), &subset(b as u8));
        prop_assert_eq!(union, subset((a | b) as u8));
    }

    #[test]
    fn merged_summary_counts_are_additive_for_disjoint_subsets(a in 0u32..256, b in 0u32..256) {
        let (a, b) = ((a as u8) & !(b as u8), b as u8);
        let union = merged(&subset(a), &subset(b));
        let summary = union.summary();
        let (sa, sb) = (subset(a).summary(), subset(b).summary());
        prop_assert_eq!(summary.tested, sa.tested + sb.tested);
        prop_assert_eq!(summary.skipped, sa.skipped + sb.skipped);
        // Raw-report totals add; group counts union (counts add per key,
        // exemplars take the lexicographic minimum), so the number of
        // *groups* is bounded by the union of the two sides' group keys.
        prop_assert_eq!(summary.raw_reports, sa.raw_reports + sb.raw_reports);
        let grouped = union.grouped();
        prop_assert_eq!(grouped.total_reports() as usize, summary.raw_reports);
        prop_assert_eq!(summary.reports.len(), grouped.len());
    }

    /// The dedup-equivalence property: split the shards into up to four
    /// partition cells by an arbitrary assignment, merge the cells in an
    /// arbitrary rotation, and the grouped result — every group's key,
    /// raw-report count, and byte-exact exemplar — equals post-hoc
    /// `group_reports` over the raw report stream of an ungrouped sweep.
    #[test]
    fn any_partition_and_order_matches_post_hoc_grouping(
        assignment in prop::collection::vec(0usize..4, NUM_SHARDS..NUM_SHARDS + 1),
        rotation in 0usize..4,
    ) {
        let mut cells = vec![Vec::new(); 4];
        for (shard, &cell) in assignment.iter().enumerate() {
            cells[cell].push(shard as u32);
        }
        let mut rebuilt = subset(0);
        for step in 0..4 {
            let cell = &cells[(step + rotation) % 4];
            rebuilt
                .merge(&full_checkpoint().subset(cell.iter().copied()))
                .expect("same-sweep merge succeeds");
        }
        prop_assert!(rebuilt.is_complete());
        let grouped = rebuilt.bug_groups();
        let reference = post_hoc_groups();
        prop_assert_eq!(grouped.len(), reference.len());
        for (ours, theirs) in grouped.iter().zip(reference.iter()) {
            prop_assert_eq!(ours, theirs);
        }
    }
}

#[test]
fn merging_checkpoints_of_different_shard_counts_is_rejected() {
    let bounds = Bounds::tiny();
    let mut ours = subset(0b0000_1111);
    let theirs = SweepCheckpoint::new(&bounds, NUM_SHARDS + 1);
    let before = ours.clone();
    assert!(ours.merge(&theirs).is_err());
    assert!(
        ours == before,
        "a rejected merge must leave the checkpoint untouched"
    );
    let mut theirs = SweepCheckpoint::new(&bounds, NUM_SHARDS + 1);
    assert!(theirs.merge(&before).is_err());
}

#[test]
fn merging_checkpoints_of_different_bounds_is_rejected() {
    let mut ours = subset(0b1111_0000);
    let theirs = SweepCheckpoint::new(&Bounds::paper_seq1(), NUM_SHARDS);
    assert!(ours.merge(&theirs).is_err());
}

/// A shard legitimately re-run (after a crash, or by a second worker)
/// reproduces identical counts and grouped reports but *different*
/// wall-clock timing. Merging the re-run into a checkpoint that already
/// holds the shard must not trip the duplicate-shard debug assertion: the
/// comparison is the timing-ignoring `same_outcome`, not full equality.
#[test]
fn rerun_shard_with_different_timing_merges_without_panic() {
    let bounds = Bounds::tiny();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 1,
        ..RunConfig::default()
    };
    // Two independent runs of the same sweep: same outcomes, different
    // per-shard `workload_time_nanos`.
    let mut first = SweepCheckpoint::new(&bounds, NUM_SHARDS);
    Sweep::new(&spec, config)
        .shards(NUM_SHARDS)
        .run_resumable(&bounds, &mut first);
    let mut second = SweepCheckpoint::new(&bounds, NUM_SHARDS);
    Sweep::new(&spec, config)
        .shards(NUM_SHARDS)
        .run_resumable(&bounds, &mut second);
    assert!(first.is_complete() && second.is_complete());

    // Every shard is a duplicate here; with the old full-equality debug
    // assertion this merge would spuriously panic whenever any shard's
    // timing differed between the runs.
    let summary_before = first.summary();
    first.merge(&second).expect("same-sweep merge succeeds");
    let summary_after = first.summary();
    assert_eq!(summary_before.tested, summary_after.tested);
    assert_eq!(summary_before.raw_reports, summary_after.raw_reports);
    assert_eq!(summary_before.reports, summary_after.reports);
}

#[test]
fn merging_all_single_shard_subsets_rebuilds_the_full_checkpoint() {
    let mut rebuilt = subset(0);
    for shard in 0..NUM_SHARDS {
        rebuilt
            .merge(&subset(1 << shard))
            .expect("same-sweep merge succeeds");
    }
    assert!(rebuilt.is_complete());
    assert_eq!(&rebuilt, full_checkpoint());
    assert_eq!(
        rebuilt.to_bytes(),
        full_checkpoint().to_bytes(),
        "shard-wise reassembly is byte-identical to the uninterrupted run"
    );
}
