//! Property tests for the checkpoint merge algebra.
//!
//! A distributed sweep reassembles its result from per-worker partial
//! checkpoints, so the correctness of the whole fan-out rests on `merge`
//! being a true set union: commutative, associative, idempotent, and
//! refusing to combine checkpoints of different sweeps. The subsets here
//! are carved (via [`SweepCheckpoint::subset`]) out of one real completed
//! sweep, so every merged shard carries real results, reports included.

use std::sync::OnceLock;

use b3_ace::Bounds;
use b3_fs_cow::CowFsSpec;
use b3_harness::{RunConfig, Sweep, SweepCheckpoint};
use b3_vfs::KernelEra;
use proptest::prelude::*;

const NUM_SHARDS: usize = 8;

/// One fully swept checkpoint over the tiny bounds, computed once.
fn full_checkpoint() -> &'static SweepCheckpoint {
    static FULL: OnceLock<SweepCheckpoint> = OnceLock::new();
    FULL.get_or_init(|| {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let mut checkpoint = SweepCheckpoint::new(&bounds, NUM_SHARDS);
        let config = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        Sweep::new(&spec, config)
            .shards(NUM_SHARDS)
            .run_resumable(&bounds, &mut checkpoint);
        assert!(checkpoint.is_complete());
        checkpoint
    })
}

/// The sub-checkpoint holding the shards selected by `mask`'s bits.
fn subset(mask: u8) -> SweepCheckpoint {
    full_checkpoint().subset((0..NUM_SHARDS as u32).filter(|shard| mask & (1 << shard) != 0))
}

fn merged(a: &SweepCheckpoint, b: &SweepCheckpoint) -> SweepCheckpoint {
    let mut union = a.clone();
    union.merge(b).expect("same-sweep merge succeeds");
    union
}

proptest! {
    #[test]
    fn merge_is_commutative(a in 0u32..256, b in 0u32..256) {
        let (a, b) = (subset(a as u8), subset(b as u8));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in 0u32..256, b in 0u32..256, c in 0u32..256) {
        let (a, b, c) = (subset(a as u8), subset(b as u8), subset(c as u8));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merge_is_idempotent(a in 0u32..256) {
        let a = subset(a as u8);
        prop_assert_eq!(merged(&a, &a), a);
    }

    #[test]
    fn merge_is_a_set_union_over_shards(a in 0u32..256, b in 0u32..256) {
        // Merging overlapping subsets of the same run equals the subset of
        // the bitmask union — duplicate shards collapse, nothing is counted
        // twice.
        let union = merged(&subset(a as u8), &subset(b as u8));
        prop_assert_eq!(union, subset((a | b) as u8));
    }

    #[test]
    fn merged_summary_counts_are_additive_for_disjoint_subsets(a in 0u32..256, b in 0u32..256) {
        let (a, b) = ((a as u8) & !(b as u8), b as u8);
        let union = merged(&subset(a), &subset(b));
        let summary = union.summary();
        let (sa, sb) = (subset(a).summary(), subset(b).summary());
        prop_assert_eq!(summary.tested, sa.tested + sb.tested);
        prop_assert_eq!(summary.skipped, sa.skipped + sb.skipped);
        prop_assert_eq!(summary.reports.len(), sa.reports.len() + sb.reports.len());
    }
}

#[test]
fn merging_checkpoints_of_different_shard_counts_is_rejected() {
    let bounds = Bounds::tiny();
    let mut ours = subset(0b0000_1111);
    let theirs = SweepCheckpoint::new(&bounds, NUM_SHARDS + 1);
    let before = ours.clone();
    assert!(ours.merge(&theirs).is_err());
    assert!(
        ours == before,
        "a rejected merge must leave the checkpoint untouched"
    );
    let mut theirs = SweepCheckpoint::new(&bounds, NUM_SHARDS + 1);
    assert!(theirs.merge(&before).is_err());
}

#[test]
fn merging_checkpoints_of_different_bounds_is_rejected() {
    let mut ours = subset(0b1111_0000);
    let theirs = SweepCheckpoint::new(&Bounds::paper_seq1(), NUM_SHARDS);
    assert!(ours.merge(&theirs).is_err());
}

#[test]
fn merging_all_single_shard_subsets_rebuilds_the_full_checkpoint() {
    let mut rebuilt = subset(0);
    for shard in 0..NUM_SHARDS {
        rebuilt
            .merge(&subset(1 << shard))
            .expect("same-sweep merge succeeds");
    }
    assert!(rebuilt.is_complete());
    assert_eq!(&rebuilt, full_checkpoint());
    assert_eq!(
        rebuilt.to_bytes(),
        full_checkpoint().to_bytes(),
        "shard-wise reassembly is byte-identical to the uninterrupted run"
    );
}
