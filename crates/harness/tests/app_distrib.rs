//! End-to-end tests of distributed *application-level* sweeps: `SweepJob`s
//! carrying `SweepSpace::App` fan transaction workloads out to real
//! `b3-sweep-worker` child processes, and the reassembled result must be
//! byte-identical to the in-process [`AppSweep`] over the same space.
//!
//! * The **differential** tests prove a 2-worker distributed app sweep
//!   (stdio children and TCP loopback) equals the in-process sweep: same
//!   tested/skipped counts, byte-identical exemplar reports, same bug
//!   groups.
//! * The **seeded-bug matrix** proves each of the three seeded engine bugs
//!   is detected through the distributed coordinator on two different host
//!   file systems, with deterministic exemplars — and that the fixed
//!   engine is clean on both.
//! * The **guard-rail** tests prove an app job asking for canonicalization
//!   is refused (pruning is a file-system-workload concept), and that app
//!   and fs checkpoints can never be confused for one another.

use b3_app::{EngineProfile, TxnBounds};
use b3_crashmonkey::{Consequence, CrashPointPolicy};
use b3_harness::distrib::{
    run_distributed, run_with_transport, DistribConfig, SweepJob, TcpTransport, WorkerCommand,
};
use b3_harness::{AppSweep, FsKind, PruneMode, RunConfig, RunSummary, SweepSpace};
use b3_vfs::codec::Encoder;
use b3_vfs::KernelEra;

const NUM_SHARDS: usize = 8;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_b3-sweep-worker"))
}

/// An app job over the tiny transaction space: every crash point tested,
/// on a patched-era host file system (so every violation is the engine's
/// fault, not the file system's).
fn app_job(fs: FsKind, engine: EngineProfile) -> SweepJob {
    let mut job = SweepJob::new_app(TxnBounds::tiny(), engine, NUM_SHARDS);
    job.fs = fs;
    job.era = KernelEra::Patched;
    job.crashmonkey.crash_points = CrashPointPolicy::All;
    job
}

/// The uninterrupted in-process reference sweep over the same job.
fn in_process_summary(job: &SweepJob) -> RunSummary {
    let spec = job.fs.spec(job.era);
    let config = RunConfig {
        threads: 2,
        crashmonkey: job.crashmonkey,
        ..RunConfig::default()
    };
    let SweepSpace::App { bounds, engine } = &job.space else {
        panic!("app job expected");
    };
    AppSweep::new(spec.as_ref(), config, *engine)
        .shards(NUM_SHARDS)
        .run(bounds)
}

/// Serializes every report of a summary, so equality can be asserted on
/// bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

fn assert_summaries_equivalent(distributed: &RunSummary, single: &RunSummary) {
    assert_eq!(distributed.tested, single.tested, "tested counts differ");
    assert_eq!(distributed.skipped, single.skipped, "skipped counts differ");
    assert_eq!(
        distributed.raw_reports, single.raw_reports,
        "raw report counts differ"
    );
    assert_eq!(
        report_bytes(distributed),
        report_bytes(single),
        "exemplar reports must be byte-identical (same bugs, same order)"
    );
}

/// The engine profile with every seeded bug switched on.
fn all_bugs() -> EngineProfile {
    EngineProfile {
        commit_without_data_fsync: true,
        torn_commit: true,
        double_replay: true,
    }
}

#[test]
fn two_worker_distributed_app_sweep_matches_in_process() {
    let job = app_job(FsKind::Cow, all_bugs());
    let single = in_process_summary(&job);
    assert!(single.tested > 0, "reference sweep must test workloads");
    assert!(
        !single.reports.is_empty(),
        "the all-bugs engine must produce violations"
    );

    let config = DistribConfig {
        workers: 2,
        ..DistribConfig::default()
    };
    let outcome = run_distributed(&job, &config, &worker_command(), None)
        .expect("distributed app sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // The grouped view reassembled from worker frames matches too: same
    // groups, same counts, byte-identical exemplars.
    let groups = outcome.checkpoint.bug_groups();
    assert!(!groups.is_empty());
    // Buggy workloads can violate at several crash points (one raw report
    // each), so the counts are ordered, not equal.
    let buggy = outcome.checkpoint.total_buggy() as usize;
    assert!(buggy > 0);
    assert!(buggy <= outcome.summary.raw_reports);
}

#[test]
fn two_worker_tcp_app_sweep_matches_in_process() {
    let job = app_job(FsKind::Cow, all_bugs());
    let single = in_process_summary(&job);

    let config = DistribConfig {
        workers: 2,
        ..DistribConfig::default()
    };
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_launcher(worker_command());
    let outcome = run_with_transport(&job, &config, &transport, None).expect("tcp app sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_summaries_equivalent(&outcome.summary, &single);
}

/// Every seeded engine bug is detected through the distributed coordinator
/// on two different host file systems, with exemplars byte-identical to
/// the in-process sweep — and the fixed engine is clean on both. (The
/// journaling host is excluded on purpose: its ext4-style data=ordered
/// flush masks the no-data-fsync bug, which the app corpus tests pin as
/// faithful behavior.)
#[test]
fn seeded_bug_matrix_is_detected_distributed_on_two_file_systems() {
    let bugs: [(EngineProfile, Consequence); 3] = [
        (
            EngineProfile {
                commit_without_data_fsync: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnAtomicityBroken,
        ),
        (
            EngineProfile {
                torn_commit: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnAtomicityBroken,
        ),
        (
            EngineProfile {
                double_replay: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnReplayNotIdempotent,
        ),
    ];
    let config = DistribConfig {
        workers: 2,
        ..DistribConfig::default()
    };
    for fs in [FsKind::Cow, FsKind::Flash] {
        for (engine, expected) in &bugs {
            let job = app_job(fs, *engine);
            let single = in_process_summary(&job);
            let outcome = run_distributed(&job, &config, &worker_command(), None)
                .expect("distributed app sweep runs");
            assert!(outcome.is_complete());
            assert_summaries_equivalent(&outcome.summary, &single);
            assert!(
                outcome
                    .summary
                    .reports
                    .iter()
                    .any(|report| report.consequence == *expected),
                "{} on {:?}: expected {expected:?} in {:?}",
                engine.describe(),
                fs,
                outcome.summary.reports
            );
        }

        let fixed_job = app_job(fs, EngineProfile::fixed());
        let single = in_process_summary(&fixed_job);
        assert!(single.reports.is_empty(), "fixed engine must be clean");
        let outcome = run_distributed(&fixed_job, &config, &worker_command(), None)
            .expect("distributed fixed-engine sweep runs");
        assert!(outcome.is_complete());
        assert_summaries_equivalent(&outcome.summary, &single);
        assert!(
            outcome.summary.reports.is_empty(),
            "fixed engine must be clean through the coordinator on {fs:?}"
        );
    }
}

#[test]
fn app_job_with_pruning_is_refused() {
    let mut job = app_job(FsKind::Cow, EngineProfile::fixed());
    job.prune = PruneMode::Representative;
    let config = DistribConfig {
        workers: 1,
        ..DistribConfig::default()
    };
    let error = run_distributed(&job, &config, &worker_command(), None)
        .expect_err("app job with pruning must be refused");
    assert!(
        error.to_string().contains("prune"),
        "unexpected error: {error}"
    );
}

#[test]
fn app_and_fs_jobs_never_share_a_fingerprint() {
    let app = app_job(FsKind::Cow, EngineProfile::fixed());
    let fs = SweepJob::new(b3_ace::Bounds::tiny(), NUM_SHARDS);
    assert_ne!(
        app.empty_checkpoint().fingerprint(),
        fs.empty_checkpoint().fingerprint()
    );
    // The engine profile scopes the checkpoint: a buggy-engine sweep can
    // never resume from (or merge into) a fixed-engine one.
    let buggy = app_job(FsKind::Cow, all_bugs());
    assert_ne!(
        app.empty_checkpoint().fingerprint(),
        buggy.empty_checkpoint().fingerprint()
    );
}
