//! Differential tests of representative (equivalence-class-pruned) sweeps.
//!
//! The soundness claim under test: canonicalizing workloads by the
//! file-set's forest automorphisms (`b3_ace::canon`) and crash-testing only
//! each class's enumeration-first representative finds the **same bug
//! groups with the same exemplar reports** as exhaustively testing every
//! candidate — while testing strictly fewer workloads. The tests here pin
//! that down three ways:
//!
//! * The **differential** test runs a full sweep and a
//!   [`PruneMode::Representative`] sweep over the same symmetric space and
//!   asserts identical `(skeleton, consequence)` group sets with
//!   byte-identical exemplars, plus the coverage-accounting invariant
//!   `tested_full + skipped_full == tested_rep + skipped_rep + pruned_rep`
//!   (pruned candidates are counted, never silently dropped).
//! * The **distributed** variant drives the same representative sweep
//!   through 4 real worker processes and the framed protocol, proving the
//!   prune mode rides the `SweepJob` codec and the canon-scoped fingerprint
//!   handshake intact.
//! * The **audit** tests exercise [`PruneMode::Audit`]: with the sound
//!   classifier, sampled members never diverge from their representatives;
//!   with a deliberately over-coarse classifier (the test-only hook), the
//!   audit detects the false merge and reports the offending class.

use b3_ace::{Bounds, Classifier, WorkloadGenerator};
use b3_fs_cow::CowFsSpec;
use b3_harness::distrib::{run_with_transport, ChildTransport, DistribConfig, SweepJob};
use b3_harness::{Progress, PruneMode, RunConfig, RunSummary, Sweep};
use b3_vfs::codec::Encoder;
use b3_vfs::workload::FileSet;
use b3_vfs::KernelEra;
use std::time::Duration;

/// A Progress with only the counter fields populated, for asserting on
/// [`Progress::describe`].
fn progress_with_counts(tested: usize, skipped: usize, pruned: usize) -> Progress {
    Progress {
        tested,
        skipped,
        pruned,
        bugs: 0,
        completed_shards: 0,
        total_shards: 0,
        total_workloads: None,
        elapsed: Duration::ZERO,
        eta: None,
        per_worker: Vec::new(),
    }
}

const NUM_SHARDS: usize = 12;

/// A small two-operation space over a file set with nontrivial symmetry:
/// three root files are mutually interchangeable, so the forest
/// automorphism group has 3! − 1 = 5 non-identity elements and pruning has
/// real work to do, while the space stays debug-build sized.
fn symmetric_seq2_bounds() -> Bounds {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "sym-seq2".into();
    bounds.files = FileSet::new(Vec::new(), vec!["foo".into(), "bar".into(), "baz".into()]);
    bounds
}

fn sweep(bounds: &Bounds, mode: PruneMode) -> RunSummary {
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    Sweep::new(&spec, config)
        .shards(NUM_SHARDS)
        .prune(mode)
        .run(bounds)
}

/// Serializes every exemplar report of a summary, so equality can be
/// asserted on bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

#[test]
fn representative_sweep_matches_full_sweep() {
    let bounds = symmetric_seq2_bounds();
    let full = sweep(&bounds, PruneMode::Off);
    assert!(full.tested > 0, "reference sweep must test workloads");
    assert!(
        !full.reports.is_empty(),
        "reference sweep must find bugs on the 4.16-era CowFs"
    );
    assert_eq!(full.pruned, 0, "pruning off must prune nothing");

    let rep = sweep(&bounds, PruneMode::Representative);
    assert!(rep.pruned > 0, "a symmetric space must prune members");
    assert!(
        rep.tested < full.tested,
        "representatives must be a strict subset ({} vs {})",
        rep.tested,
        full.tested
    );
    // Every candidate is accounted for exactly once: tested, skipped by
    // bounds, or pruned as equivalent. The two sweeps enumerate the same
    // space, so the totals must agree.
    assert_eq!(
        full.tested + full.skipped,
        rep.tested + rep.skipped + rep.pruned,
        "pruned candidates must be counted, not dropped"
    );
    // Same bugs: same (skeleton, consequence) groups, and — because each
    // class's representative is its enumeration-first member — the *same
    // exemplar workload* for every group, byte for byte.
    assert_eq!(
        report_bytes(&rep),
        report_bytes(&full),
        "exemplar reports must be byte-identical"
    );

    // Progress rendering distinguishes the two kinds of non-tested
    // candidates: "skipped" (could not execute) vs "pruned" (equivalent to
    // an earlier representative). A no-pruning sweep never mentions pruning.
    let described = progress_with_counts(rep.tested, rep.skipped, rep.pruned).describe();
    assert!(described.contains("pruned"), "{described}");
    let full_described = progress_with_counts(full.tested, full.skipped, full.pruned).describe();
    assert!(!full_described.contains("pruned"), "{full_described}");
}

#[test]
fn four_worker_representative_sweep_matches_full_sweep() {
    let bounds = symmetric_seq2_bounds();
    let full = sweep(&bounds, PruneMode::Off);
    let rep = sweep(&bounds, PruneMode::Representative);

    let mut job = SweepJob::new(bounds, NUM_SHARDS);
    job.prune = PruneMode::Representative;
    let config = DistribConfig {
        workers: 4,
        ..DistribConfig::default()
    };
    let transport = ChildTransport::new(b3_harness::distrib::WorkerCommand::new(env!(
        "CARGO_BIN_EXE_b3-sweep-worker"
    )));
    let outcome = run_with_transport(&job, &config, &transport, None)
        .expect("4-worker representative sweep runs");
    assert!(outcome.is_complete());

    let distributed = &outcome.summary;
    assert_eq!(distributed.tested, rep.tested, "tested counts differ");
    assert_eq!(distributed.skipped, rep.skipped, "skipped counts differ");
    assert_eq!(distributed.pruned, rep.pruned, "pruned counts differ");
    assert!(distributed.audit_failures.is_empty());
    assert_eq!(
        full.tested + full.skipped,
        distributed.tested + distributed.skipped + distributed.pruned,
        "distributed pruning must account for every candidate"
    );
    assert_eq!(
        report_bytes(distributed),
        report_bytes(&full),
        "distributed representative exemplars must match the full sweep"
    );
}

/// With the *sound* classifier, audited members never diverge from their
/// representatives — the audit is a no-op safety net that still tests a
/// deterministic sample of pruned candidates.
#[test]
fn audit_mode_passes_on_sound_classifier() {
    let bounds = symmetric_seq2_bounds();
    let full = sweep(&bounds, PruneMode::Off);
    let audited = sweep(
        &bounds,
        PruneMode::Audit {
            samples_per_class: 2,
        },
    );
    assert!(audited.pruned > 0);
    assert!(audited.audited > 0, "audit mode must sample members");
    assert!(
        audited.audited <= audited.pruned,
        "audits come from the pruned population"
    );
    assert_eq!(
        audited.audit_failures,
        Vec::new(),
        "a sound canonicalization must never diverge"
    );
    assert_eq!(
        report_bytes(&audited),
        report_bytes(&full),
        "audit runs must not perturb the group exemplars"
    );
}

/// The regression the audit exists for: an over-coarse canon key (here the
/// test-only classifier that treats files as interchangeable *across*
/// directories and flattens directory structure out of keys) falsely merges
/// classes whose members crash differently. Audit mode must catch it and
/// name the offending class.
#[test]
fn audit_mode_detects_over_coarse_canonicalization() {
    // Two sibling directories plus a root file: the sound group only swaps
    // A and B (with their contents), but the unsound hook also merges
    // `foo` with `A/foo` — and e.g. `rename(A, B); creat(A/foo)` is
    // unexecutable (its parent was just renamed away) while its false
    // "representative" `rename(A, B); creat(foo)` runs fine. That
    // skipped-vs-ran divergence is exactly what the audit compares.
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "unsound-seq2".into();
    bounds.files = FileSet::new(
        vec!["A".into(), "B".into()],
        vec!["foo".into(), "A/foo".into(), "B/foo".into()],
    );
    let unsound = Classifier::unsound_for_tests(&bounds);
    assert!(
        unsound.num_automorphisms() > Classifier::new(&bounds).num_automorphisms(),
        "the test hook must add false symmetries"
    );

    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    let summary = Sweep::new(&spec, config)
        .shards(NUM_SHARDS)
        .prune(PruneMode::Audit {
            // Sample aggressively: the space is tiny and the point is to
            // hit a diverging member, not to model production sampling.
            samples_per_class: u32::MAX,
        })
        .with_classifier_for_tests(unsound)
        .run(&bounds);
    assert!(summary.audited > 0, "audit must have sampled members");
    assert!(
        !summary.audit_failures.is_empty(),
        "audit mode must detect the over-coarse key \
         (audited {} members, pruned {})",
        summary.audited,
        summary.pruned
    );
    let failure = &summary.audit_failures[0];
    assert!(!failure.class.is_empty(), "failure must name the class");
    assert!(
        failure.detail.contains("diverges") || failure.detail.contains("rejected"),
        "{}",
        failure.detail
    );
}

/// The pruned counter threads through checkpoint resume: interrupting a
/// representative sweep and resuming it yields the same totals as an
/// uninterrupted one, with pruned counts restored from the checkpoint
/// rather than recounted from zero.
#[test]
fn representative_sweep_resumes_with_pruned_counts() {
    let bounds = symmetric_seq2_bounds();
    let uninterrupted = sweep(&bounds, PruneMode::Representative);

    let spec = CowFsSpec::new(KernelEra::V4_16);
    let partial_config = RunConfig {
        threads: 2,
        stop_after_workloads: Some(uninterrupted.tested / 2),
        ..RunConfig::default()
    };
    let sweeper = Sweep::new(&spec, partial_config)
        .shards(NUM_SHARDS)
        .prune(PruneMode::Representative);
    let mut checkpoint = sweeper.empty_checkpoint(&bounds);
    let partial = sweeper.run_resumable(&bounds, &mut checkpoint);
    assert!(partial.tested < uninterrupted.tested);
    // Serialize/restore between the partial run and the resume, as a real
    // kill/restart would.
    let mut restored = b3_harness::SweepCheckpoint::from_bytes(&checkpoint.to_bytes())
        .expect("checkpoint round-trips");
    let resume_config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    let resumed = Sweep::new(&spec, resume_config)
        .shards(NUM_SHARDS)
        .prune(PruneMode::Representative)
        .run_resumable(&bounds, &mut restored);
    assert_eq!(resumed.tested, uninterrupted.tested);
    assert_eq!(resumed.skipped, uninterrupted.skipped);
    assert_eq!(resumed.pruned, uninterrupted.pruned);
    assert_eq!(report_bytes(&resumed), report_bytes(&uninterrupted));
}

/// A representative-mode checkpoint is scoped by the canon version, so a
/// full-sweep checkpoint and a pruned-sweep checkpoint of the same bounds
/// can never be confused for one another.
#[test]
fn prune_mode_scopes_checkpoint_fingerprints() {
    let bounds = symmetric_seq2_bounds();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let off = Sweep::new(&spec, RunConfig::default())
        .shards(NUM_SHARDS)
        .empty_checkpoint(&bounds);
    let rep = Sweep::new(&spec, RunConfig::default())
        .shards(NUM_SHARDS)
        .prune(PruneMode::Representative)
        .empty_checkpoint(&bounds);
    let audit = Sweep::new(&spec, RunConfig::default())
        .shards(NUM_SHARDS)
        .prune(PruneMode::Audit {
            samples_per_class: 2,
        })
        .empty_checkpoint(&bounds);
    assert_ne!(off.fingerprint(), rep.fingerprint());
    assert_ne!(rep.fingerprint(), audit.fingerprint());
    assert!(
        rep.fingerprint()
            .contains(&format!("canon{}", b3_ace::CANON_VERSION)),
        "{}",
        rep.fingerprint()
    );
    // WorkloadGenerator and the classifier agree on the space the
    // fingerprint describes.
    let generated = WorkloadGenerator::new(bounds.clone()).count();
    assert!(generated > 0);
}

/// The acceptance-scale differential from the issue: representative mode
/// over the **full paper seq-3-metadata space** (3,884,796 candidates,
/// 982,766 tested exhaustively) reproduces the full sweep's 40 bug groups
/// with byte-identical exemplars while crash-testing at most 20% of the
/// workloads. Ignored by default (minutes even in release); run it with
/// `cargo test --release -p b3-harness --test canon_differential -- --ignored`.
#[test]
#[ignore = "full seq-3-metadata space; run explicitly in release builds"]
fn full_seq3_metadata_representative_sweep_reproduces_the_40_groups() {
    let bounds = Bounds::paper_seq3_metadata();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let shards = 512;
    let full = Sweep::new(&spec, RunConfig::default())
        .shards(shards)
        .run(&bounds);
    assert_eq!(full.tested, 982_766, "the paper-scale space changed");
    assert_eq!(
        full.reports.len(),
        40,
        "the full sweep's group count changed"
    );

    let rep = Sweep::new(&spec, RunConfig::default())
        .shards(shards)
        .prune(PruneMode::Representative)
        .run(&bounds);
    assert_eq!(
        full.tested + full.skipped,
        rep.tested + rep.skipped + rep.pruned
    );
    assert!(
        rep.tested * 5 <= full.tested,
        "representatives must be at most 20% of the space \
         ({} of {} tested)",
        rep.tested,
        full.tested
    );
    assert_eq!(
        report_bytes(&rep),
        report_bytes(&full),
        "representative exemplars must be byte-identical to the full sweep"
    );
    println!(
        "representative sweep: {} tested / {} skipped / {} pruned \
         (full sweep tested {}), {} groups",
        rep.tested,
        rep.skipped,
        rep.pruned,
        full.tested,
        rep.reports.len()
    );
}
