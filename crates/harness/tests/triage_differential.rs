//! Differential tests of triaged (`CrashPointPolicy::AllTriaged`) sweeps.
//!
//! The soundness claim under test: statically triaging crash states by
//! checker-input identity (`b3_analyze` content digests + the checkpoint's
//! checker projection) and reusing recorded verdicts for provably-quiescent
//! states finds the **same bug groups with byte-identical exemplar
//! reports** as dynamically constructing, recovering, and checking every
//! crash state — on every simulated file system. The tests pin that down
//! three ways:
//!
//! * The **differential** test runs the same bounded seq-2 space under
//!   `CrashPointPolicy::All` and `AllTriaged { audit: 0 }` on all four
//!   file systems and asserts byte-identical exemplar reports plus equal
//!   workload accounting.
//! * The **shard-invariance** property: the triage cache resets at shard
//!   boundaries, so a verdict replayed in one sharding is recomputed in
//!   another — the sweep outcome must be invariant under `Bounds::shard`
//!   splits (any shard count, including no sharding at all).
//! * The **audit** test runs `AllTriaged { audit: n }`: reused states
//!   re-tested dynamically must never diverge from their cached witness,
//!   and the audit work must surface through the `audited` counter.

use b3_ace::Bounds;
use b3_crashmonkey::{CrashMonkeyConfig, CrashPointPolicy};
use b3_fs_cow::CowFsSpec;
use b3_fs_flash::FlashFsSpec;
use b3_fs_journal::JournalFsSpec;
use b3_fs_veri::VeriFsSpec;
use b3_harness::{RunConfig, RunSummary, Sweep};
use b3_vfs::codec::Encoder;
use b3_vfs::{FsSpec, KernelEra};

/// A bounded two-operation space: big enough that quiescent crash states
/// actually occur (seq-2 chains persistence points), small enough for
/// debug-build differential runs on four file systems.
fn seq2_bounds() -> Bounds {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "triage-seq2".into();
    bounds
}

/// The four simulated file systems at the evaluation era.
fn all_specs() -> Vec<Box<dyn FsSpec + Sync>> {
    vec![
        Box::new(CowFsSpec::new(KernelEra::V4_16)),
        Box::new(FlashFsSpec::new(KernelEra::V4_16)),
        Box::new(JournalFsSpec::new(KernelEra::V4_16)),
        Box::new(VeriFsSpec::new(KernelEra::V4_16)),
    ]
}

fn sweep(
    spec: &(dyn FsSpec + Sync),
    bounds: &Bounds,
    crash_points: CrashPointPolicy,
    shards: usize,
) -> RunSummary {
    let config = RunConfig {
        threads: 2,
        crashmonkey: CrashMonkeyConfig {
            crash_points,
            ..CrashMonkeyConfig::small()
        },
        ..RunConfig::default()
    };
    Sweep::new(spec, config).shards(shards).run(bounds)
}

/// Serializes every exemplar report of a summary, so equality can be
/// asserted on bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

#[test]
fn triaged_sweep_matches_exhaustive_on_all_file_systems() {
    let bounds = seq2_bounds();
    let mut specs_with_bugs = 0;
    for spec in all_specs() {
        let spec = spec.as_ref();
        let full = sweep(spec, &bounds, CrashPointPolicy::All, 4);
        let triaged = sweep(spec, &bounds, CrashPointPolicy::AllTriaged { audit: 0 }, 4);

        assert!(
            full.tested > 0,
            "{}: reference sweep must test",
            spec.name()
        );
        if !full.reports.is_empty() {
            specs_with_bugs += 1;
        }
        // Same workloads, same accounting: triage skips crash-state
        // *phases*, never workloads.
        assert_eq!(full.tested, triaged.tested, "{}", spec.name());
        assert_eq!(full.skipped, triaged.skipped, "{}", spec.name());
        // Reusing a verdict is invisible in the output: identical groups,
        // byte-identical exemplar reports.
        assert_eq!(
            report_bytes(&full),
            report_bytes(&triaged),
            "{}: triaged bug groups must be byte-identical to exhaustive",
            spec.name()
        );
        assert!(
            triaged.audit_failures.is_empty(),
            "{}: audit=0 must record no divergences: {:?}",
            spec.name(),
            triaged.audit_failures
        );
    }
    assert!(
        specs_with_bugs > 0,
        "the seq-2 space must expose bugs on at least one file system"
    );
}

/// The triage cache is reset at every shard boundary, so the *set* of
/// dynamically tested crash states depends on the sharding — but the
/// outcome must not: quiescent verdicts are pure functions of the crash
/// state and its checker projection, so re-deriving them in a different
/// shard reproduces the same reports.
#[test]
fn triaged_outcome_is_invariant_under_shard_splits() {
    let bounds = seq2_bounds();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let reference = sweep(&spec, &bounds, CrashPointPolicy::AllTriaged { audit: 0 }, 1);
    assert!(reference.tested > 0);
    for shards in [2, 3, 7, 16] {
        let split = sweep(
            &spec,
            &bounds,
            CrashPointPolicy::AllTriaged { audit: 0 },
            shards,
        );
        assert_eq!(reference.tested, split.tested, "{shards} shards");
        assert_eq!(reference.skipped, split.skipped, "{shards} shards");
        assert_eq!(
            report_bytes(&reference),
            report_bytes(&split),
            "sweep outcome must be invariant under a {shards}-way shard split"
        );
    }
}

#[test]
fn triage_audit_retests_reused_states_without_divergence() {
    let bounds = seq2_bounds();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let audited = sweep(&spec, &bounds, CrashPointPolicy::AllTriaged { audit: 2 }, 4);
    assert!(
        audited.audited > 0,
        "audit budget must re-test at least one reused crash state"
    );
    assert!(
        audited.audit_failures.is_empty(),
        "triage audits must never diverge on a sound analyzer: {:?}",
        audited.audit_failures
    );
    // Audit work changes accounting (audited states pay the dynamic cost)
    // but never the findings.
    let reference = sweep(&spec, &bounds, CrashPointPolicy::All, 4);
    assert_eq!(report_bytes(&reference), report_bytes(&audited));
}
