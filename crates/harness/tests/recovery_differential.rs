//! Differential tests of the incremental crash-state recovery engine.
//!
//! The equivalence claim under test: recovering crash states by patching
//! the previous recovered view forward with the block delta between
//! adjacent states ([`RecoveryMode::PatchForward`]) produces **the same
//! verdicts, the same bug reports, and the same group exemplars** as
//! mounting every crash state from scratch ([`RecoveryMode::Remount`]) —
//! under [`CrashPointPolicy::All`], where a workload contributes several
//! crash states and the incremental path actually engages.
//!
//! * The **in-process** test runs the same bounded seq-2 slice through the
//!   sharded sweep engine once per recovery mode on **all four** simulated
//!   file systems and asserts byte-identical exemplar reports and equal
//!   counts. (Because this suite runs in a debug build, every individual
//!   patched-forward crash state is additionally asserted bit-identical to
//!   a from-scratch mount inside `RecoverySession` itself.)
//! * The **distributed** test drives the default (patch-forward) recovery
//!   through 4 real worker processes and compares against an in-process
//!   remount-from-scratch sweep — proving the engine's equivalence holds
//!   across the process fan-out and that the wire format needed no new
//!   fields for it.

use b3_ace::Bounds;
use b3_crashmonkey::{CrashMonkeyConfig, CrashPointPolicy, RecoveryMode};
use b3_harness::distrib::{run_distributed, DistribConfig, SweepJob, WorkerCommand};
use b3_harness::{FsKind, RunConfig, RunSummary, Sweep};
use b3_vfs::codec::Encoder;
use b3_vfs::workload::FileSet;
use b3_vfs::KernelEra;

const NUM_SHARDS: usize = 8;

/// A small two-operation space (~130 workloads, several persistence points
/// per workload): big enough that `CrashPointPolicy::All` visits multiple
/// crash states per workload, small enough for debug-build CI.
fn small_seq2_bounds() -> Bounds {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "recovery-seq2".into();
    bounds.files = FileSet::new(Vec::new(), vec!["foo".into(), "bar".into()]);
    bounds
}

fn all_points_config(recovery: RecoveryMode) -> RunConfig {
    RunConfig {
        threads: 2,
        crashmonkey: CrashMonkeyConfig {
            crash_points: CrashPointPolicy::All,
            recovery,
            ..CrashMonkeyConfig::small()
        },
        ..RunConfig::default()
    }
}

fn sweep(kind: FsKind, recovery: RecoveryMode) -> RunSummary {
    let spec = kind.spec(KernelEra::V4_16);
    Sweep::new(spec.as_ref(), all_points_config(recovery))
        .shards(NUM_SHARDS)
        .run(&small_seq2_bounds())
}

/// Serializes every exemplar report of a summary, so equality can be
/// asserted on bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

#[test]
fn patch_forward_matches_remount_on_all_four_file_systems() {
    let mut bugs_somewhere = false;
    for kind in FsKind::ALL {
        let remount = sweep(kind, RecoveryMode::Remount);
        let patched = sweep(kind, RecoveryMode::PatchForward);
        assert!(remount.tested > 0, "{kind:?}: sweep must test workloads");
        bugs_somewhere |= !remount.reports.is_empty();
        assert_eq!(
            patched.tested, remount.tested,
            "{kind:?}: tested counts differ"
        );
        assert_eq!(
            patched.skipped, remount.skipped,
            "{kind:?}: skipped counts differ"
        );
        assert_eq!(
            patched.raw_reports, remount.raw_reports,
            "{kind:?}: raw report counts differ"
        );
        assert_eq!(
            report_bytes(&patched),
            report_bytes(&remount),
            "{kind:?}: exemplar reports must be byte-identical"
        );
    }
    assert!(
        bugs_somewhere,
        "at least one 4.16-era file system must produce bug reports, \
         or the differential proves nothing"
    );
}

#[test]
fn distributed_patch_forward_matches_in_process_remount() {
    let bounds = small_seq2_bounds();
    // The in-process reference mounts every crash state from scratch.
    let spec = FsKind::Cow.spec(KernelEra::V4_16);
    let remount = Sweep::new(spec.as_ref(), all_points_config(RecoveryMode::Remount))
        .shards(NUM_SHARDS)
        .run(&bounds);
    assert!(
        !remount.reports.is_empty(),
        "reference sweep must find bugs on the 4.16-era CowFs"
    );

    // The workers use the default recovery mode (patch-forward); the mode
    // is deliberately absent from the wire format because it cannot change
    // outcomes.
    let mut job = SweepJob::new(bounds, NUM_SHARDS);
    job.crashmonkey = CrashMonkeyConfig {
        crash_points: CrashPointPolicy::All,
        ..CrashMonkeyConfig::small()
    };
    let config = DistribConfig {
        workers: 4,
        ..DistribConfig::default()
    };
    let worker = WorkerCommand::new(env!("CARGO_BIN_EXE_b3-sweep-worker"));
    let outcome = run_distributed(&job, &config, &worker, None).expect("distributed sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);

    assert_eq!(outcome.summary.tested, remount.tested);
    assert_eq!(outcome.summary.skipped, remount.skipped);
    assert_eq!(outcome.summary.raw_reports, remount.raw_reports);
    assert_eq!(
        report_bytes(&outcome.summary),
        report_bytes(&remount),
        "distributed patch-forward exemplars must be byte-identical to \
         the in-process remount reference"
    );
    // Group exemplars reassembled from the worker frames match too.
    let groups = outcome.checkpoint.bug_groups();
    assert_eq!(groups.len(), remount.reports.len());
    for (group, exemplar) in groups.iter().zip(&remount.reports) {
        assert_eq!(&group.example, exemplar);
    }
}
