//! End-to-end tests of the fleet daemon (`b3_harness::distrib::fleet`).
//!
//! * The **restart** test is the acceptance scenario: two jobs on
//!   different file systems are enqueued over real client TCP frames, the
//!   daemon is stopped after draining only the first (the moral equivalent
//!   of killing it mid-queue), a fresh daemon reopens the same fleet
//!   directory, and the drained queue's per-job bug groups are
//!   byte-identical to single-process [`Sweep`] runs over the same spaces
//!   — the restart is invisible in the results.
//! * The **client-frame** test drives the whole request surface over one
//!   daemon: enqueue, status, cancel (including the must-refuse cases),
//!   results for unknown jobs, and a subscriber that receives exactly the
//!   run's bug-group discoveries as a live event stream.
//!
//! Sweep workers are real `b3-sweep-worker` child processes; fleet clients
//! speak real TCP to `serve_clients`.

use std::path::{Path, PathBuf};

use b3_ace::Bounds;
use b3_harness::distrib::{
    inspect_queue, ChildTransport, DistribConfig, FleetClient, FleetConfig, FleetCoordinator,
    JobState, SweepJob, WorkerCommand,
};
use b3_harness::{FsKind, GroupTable, RunConfig, Sweep, SweepCheckpoint};
use b3_vfs::codec::Encoder;
use b3_vfs::KernelEra;

const NUM_SHARDS: usize = 12;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_b3-sweep-worker"))
}

/// A per-test fleet directory in the system temp directory.
fn fleet_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("b3-fleet-e2e-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same small two-operation space the distrib tests sweep. The two
/// tenants of the restart test differ by kernel era — the 3.13-era CowFs
/// exhibits a strict superset of the 4.16 bugs, so the two jobs must
/// produce visibly different group tables.
fn seq2_job(era: KernelEra) -> SweepJob {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "tiny-seq2".into();
    let mut job = SweepJob::new(bounds, NUM_SHARDS);
    job.fs = FsKind::Cow;
    job.era = era;
    job
}

fn fleet_config(dir: &Path) -> FleetConfig {
    FleetConfig {
        dir: dir.to_path_buf(),
        distrib: DistribConfig {
            workers: 2,
            ..DistribConfig::default()
        },
        secret: None,
    }
}

fn group_bytes(groups: &GroupTable) -> Vec<u8> {
    let mut enc = Encoder::new();
    groups.encode(&mut enc);
    enc.finish()
}

/// The single-process reference: the same space swept in-process must
/// produce the byte-identical grouped table.
fn single_process_group_bytes(job: &SweepJob) -> Vec<u8> {
    let spec = job.fs.spec(job.era);
    let config = RunConfig {
        threads: 2,
        crashmonkey: job.crashmonkey,
        ..RunConfig::default()
    };
    let bounds = job.fs_bounds().expect("fs job");
    let mut reference = SweepCheckpoint::new(bounds, job.num_shards);
    let _ = Sweep::new(spec.as_ref(), config)
        .shards(job.num_shards)
        .prune(job.prune)
        .run_resumable(bounds, &mut reference);
    group_bytes(&reference.grouped())
}

#[test]
fn fleet_drains_two_jobs_across_a_daemon_restart_byte_identically() {
    let dir = fleet_dir("restart");
    let transport = ChildTransport::new(worker_command());
    let job_modern = seq2_job(KernelEra::V4_16);
    let job_old = seq2_job(KernelEra::V3_13);

    // Daemon #1: accept two enqueues over real client TCP frames, drain
    // only the first job, then stop — the queue dies mid-way.
    let mut id_modern = 0;
    let mut id_old = 0;
    {
        let fleet = FleetCoordinator::open(fleet_config(&dir)).expect("fleet opens");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("control listener binds");
        let addr = listener.local_addr().expect("control address").to_string();
        std::thread::scope(|scope| {
            let fleet = &fleet;
            scope.spawn(move || fleet.serve_clients(listener).expect("control loop runs"));

            let mut client = FleetClient::connect(&addr).expect("client connects");
            id_modern = client.enqueue(&job_modern).expect("first enqueue");
            id_old = client.enqueue(&job_old).expect("second enqueue");
            assert_ne!(id_modern, id_old);
            let rows = client.status().expect("status over the wire");
            assert_eq!(rows.len(), 2);
            assert!(rows.iter().all(|row| row.state == JobState::Queued));

            let ran = fleet.run_next_job(&transport).expect("first job runs");
            assert_eq!(ran, Some(id_modern), "jobs run in enqueue order");
            fleet.request_stop();
        });
    }

    // The journal alone tells the story: first job done, second untouched.
    let offline = inspect_queue(&dir).expect("offline queue inspection");
    assert_eq!(offline.len(), 2);
    assert_eq!(offline[0].state, JobState::Done);
    assert_eq!(offline[1].state, JobState::Queued);

    // Daemon #2: reopen the same directory and drain the rest.
    let fleet = FleetCoordinator::open(fleet_config(&dir)).expect("fleet reopens");
    let rows = fleet.status();
    assert_eq!(rows.len(), 2, "the restart must not lose or duplicate jobs");
    assert_eq!(rows[0].state, JobState::Done);
    assert_eq!(rows[1].state, JobState::Queued);
    let ran = fleet.run_until_idle(&transport).expect("queue drains");
    assert_eq!(ran, 1, "only the remaining job is (re)run");

    // Byte identity per job, against in-process sweeps of the same spaces.
    for (id, job) in [(id_modern, &job_modern), (id_old, &job_old)] {
        let (status, groups) = fleet.results(id).expect("results load");
        assert_eq!(status.state, JobState::Done);
        assert!(
            !groups.is_empty(),
            "the seq-2 space must find bugs on the {} CowFs",
            job.era.as_str()
        );
        assert_eq!(
            group_bytes(&groups),
            single_process_group_bytes(job),
            "fleet job {id} must be byte-identical to the single-process sweep"
        );
    }

    // The two tenants genuinely swept different spaces: the 3.13-era job
    // found bugs the 4.16 one did not.
    let (_, groups_modern) = fleet.results(id_modern).expect("modern results load");
    let (_, groups_old) = fleet.results(id_old).expect("old results load");
    assert!(groups_old.len() > groups_modern.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_frames_cover_cancel_errors_and_live_discovery_events() {
    let dir = fleet_dir("client");
    let transport = ChildTransport::new(worker_command());
    let fleet = FleetCoordinator::open(fleet_config(&dir)).expect("fleet opens");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("control listener binds");
    let addr = listener.local_addr().expect("control address").to_string();

    std::thread::scope(|scope| {
        let fleet = &fleet;
        scope.spawn(move || fleet.serve_clients(listener).expect("control loop runs"));

        let mut client = FleetClient::connect(&addr).expect("client connects");
        let id_run = client
            .enqueue(&seq2_job(KernelEra::V4_16))
            .expect("first enqueue");
        let id_cancel = client
            .enqueue(&seq2_job(KernelEra::V3_13))
            .expect("second enqueue");

        // Cancel while still queued: allowed exactly once.
        client.cancel(id_cancel).expect("queued jobs cancel");
        let err = client
            .cancel(id_cancel)
            .expect_err("cancelling a cancelled job is refused");
        assert!(err.to_string().contains("refused"), "{err}");
        let err = client
            .results(9999)
            .expect_err("results for an unknown job are refused");
        assert!(err.to_string().contains("refused"), "{err}");

        // A subscriber on its own connection sees the run's discoveries.
        let mut events = FleetClient::connect(&addr)
            .expect("subscriber connects")
            .subscribe()
            .expect("subscription starts");

        let ran = fleet.run_until_idle(&transport).expect("queue drains");
        assert_eq!(ran, 1, "the cancelled job must not be scheduled");

        let (status, groups) = fleet.results(id_run).expect("results load");
        assert_eq!(status.state, JobState::Done);
        fleet.request_stop();

        // Stopping closes the event stream; everything broadcast during
        // the run is still buffered in the socket. Every bug group of the
        // final table was a fresh discovery (the checkpoint started
        // empty), so the stream must carry exactly one event per group.
        let mut streamed = Vec::new();
        while let Some(event) = events.next_event() {
            assert_eq!(event.job, id_run);
            assert!(event.count > 0);
            streamed.push((event.skeleton, event.consequence));
        }
        streamed.sort();
        let mut expected: Vec<(String, _)> = groups
            .groups()
            .iter()
            .map(|group| (group.skeleton.clone(), group.consequence))
            .collect();
        expected.sort();
        assert_eq!(streamed, expected);
    });

    // Offline, the journal agrees with everything the clients saw.
    let offline = inspect_queue(&dir).expect("offline queue inspection");
    let states: Vec<JobState> = offline.iter().map(|row| row.state).collect();
    assert_eq!(states, [JobState::Done, JobState::Cancelled]);
    let _ = std::fs::remove_dir_all(&dir);
}
