//! End-to-end tests of the multi-process sweep fan-out.
//!
//! * The **differential** test proves a 4-worker multi-process sweep is
//!   equivalent to the single-process [`Sweep`] over the same bounds: same
//!   tested/skipped counts, byte-identical exemplar reports — and, since
//!   shard results are deduplicated at the source, that its grouped result
//!   (group → raw-report count + exemplar) equals post-hoc `group_reports`
//!   over the raw report stream of an ungrouped `run_stream` sweep.
//! * The **chaos** test extends PR 2's kill/serialize/resume loop across
//!   process boundaries: every worker of the first run is killed mid-shard
//!   (via the worker binary's `--die-after-workloads` crash hook), then the
//!   coordinator itself is repeatedly stopped after partial merges, and the
//!   checkpoint file still converges to the uninterrupted run's counts.
//! * The **segment** tests cover the append-only checkpoint file: per-shard
//!   delta appends instead of full rewrites, replay equivalence, tolerance
//!   of the torn trailing record a killed coordinator can leave, and the
//!   legacy single-blob format.
//! * The **transport** tests drive the same differential and chaos
//!   equivalences over the TCP and ssh-pipe transports: 4 TCP workers are
//!   byte-identical to the single-process sweep, a TCP worker killed
//!   mid-shard is respawned (in-flight shards re-queued, a fresh
//!   connection accepted) until the sweep converges, an ssh-pipe fleet
//!   (via a stub `ssh`) matches too, and a worker refuses a job whose
//!   fingerprint does not match what it computes (the mismatched-binary
//!   handshake).
//!
//! Workers are real child processes running the `b3-sweep-worker` binary.

use std::path::PathBuf;
use std::time::Duration;

use b3_ace::{Bounds, WorkloadGenerator};
use b3_fs_cow::CowFsSpec;
use b3_harness::distrib::protocol::{FromWorker, Hello, ToWorker, PROTOCOL_VERSION};
use b3_harness::distrib::{
    load_checkpoint, run_distributed, run_with_transport, save_checkpoint, segment_stats,
    ChildTransport, DistribConfig, SshTransport, SweepJob, TcpTransport, Transport, WorkerCommand,
};
use b3_harness::{group_reports, run_stream, BugGroup, RunConfig, RunSummary, Sweep};
use b3_vfs::codec::Encoder;
use b3_vfs::KernelEra;

const NUM_SHARDS: usize = 12;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_b3-sweep-worker"))
}

/// A small two-operation space (~130 workloads): big enough that every
/// worker sees several shards, small enough for debug-build CI.
fn small_seq2_bounds() -> Bounds {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "tiny-seq2".into();
    bounds
}

/// The uninterrupted single-process reference sweep.
fn single_process_summary(bounds: &Bounds) -> RunSummary {
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    Sweep::new(&spec, config).shards(NUM_SHARDS).run(bounds)
}

/// Post-hoc grouping of the *raw* (ungrouped) report stream over the same
/// bounds — the §5.3 reference the source-deduplicated sweeps must match.
fn post_hoc_reference(bounds: &Bounds) -> (usize, Vec<BugGroup>) {
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    let raw = run_stream(&spec, WorkloadGenerator::new(bounds.clone()), &config);
    let groups = group_reports(&raw.reports);
    (raw.reports.len(), groups)
}

/// Serializes every report of a summary, so equality can be asserted on
/// bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

fn assert_summaries_equivalent(distributed: &RunSummary, single: &RunSummary) {
    assert_eq!(distributed.tested, single.tested, "tested counts differ");
    assert_eq!(distributed.skipped, single.skipped, "skipped counts differ");
    assert_eq!(
        distributed.raw_reports, single.raw_reports,
        "raw report counts differ"
    );
    assert_eq!(
        report_bytes(distributed),
        report_bytes(single),
        "exemplar reports must be byte-identical (same bugs, same order)"
    );
}

/// A per-test checkpoint path in the system temp directory.
fn checkpoint_path(test: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("b3-{test}-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn four_worker_distributed_sweep_matches_single_process() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    assert!(single.tested > 0, "reference sweep must test workloads");
    assert!(
        !single.reports.is_empty(),
        "reference sweep must find bugs on the 4.16-era CowFs"
    );

    let job = SweepJob::new(bounds.clone(), NUM_SHARDS);
    let config = DistribConfig {
        workers: 4,
        ..DistribConfig::default()
    };
    let final_progress = std::sync::Mutex::new(None);
    let callback = |p: &b3_harness::Progress| {
        *final_progress.lock().unwrap() = Some(p.clone());
    };
    let outcome = run_distributed(&job, &config, &worker_command(), Some(&callback))
        .expect("distributed sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_eq!(outcome.resumed_shards, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // Dedup equivalence over the wire: the grouped shard frames the four
    // worker processes shipped must reassemble into exactly the table that
    // post-hoc grouping of the raw, ungrouped report stream produces —
    // same group keys, same raw-report counts, byte-identical exemplars.
    let (raw_reports, reference) = post_hoc_reference(&bounds);
    assert_eq!(outcome.summary.raw_reports, raw_reports);
    let grouped = outcome.checkpoint.bug_groups();
    assert_eq!(grouped.len(), reference.len());
    for (ours, theirs) in grouped.iter().zip(&reference) {
        assert_eq!(ours, theirs);
    }

    // The per-worker telemetry of the final progress snapshot accounts for
    // every shard and every tested workload — no work is double-counted or
    // attributed to nobody.
    let progress = final_progress
        .lock()
        .unwrap()
        .take()
        .expect("the final progress callback fires");
    assert_eq!(progress.per_worker.len(), 4);
    let telemetry_shards: u64 = progress.per_worker.iter().map(|w| w.shards).sum();
    let telemetry_tested: u64 = progress.per_worker.iter().map(|w| w.tested).sum();
    assert_eq!(telemetry_shards, NUM_SHARDS as u64);
    assert_eq!(telemetry_tested as usize, outcome.summary.tested);
}

#[test]
fn distributed_sweep_rejects_checkpoint_of_a_different_sweep() {
    let path = checkpoint_path("mismatch");
    let job = SweepJob::new(Bounds::tiny(), 4);
    b3_harness::distrib::save_checkpoint(&path, &job.empty_checkpoint()).unwrap();

    // Same file, different shard split: must be rejected, not resumed.
    let other_job = SweepJob::new(Bounds::tiny(), 5);
    let config = DistribConfig {
        workers: 1,
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let result = run_distributed(&other_job, &config, &worker_command(), None);
    assert!(result.is_err(), "mismatched checkpoint must be rejected");

    // Same bounds and shards, different execution context (file system):
    // shard results would come from a different file system, so the
    // checkpoint scope must reject the resume too.
    let mut other_fs_job = SweepJob::new(Bounds::tiny(), 4);
    other_fs_job.fs = b3_harness::FsKind::Journal;
    let result = run_distributed(&other_fs_job, &config, &worker_command(), None);
    assert!(
        result.is_err(),
        "a checkpoint recorded on another file system must be rejected"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_killed_workers_and_coordinator_converge_to_uninterrupted_counts() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let path = checkpoint_path("chaos");
    let job = SweepJob::new(bounds, NUM_SHARDS);

    // Round 1: every worker is rigged to die abruptly mid-shard (after 15
    // workloads each, i.e. partway into its second shard). All four die, so
    // the run reports an error — but each completed shard was merged and
    // persisted before the deaths.
    let config = DistribConfig {
        workers: 4,
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let dying_worker = worker_command().arg("--die-after-workloads").arg("15");
    let crashed = run_distributed(&job, &config, &dying_worker, None);
    assert!(
        crashed.is_err(),
        "a run whose every worker dies must report the failure"
    );
    let partial = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("partial checkpoint was persisted before the workers died");
    assert!(
        partial.completed_shards() > 0,
        "shards completed before the kill must have been merged"
    );
    assert!(
        !partial.is_complete(),
        "the worker kills must actually interrupt the sweep"
    );

    // Rounds 2..: resume with healthy workers, but stop the coordinator
    // after at most two newly merged shards each round — the moral
    // equivalent of killing it after a partial merge, since the checkpoint
    // file is (atomically) rewritten on every merge. Each round starts a
    // fresh coordinator that reloads the file from disk.
    let mut rounds = 0;
    loop {
        let config = DistribConfig {
            workers: 4,
            stop_after_shards: Some(2),
            checkpoint_path: Some(path.clone()),
            ..DistribConfig::default()
        };
        let outcome = run_distributed(&job, &config, &worker_command(), None)
            .expect("resumed coordinator runs");
        assert_eq!(outcome.failed_workers, 0);
        rounds += 1;
        assert!(rounds < 100, "the resume loop must converge");
        if outcome.is_complete() {
            break;
        }
    }
    assert!(
        rounds > 1,
        "stop_after_shards must actually interrupt the coordinator"
    );

    // The final checkpoint is indistinguishable from an uninterrupted run.
    let converged = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("final checkpoint exists");
    assert!(converged.is_complete());
    assert_summaries_equivalent(&converged.summary(), &single);
    let _ = std::fs::remove_file(&path);
}

/// The checkpoint file is an append-only segment log: one snapshot written
/// at run start, then one delta record per merged shard — never a full
/// rewrite per merge — and replaying it yields the in-memory checkpoint.
#[test]
fn checkpoint_file_grows_by_deltas_not_rewrites() {
    let bounds = small_seq2_bounds();
    let path = checkpoint_path("segments");
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 2,
        stop_after_shards: Some(3),
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let outcome =
        run_distributed(&job, &config, &worker_command(), None).expect("partial run succeeds");
    assert!(!outcome.is_complete());

    let stats = segment_stats(&path).expect("segment file parses");
    assert_eq!(stats.snapshots, 1, "exactly the run-start compaction");
    assert!(
        stats.deltas >= 3,
        "every merged shard must be an appended delta (got {})",
        stats.deltas
    );
    assert_eq!(stats.truncated_tail_bytes, 0);

    let replayed = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("checkpoint file exists");
    assert_eq!(replayed, outcome.checkpoint);
    assert_eq!(replayed.completed_shards(), stats.deltas);
    let _ = std::fs::remove_file(&path);
}

/// A coordinator killed mid-append leaves a torn trailing record; the
/// loader must ignore it (losing only that one in-flight shard) and a
/// resumed sweep must still converge to the uninterrupted counts.
#[test]
fn torn_trailing_record_is_ignored_on_load() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let path = checkpoint_path("torn");
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 2,
        stop_after_shards: Some(4),
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    run_distributed(&job, &config, &worker_command(), None).expect("partial run succeeds");
    let before = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("checkpoint file exists");

    // Simulate the kill: a delta record whose declared length runs past
    // end-of-file, i.e. the append was cut short.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("checkpoint file opens for append");
        file.write_all(&[2u8]).expect("tag byte");
        file.write_all(&0xFFF0_u32.to_le_bytes()).expect("length");
        file.write_all(b"partial delta payload cut off by a crash")
            .expect("torn payload");
    }
    let stats = segment_stats(&path).expect("segment file still parses");
    assert!(stats.truncated_tail_bytes > 0, "the tail must look torn");
    let after = load_checkpoint(&path)
        .expect("a torn tail must not make the checkpoint unreadable")
        .expect("checkpoint file exists");
    assert_eq!(after, before, "the torn record contributes nothing");

    // And the resume completes as if nothing happened.
    let config = DistribConfig {
        workers: 2,
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let outcome =
        run_distributed(&job, &config, &worker_command(), None).expect("resumed run succeeds");
    assert!(outcome.is_complete());
    assert_summaries_equivalent(&outcome.summary, &single);
    let _ = std::fs::remove_file(&path);
}

/// Pre-segment checkpoint files (a bare serialized checkpoint, no record
/// framing) still load, so old files resume instead of erroring.
#[test]
fn legacy_single_blob_checkpoint_still_loads() {
    let path = checkpoint_path("legacy");
    let job = SweepJob::new(small_seq2_bounds(), NUM_SHARDS);
    let checkpoint = job.empty_checkpoint();
    std::fs::write(&path, checkpoint.to_bytes()).expect("legacy write");
    let loaded = load_checkpoint(&path)
        .expect("legacy checkpoint loads")
        .expect("checkpoint file exists");
    assert_eq!(loaded, checkpoint);
    assert!(
        segment_stats(&path).is_err(),
        "a legacy blob is not a segment file"
    );
    let _ = std::fs::remove_file(&path);
}

/// Concurrent atomic saves to the same path must not clobber each other's
/// temp files (they are uniquely named per call) and must always leave a
/// loadable checkpoint plus no temp litter behind.
#[test]
fn concurrent_saves_keep_the_checkpoint_loadable() {
    let path = checkpoint_path("concurrent");
    let job = SweepJob::new(small_seq2_bounds(), NUM_SHARDS);
    let checkpoint = job.empty_checkpoint();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..25 {
                    save_checkpoint(&path, &checkpoint).expect("save succeeds");
                }
            });
        }
    });
    let loaded = load_checkpoint(&path)
        .expect("checkpoint loads after concurrent saves")
        .expect("checkpoint file exists");
    assert_eq!(loaded, checkpoint);
    let dir = path.parent().expect("checkpoint has a parent");
    let base = path.file_name().expect("file name").to_string_lossy();
    let leftovers: Vec<String> = std::fs::read_dir(dir)
        .expect("parent dir lists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().to_string_lossy().into_owned();
            (name.starts_with(&format!("{base}.")) && name.ends_with(".tmp")).then_some(name)
        })
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp litter left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_file(&path);
}

/// Four workers over the TCP transport (loopback listener + launcher, with
/// calibration and capability-sized batches on) produce results
/// byte-identical to the single-process sweep, and the final telemetry
/// labels every worker by its socket endpoint.
#[test]
fn four_tcp_workers_match_single_process_with_endpoint_labels() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 4,
        batch_target: Some(Duration::from_millis(200)),
        ..DistribConfig::default()
    };
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_launcher(worker_command().arg("--calibrate=8"));

    let final_progress = std::sync::Mutex::new(None);
    let callback = |p: &b3_harness::Progress| {
        *final_progress.lock().unwrap() = Some(p.clone());
    };
    let outcome =
        run_with_transport(&job, &config, &transport, Some(&callback)).expect("tcp sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_eq!(outcome.respawns, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // Every worker that did work is attributed to a host:port endpoint,
    // not a bare index, and the telemetry accounts for all shards.
    let progress = final_progress
        .lock()
        .unwrap()
        .take()
        .expect("the final progress callback fires");
    assert_eq!(progress.per_worker.len(), 4);
    let telemetry_shards: u64 = progress.per_worker.iter().map(|w| w.shards).sum();
    assert_eq!(telemetry_shards, NUM_SHARDS as u64);
    for worker in progress.per_worker.iter().filter(|w| w.shards > 0) {
        assert!(
            worker.endpoint.starts_with("127.0.0.1:"),
            "tcp workers must be labelled by socket endpoint, got {:?}",
            worker.endpoint
        );
        assert!(progress.describe().contains(&worker.endpoint));
    }
}

/// A fleet of TCP workers that *always* die mid-shard still drives the
/// sweep to completion when respawn is enabled: every death re-queues the
/// in-flight shards and accepts a replacement connection, and the final
/// counts are byte-identical to the uninterrupted single-process sweep —
/// nothing lost, nothing double-counted. The workers calibrate, so every
/// link carries a batch-sizing rate — and because each one dies shortly
/// after, every progress snapshot doubles as a regression check that a
/// dead slot's telemetry row is cleared the moment the link is lost,
/// rather than keeping the dead worker's calibrated rate until the
/// replacement's Hello.
#[test]
fn tcp_workers_killed_mid_shard_are_respawned_until_convergence() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 4,
        // Every generation dies after 15 workloads (mid-second-shard), so
        // convergence *requires* respawn to keep re-establishing links.
        respawn_budget: 50,
        // Snapshot often, to catch slots in the dead-awaiting-respawn gap.
        progress_interval: Duration::from_millis(20),
        ..DistribConfig::default()
    };
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_launcher(
            worker_command()
                .arg("--calibrate=8")
                .arg("--die-after-workloads")
                .arg("15"),
        );

    // Every snapshot must uphold the telemetry invariant: a slot whose
    // link is gone (`throughput: None`) must not advertise a sizing rate.
    let stale_rates = std::sync::Mutex::new(Vec::new());
    let callback = |p: &b3_harness::Progress| {
        let mut stale = stale_rates.lock().unwrap();
        for w in &p.per_worker {
            if w.throughput.is_none() && w.rate.is_some() {
                stale.push((w.worker, w.endpoint.clone(), w.rate));
            }
        }
    };
    let outcome = run_with_transport(&job, &config, &transport, Some(&callback))
        .expect("respawned sweep converges");
    assert!(outcome.is_complete());
    assert!(
        outcome.respawns > 0,
        "the dying workers must actually trigger respawns"
    );
    assert_eq!(
        outcome.failed_workers, 0,
        "every slot must finish cleanly once the queue drains"
    );
    assert_summaries_equivalent(&outcome.summary, &single);
    assert_eq!(
        stale_rates.into_inner().unwrap(),
        Vec::new(),
        "dead slots kept a stale batch-sizing rate"
    );
}

/// The ssh-pipe transport re-execs the worker over an `ssh` program whose
/// stdio is the frame pipe. A stub `ssh` (drop options + host, exec the
/// remote command locally) proves the full path — spawn, handshake, shard
/// traffic, shutdown — without needing a real remote host.
#[test]
#[cfg(unix)]
fn ssh_pipe_workers_match_single_process() {
    use std::os::unix::fs::PermissionsExt;

    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let stub = std::env::temp_dir().join(format!("b3-fake-ssh-{}.sh", std::process::id()));
    std::fs::write(
        &stub,
        "#!/bin/sh\n\
         # Stub ssh: skip options, drop the host argument, exec the rest.\n\
         while [ $# -gt 0 ]; do case \"$1\" in -*) shift;; *) break;; esac; done\n\
         shift\n\
         exec \"$@\"\n",
    )
    .expect("stub ssh writes");
    std::fs::set_permissions(&stub, std::fs::Permissions::from_mode(0o755))
        .expect("stub ssh becomes executable");

    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 2,
        ..DistribConfig::default()
    };
    let transport = SshTransport::new(
        ["testhost-a", "testhost-b"],
        [env!("CARGO_BIN_EXE_b3-sweep-worker")],
    )
    .with_ssh_program(&stub);

    let final_progress = std::sync::Mutex::new(None);
    let callback = |p: &b3_harness::Progress| {
        *final_progress.lock().unwrap() = Some(p.clone());
    };
    let outcome =
        run_with_transport(&job, &config, &transport, Some(&callback)).expect("ssh sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // The two slots were handed one host each (round-robin), and each is
    // labelled by its ssh endpoint. Which slot got which host depends on
    // thread scheduling, so assert the *set*, not a per-index mapping.
    let progress = final_progress
        .lock()
        .unwrap()
        .take()
        .expect("the final progress callback fires");
    let mut hosts: Vec<&str> = progress
        .per_worker
        .iter()
        .map(|w| {
            w.endpoint
                .split('#')
                .next()
                .expect("ssh endpoints are host#pid")
        })
        .collect();
    hosts.sort_unstable();
    assert_eq!(hosts, ["ssh:testhost-a", "ssh:testhost-b"]);
    let _ = std::fs::remove_file(&stub);
}

/// The fingerprint half of the handshake: a worker sent a job whose
/// fingerprint differs from what it computes itself must answer `Reject`
/// (and exit) instead of producing unmergeable shard results. Drives a
/// real worker process by hand through the transport seam.
#[test]
fn worker_rejects_job_with_mismatched_fingerprint() {
    let transport = ChildTransport::new(worker_command());
    let mut link = transport
        .connect(&|| false)
        .expect("worker spawns")
        .expect("child transports always produce a link");

    // The worker reads its opening frame before speaking (it could be a
    // `Challenge` it must answer in the `Hello`), so the coordinator's
    // eager `Job` goes out first. Send one with a fingerprint no binary
    // would compute.
    let job = SweepJob::new(small_seq2_bounds(), NUM_SHARDS);
    let frame = ToWorker::Job {
        job: Box::new(job),
        fingerprint: "not-a-real-fingerprint".into(),
    }
    .to_frame();
    link.send(&frame).expect("job frame sends");

    // The worker still answers with a version-correct Hello...
    let hello = FromWorker::from_frame(&link.recv().expect("hello arrives")).unwrap();
    match hello {
        FromWorker::Hello(Hello { version, .. }) => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("worker must open with Hello, sent {other:?}"),
    }

    // ...and then refuses the job.
    match FromWorker::from_frame(&link.recv().expect("reject arrives")).unwrap() {
        FromWorker::Reject { reason } => {
            assert!(reason.contains("fingerprint mismatch"), "{reason}");
        }
        other => panic!("worker must Reject a mismatched fingerprint, sent {other:?}"),
    }
    link.abort();
}

/// The shared-secret half of the handshake, end to end over real TCP
/// links: an authenticating listener opens with a `Challenge` instead of
/// the eager `Job`, and only workers answering with the right HMAC tag are
/// ever given work. Loopback is normally exempt, so the test opts it in
/// (`with_loopback_auth`) — the same code path a non-loopback listener
/// takes unconditionally.
#[test]
fn challenged_tcp_workers_without_the_secret_are_rejected_at_the_handshake() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 2,
        ..DistribConfig::default()
    };
    let secret = "tcp-fleet-secret";

    // Workers holding the secret authenticate and the sweep is equivalent
    // to the single-process run — the challenge is invisible to results.
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_loopback_auth(true)
        .with_secret(secret.to_string())
        .with_launcher(worker_command().arg("--secret").arg(secret));
    let outcome =
        run_with_transport(&job, &config, &transport, None).expect("authenticated sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // A worker with no secret at all refuses the challenge (it cannot
    // answer) and the coordinator reports the refusal; no work is done.
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_loopback_auth(true)
        .with_secret(secret.to_string())
        .with_launcher(worker_command());
    let err = run_with_transport(&job, &config, &transport, None)
        .expect_err("a secretless worker must not be served");
    assert!(err.to_string().contains("secret"), "{err}");

    // A worker with the *wrong* secret sends a tag that fails
    // verification: the coordinator kills the link without ever sending
    // the job.
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_loopback_auth(true)
        .with_secret(secret.to_string())
        .with_launcher(worker_command().arg("--secret").arg("not-the-secret"));
    let err = run_with_transport(&job, &config, &transport, None)
        .expect_err("a wrong-secret worker must not be served");
    assert!(
        err.to_string()
            .contains("failed the shared-secret challenge"),
        "{err}"
    );
}

/// The acceptance-scale differential: the **full paper seq-2 space**
/// (~330K tested workloads) over 4 TCP-loopback workers produces a
/// checkpoint and `RunSummary` byte-identical to the single-process
/// `Sweep`. Ignored by default (tens of seconds even in release); run it
/// with `cargo test --release -p b3-harness --test distrib -- --ignored`.
#[test]
#[ignore = "full seq-2 space; run explicitly in release builds"]
fn full_seq2_tcp_sweep_matches_single_process() {
    let bounds = Bounds::paper_seq2();
    let shards = 64;
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    let single = Sweep::new(&spec, config).shards(shards).run(&bounds);
    assert!(single.tested > 100_000, "seq-2 must be the full space");

    let job = SweepJob::new(bounds, shards);
    let config = DistribConfig {
        workers: 4,
        batch_target: Some(Duration::from_millis(500)),
        respawn_budget: 2,
        ..DistribConfig::default()
    };
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_launcher(worker_command().arg("--calibrate"));
    let outcome =
        run_with_transport(&job, &config, &transport, None).expect("tcp seq-2 sweep runs");
    assert!(outcome.is_complete());
    assert_summaries_equivalent(&outcome.summary, &single);

    // The grouped view of the checkpoint reassembled from TCP frames
    // equals the one an in-process sweep records (same groups, same
    // counts, byte-identical exemplars). The in-process checkpoint is
    // unscoped — scope is a distributed-resume concern — so the
    // comparison is on the grouped tables, which scope does not affect.
    let job_bounds = job.fs_bounds().expect("fs job");
    let mut reference = b3_harness::SweepCheckpoint::new(job_bounds, shards);
    let sweep_config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    let _ = Sweep::new(&spec, sweep_config)
        .shards(shards)
        .run_resumable(job_bounds, &mut reference);
    let ours = outcome.checkpoint.grouped();
    let theirs = reference.grouped();
    assert_eq!(ours.groups(), theirs.groups());
}

/// A listener serving fewer workers than slots must still finish promptly:
/// slots waiting in accept for workers that never come are cancelled the
/// moment the sweep has no work left, instead of stalling the completed
/// run until the accept timeout expires.
#[test]
fn listener_sweep_finishes_without_waiting_for_missing_workers() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 3,
        ..DistribConfig::default()
    };
    // An accept timeout far beyond what the test tolerates: if completion
    // depended on it, the elapsed assertion below would fail.
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("loopback listener binds")
        .with_accept_timeout(Duration::from_secs(600));
    let addr = transport.local_addr().to_string();

    // Only ONE worker ever dials in; the other two slots wait in accept.
    let mut worker = std::process::Command::new(env!("CARGO_BIN_EXE_b3-sweep-worker"))
        .arg("--connect")
        .arg(&addr)
        .spawn()
        .expect("external worker starts");

    let started = std::time::Instant::now();
    let outcome =
        run_with_transport(&job, &config, &transport, None).expect("one-worker sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_summaries_equivalent(&outcome.summary, &single);
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "idle slots must cancel once the sweep is done, not wait out the accept timeout"
    );
    let _ = worker.wait();
}
