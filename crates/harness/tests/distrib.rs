//! End-to-end tests of the multi-process sweep fan-out.
//!
//! * The **differential** test proves a 4-worker multi-process sweep is
//!   equivalent to the single-process [`Sweep`] over the same bounds: same
//!   tested/skipped counts, byte-identical bug reports, same bug groups.
//! * The **chaos** test extends PR 2's kill/serialize/resume loop across
//!   process boundaries: every worker of the first run is killed mid-shard
//!   (via the worker binary's `--die-after-workloads` crash hook), then the
//!   coordinator itself is repeatedly stopped after partial merges, and the
//!   checkpoint file still converges to the uninterrupted run's counts.
//!
//! Workers are real child processes running the `b3-sweep-worker` binary.

use std::path::PathBuf;

use b3_ace::Bounds;
use b3_fs_cow::CowFsSpec;
use b3_harness::distrib::{
    load_checkpoint, run_distributed, DistribConfig, SweepJob, WorkerCommand,
};
use b3_harness::{group_reports, RunConfig, RunSummary, Sweep};
use b3_vfs::codec::Encoder;
use b3_vfs::KernelEra;

const NUM_SHARDS: usize = 12;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_b3-sweep-worker"))
}

/// A small two-operation space (~130 workloads): big enough that every
/// worker sees several shards, small enough for debug-build CI.
fn small_seq2_bounds() -> Bounds {
    let mut bounds = Bounds::tiny();
    bounds.seq_len = 2;
    bounds.name_prefix = "tiny-seq2".into();
    bounds
}

/// The uninterrupted single-process reference sweep.
fn single_process_summary(bounds: &Bounds) -> RunSummary {
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };
    Sweep::new(&spec, config).shards(NUM_SHARDS).run(bounds)
}

/// Serializes every report of a summary, so equality can be asserted on
/// bytes rather than field-by-field.
fn report_bytes(summary: &RunSummary) -> Vec<u8> {
    let mut enc = Encoder::new();
    for report in &summary.reports {
        report.encode(&mut enc);
    }
    enc.finish()
}

fn assert_summaries_equivalent(distributed: &RunSummary, single: &RunSummary) {
    assert_eq!(distributed.tested, single.tested, "tested counts differ");
    assert_eq!(distributed.skipped, single.skipped, "skipped counts differ");
    assert_eq!(
        report_bytes(distributed),
        report_bytes(single),
        "bug reports must be byte-identical (same bugs, same order)"
    );
    let single_groups = group_reports(&single.reports);
    let distributed_groups = group_reports(&distributed.reports);
    assert_eq!(distributed_groups.len(), single_groups.len());
    for (d, s) in distributed_groups.iter().zip(&single_groups) {
        assert_eq!((&d.skeleton, d.count), (&s.skeleton, s.count));
    }
}

/// A per-test checkpoint path in the system temp directory.
fn checkpoint_path(test: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("b3-{test}-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn four_worker_distributed_sweep_matches_single_process() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    assert!(single.tested > 0, "reference sweep must test workloads");
    assert!(
        !single.reports.is_empty(),
        "reference sweep must find bugs on the 4.16-era CowFs"
    );

    let job = SweepJob::new(bounds, NUM_SHARDS);
    let config = DistribConfig {
        workers: 4,
        ..DistribConfig::default()
    };
    let final_progress = std::sync::Mutex::new(None);
    let callback = |p: &b3_harness::Progress| {
        *final_progress.lock().unwrap() = Some(p.clone());
    };
    let outcome = run_distributed(&job, &config, &worker_command(), Some(&callback))
        .expect("distributed sweep runs");
    assert!(outcome.is_complete());
    assert_eq!(outcome.failed_workers, 0);
    assert_eq!(outcome.resumed_shards, 0);
    assert_summaries_equivalent(&outcome.summary, &single);

    // The per-worker telemetry of the final progress snapshot accounts for
    // every shard and every tested workload — no work is double-counted or
    // attributed to nobody.
    let progress = final_progress
        .lock()
        .unwrap()
        .take()
        .expect("the final progress callback fires");
    assert_eq!(progress.per_worker.len(), 4);
    let telemetry_shards: u64 = progress.per_worker.iter().map(|w| w.shards).sum();
    let telemetry_tested: u64 = progress.per_worker.iter().map(|w| w.tested).sum();
    assert_eq!(telemetry_shards, NUM_SHARDS as u64);
    assert_eq!(telemetry_tested as usize, outcome.summary.tested);
}

#[test]
fn distributed_sweep_rejects_checkpoint_of_a_different_sweep() {
    let path = checkpoint_path("mismatch");
    let job = SweepJob::new(Bounds::tiny(), 4);
    b3_harness::distrib::save_checkpoint(&path, &job.empty_checkpoint()).unwrap();

    // Same file, different shard split: must be rejected, not resumed.
    let other_job = SweepJob::new(Bounds::tiny(), 5);
    let config = DistribConfig {
        workers: 1,
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let result = run_distributed(&other_job, &config, &worker_command(), None);
    assert!(result.is_err(), "mismatched checkpoint must be rejected");

    // Same bounds and shards, different execution context (file system):
    // shard results would come from a different file system, so the
    // checkpoint scope must reject the resume too.
    let mut other_fs_job = SweepJob::new(Bounds::tiny(), 4);
    other_fs_job.fs = b3_harness::FsKind::Journal;
    let result = run_distributed(&other_fs_job, &config, &worker_command(), None);
    assert!(
        result.is_err(),
        "a checkpoint recorded on another file system must be rejected"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_killed_workers_and_coordinator_converge_to_uninterrupted_counts() {
    let bounds = small_seq2_bounds();
    let single = single_process_summary(&bounds);
    let path = checkpoint_path("chaos");
    let job = SweepJob::new(bounds, NUM_SHARDS);

    // Round 1: every worker is rigged to die abruptly mid-shard (after 15
    // workloads each, i.e. partway into its second shard). All four die, so
    // the run reports an error — but each completed shard was merged and
    // persisted before the deaths.
    let config = DistribConfig {
        workers: 4,
        checkpoint_path: Some(path.clone()),
        ..DistribConfig::default()
    };
    let dying_worker = worker_command().arg("--die-after-workloads").arg("15");
    let crashed = run_distributed(&job, &config, &dying_worker, None);
    assert!(
        crashed.is_err(),
        "a run whose every worker dies must report the failure"
    );
    let partial = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("partial checkpoint was persisted before the workers died");
    assert!(
        partial.completed_shards() > 0,
        "shards completed before the kill must have been merged"
    );
    assert!(
        !partial.is_complete(),
        "the worker kills must actually interrupt the sweep"
    );

    // Rounds 2..: resume with healthy workers, but stop the coordinator
    // after at most two newly merged shards each round — the moral
    // equivalent of killing it after a partial merge, since the checkpoint
    // file is (atomically) rewritten on every merge. Each round starts a
    // fresh coordinator that reloads the file from disk.
    let mut rounds = 0;
    loop {
        let config = DistribConfig {
            workers: 4,
            stop_after_shards: Some(2),
            checkpoint_path: Some(path.clone()),
            ..DistribConfig::default()
        };
        let outcome = run_distributed(&job, &config, &worker_command(), None)
            .expect("resumed coordinator runs");
        assert_eq!(outcome.failed_workers, 0);
        rounds += 1;
        assert!(rounds < 100, "the resume loop must converge");
        if outcome.is_complete() {
            break;
        }
    }
    assert!(
        rounds > 1,
        "stop_after_shards must actually interrupt the coordinator"
    );

    // The final checkpoint is indistinguishable from an uninterrupted run.
    let converged = load_checkpoint(&path)
        .expect("checkpoint file is readable")
        .expect("final checkpoint exists");
    assert!(converged.is_complete());
    assert_summaries_equivalent(&converged.summary(), &single);
    let _ = std::fs::remove_file(&path);
}
