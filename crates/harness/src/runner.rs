//! A multi-threaded workload runner.
//!
//! The paper tests 3.37 million workloads by fanning them out to 780 virtual
//! machines on a 65-node Chameleon Cloud cluster; each VM runs one
//! CrashMonkey instance over its share of the workloads (§6.1). In this
//! reproduction the fan-out is in-process: a pool of worker threads pulls
//! workloads from a shared stream, each worker owning its own CrashMonkey
//! instance, and the per-workload outcomes are folded into one summary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use b3_crashmonkey::{BugReport, CrashMonkey, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::FsSpec;
use b3_vfs::workload::Workload;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads (the paper's analogue is VMs per node).
    pub threads: usize,
    /// Stop after this many workloads have produced bug reports (None = run
    /// the whole stream).
    pub stop_after_bugs: Option<usize>,
    /// CrashMonkey configuration used by every worker.
    pub crashmonkey: CrashMonkeyConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            stop_after_bugs: None,
            crashmonkey: CrashMonkeyConfig::small(),
        }
    }
}

/// Aggregate results of a run.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Workloads tested (executed and crash-checked).
    pub tested: usize,
    /// Workloads skipped because they could not execute.
    pub skipped: usize,
    /// All bug reports produced.
    pub reports: Vec<BugReport>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Sum of per-workload end-to-end times (for computing the average
    /// latency the paper reports in §6.3).
    pub total_workload_time: Duration,
}

impl RunSummary {
    /// Average per-workload latency.
    pub fn avg_workload_latency(&self) -> Duration {
        if self.tested == 0 {
            Duration::ZERO
        } else {
            self.total_workload_time / self.tested as u32
        }
    }

    /// Workloads tested per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.tested as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs CrashMonkey over every workload in `workloads` using `threads`
/// worker threads.
pub fn run_stream<I>(spec: &(dyn FsSpec + Sync), workloads: I, config: &RunConfig) -> RunSummary
where
    I: IntoIterator<Item = Workload>,
    I::IntoIter: Send,
{
    let start = Instant::now();
    let queue = Mutex::new(workloads.into_iter());
    let summary = Mutex::new(RunSummary::default());
    let bug_count = AtomicUsize::new(0);
    let threads = config.threads.max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let monkey = CrashMonkey::with_config(spec, config.crashmonkey);
                loop {
                    if let Some(limit) = config.stop_after_bugs {
                        if bug_count.load(Ordering::Relaxed) >= limit {
                            return;
                        }
                    }
                    let workload = {
                        let mut iterator = queue.lock().expect("queue poisoned");
                        iterator.next()
                    };
                    let Some(workload) = workload else { return };
                    match monkey.test_workload(&workload) {
                        Ok(outcome) => {
                            if outcome.found_bug() {
                                bug_count.fetch_add(1, Ordering::Relaxed);
                            }
                            record(&summary, outcome);
                        }
                        Err(error) => {
                            let mut summary = summary.lock().expect("summary poisoned");
                            summary.skipped += 1;
                            drop(error);
                        }
                    }
                }
            });
        }
    });

    let mut summary = summary.into_inner().expect("summary poisoned");
    summary.elapsed = start.elapsed();
    summary
}

fn record(summary: &Mutex<RunSummary>, outcome: WorkloadOutcome) {
    let mut summary = summary.lock().expect("summary poisoned");
    if outcome.skipped.is_some() {
        summary.skipped += 1;
        return;
    }
    summary.tested += 1;
    summary.total_workload_time += outcome.timing.total;
    summary.reports.extend(outcome.bugs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_ace::{Bounds, WorkloadGenerator};
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    #[test]
    fn parallel_run_over_tiny_bounds_is_clean_on_patched_fs() {
        let spec = CowFsSpec::patched();
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let total = workloads.len();
        let config = RunConfig {
            threads: 4,
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads, &config);
        assert_eq!(summary.tested + summary.skipped, total);
        assert!(
            summary.reports.is_empty(),
            "patched CowFs must not produce reports: {:?}",
            summary.reports
        );
        assert!(summary.tested > 0);
        assert!(summary.throughput() > 0.0);
    }

    #[test]
    fn buggy_fs_produces_reports_from_generated_workloads() {
        // seq-1 creat workloads on the 4.16 kernel find the "fsync file does
        // not persist all its names" family via link workloads; use a link
        // oriented tiny bound to keep the test fast.
        let spec = CowFsSpec::new(KernelEra::V3_13);
        let bounds = Bounds::tiny();
        let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
        let config = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads, &config);
        assert!(summary.tested > 0);
        // The 3.13-era CowFs has many injected bugs; at least one of the
        // tiny link/rename workloads must trip one.
        assert!(
            !summary.reports.is_empty(),
            "expected at least one report on the 3.13-era file system"
        );
    }

    #[test]
    fn stop_after_bugs_short_circuits() {
        let spec = CowFsSpec::new(KernelEra::V3_13);
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let config = RunConfig {
            threads: 1,
            stop_after_bugs: Some(1),
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads.clone(), &config);
        assert!(summary.tested <= workloads.len());
        assert!(!summary.reports.is_empty());
    }
}
