//! A multi-threaded workload runner.
//!
//! The paper tests 3.37 million workloads by fanning them out to 780 virtual
//! machines on a 65-node Chameleon Cloud cluster; each VM runs one
//! CrashMonkey instance over its share of the workloads (§6.1). In this
//! reproduction the fan-out is in-process: a pool of worker threads pulls
//! *chunks* of workloads from a shared stream (one lock acquisition per
//! chunk, not per workload), each worker owning its own CrashMonkey
//! instance, and the per-workload outcomes are folded into one summary.
//!
//! For sharded, resumable sweeps over ACE-generated spaces — where workers
//! steal whole generator shards instead of chunks of a single iterator —
//! see [`crate::sweep`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use b3_crashmonkey::{BugReport, CrashMonkey, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::FsSpec;
use b3_vfs::workload::Workload;

use crate::sweep::Progress;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads (the paper's analogue is VMs per node).
    pub threads: usize,
    /// Stop after this many workloads have produced bug reports (None = run
    /// the whole stream).
    pub stop_after_bugs: Option<usize>,
    /// Workload budget: stop after pulling this many workloads from the
    /// stream (None = run the whole stream). The `--stop-after` knob of the
    /// examples.
    pub stop_after_workloads: Option<usize>,
    /// How many workloads a worker pulls from the shared stream per lock
    /// acquisition.
    pub chunk_size: usize,
    /// CrashMonkey configuration used by every worker.
    pub crashmonkey: CrashMonkeyConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            stop_after_bugs: None,
            stop_after_workloads: None,
            chunk_size: 64,
            crashmonkey: CrashMonkeyConfig::small(),
        }
    }
}

/// Aggregate results of a run.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Workloads tested (executed and crash-checked).
    pub tested: usize,
    /// Workloads skipped because they could not execute.
    pub skipped: usize,
    /// Candidates pruned without testing because a sweep's
    /// [`PruneMode`](crate::sweep::PruneMode) classified them as
    /// equivalent to an already-tested class representative. Always zero
    /// for [`run_stream`] and for sweeps with pruning off. Kept separate
    /// from `skipped` so `tested + skipped + pruned` reconstructs the full
    /// candidate coverage and throughput stays honest.
    pub pruned: usize,
    /// Pruned candidates that Audit mode additionally crash-tested against
    /// their representative (a subset of `pruned`; never part of `tested`).
    pub audited: usize,
    /// Divergences Audit mode found — pruned members whose outcome did not
    /// match their representative's. Any entry here means the
    /// canonicalization was too coarse for this space and the
    /// representative results cannot be trusted.
    pub audit_failures: Vec<crate::sweep::AuditFailure>,
    /// Total raw bug reports produced, before any deduplication. For
    /// [`run_stream`] summaries this equals `reports.len()`; for sweep
    /// summaries (which deduplicate at the source and keep only group
    /// exemplars in `reports`) it counts every underlying report.
    pub raw_reports: usize,
    /// The bug reports kept: every raw report for [`run_stream`], one
    /// exemplar per (skeleton, consequence) group for sweeps.
    pub reports: Vec<BugReport>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Sum of per-workload end-to-end times (for computing the average
    /// latency the paper reports in §6.3).
    pub total_workload_time: Duration,
}

impl RunSummary {
    /// Average per-workload latency.
    pub fn avg_workload_latency(&self) -> Duration {
        if self.tested == 0 {
            Duration::ZERO
        } else {
            self.total_workload_time / self.tested as u32
        }
    }

    /// Workloads tested per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.tested as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Live counters shared between workers and the progress monitor.
pub(crate) struct LiveCounters {
    pub tested: AtomicUsize,
    pub skipped: AtomicUsize,
    pub pruned: AtomicUsize,
    pub bugs: AtomicUsize,
    pub completed_shards: AtomicUsize,
}

impl LiveCounters {
    pub fn new() -> Self {
        LiveCounters {
            tested: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            bugs: AtomicUsize::new(0),
            completed_shards: AtomicUsize::new(0),
        }
    }

    pub fn snapshot(
        &self,
        started: Instant,
        total_workloads: Option<u64>,
        total_shards: usize,
        seeded_shards: usize,
    ) -> Progress {
        let tested = self.tested.load(Ordering::Relaxed);
        let skipped = self.skipped.load(Ordering::Relaxed);
        let elapsed = started.elapsed();
        let completed_shards = self.completed_shards.load(Ordering::Relaxed);
        // ETA from shard completion this run: shards are near-equal slices
        // of the candidate space, and unlike tested-workload counts the
        // shard total is exact, so the estimate converges to zero.
        let done_this_run = completed_shards.saturating_sub(seeded_shards);
        let remaining = total_shards.saturating_sub(completed_shards);
        let eta = (total_shards > 0 && done_this_run > 0 && remaining > 0)
            .then(|| elapsed.mul_f64(remaining as f64 / done_this_run as f64));
        Progress {
            tested,
            skipped,
            pruned: self.pruned.load(Ordering::Relaxed),
            bugs: self.bugs.load(Ordering::Relaxed),
            completed_shards,
            total_shards,
            total_workloads,
            elapsed,
            eta,
            per_worker: Vec::new(),
        }
    }
}

/// Releases the progress monitor when the last worker exits — via `Drop`,
/// so a panicking worker (e.g. a failed debug assertion) still shuts the
/// monitor down instead of hanging the thread scope forever.
pub(crate) struct WorkerGuard<'a> {
    active: &'a AtomicUsize,
    done: &'a AtomicBool,
}

impl<'a> WorkerGuard<'a> {
    pub fn new(active: &'a AtomicUsize, done: &'a AtomicBool) -> Self {
        WorkerGuard { active, done }
    }
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.store(true, Ordering::Relaxed);
        }
    }
}

/// Spawns the periodic progress-monitor thread inside `scope`. Fires the
/// callback every `interval` until `done` is set, then once more with the
/// final counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_progress_monitor<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    callback: &'env (dyn Fn(&Progress) + Sync),
    counters: &'env LiveCounters,
    done: &'env AtomicBool,
    started: Instant,
    interval: Duration,
    total_workloads: Option<u64>,
    total_shards: usize,
    seeded_shards: usize,
) {
    scope.spawn(move || {
        let mut last_fired = Instant::now();
        while !done.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
            if last_fired.elapsed() >= interval {
                callback(&counters.snapshot(started, total_workloads, total_shards, seeded_shards));
                last_fired = Instant::now();
            }
        }
        callback(&counters.snapshot(started, total_workloads, total_shards, seeded_shards));
    });
}

/// Runs CrashMonkey over every workload in `workloads` using
/// `config.threads` worker threads pulling chunks from the shared stream.
pub fn run_stream<I>(spec: &(dyn FsSpec + Sync), workloads: I, config: &RunConfig) -> RunSummary
where
    I: IntoIterator<Item = Workload>,
    I::IntoIter: Send,
{
    run_stream_observed(spec, workloads, config, None, Duration::from_secs(1))
}

/// [`run_stream`] with a periodic progress callback (fired roughly every
/// `interval`, plus once with the final counters).
pub fn run_stream_observed<I>(
    spec: &(dyn FsSpec + Sync),
    workloads: I,
    config: &RunConfig,
    progress: Option<&(dyn Fn(&Progress) + Sync)>,
    interval: Duration,
) -> RunSummary
where
    I: IntoIterator<Item = Workload>,
    I::IntoIter: Send,
{
    struct Queue<I> {
        iterator: I,
        pulled: usize,
    }

    let start = Instant::now();
    let queue = Mutex::new(Queue {
        iterator: workloads.into_iter(),
        pulled: 0,
    });
    let summary = Mutex::new(RunSummary::default());
    let counters = LiveCounters::new();
    // Shared oracle interner: content-equal oracle/expectation entries
    // produced by different workloads collapse to one allocation.
    let interner = std::sync::Arc::new(b3_vfs::snapshot::EntryInterner::new());
    let done = AtomicBool::new(false);
    let threads = config.threads.max(1);
    let active_workers = AtomicUsize::new(threads);
    let chunk_size = config.chunk_size.max(1);
    let budget = config.stop_after_workloads.unwrap_or(usize::MAX);

    std::thread::scope(|scope| {
        if let Some(callback) = progress {
            spawn_progress_monitor(
                scope, callback, &counters, &done, start, interval, None, 0, 0,
            );
        }
        for _ in 0..threads {
            scope.spawn(|| {
                let _guard = WorkerGuard::new(&active_workers, &done);
                let monkey = CrashMonkey::with_interner(spec, config.crashmonkey, interner.clone());
                let mut chunk: Vec<Workload> = Vec::with_capacity(chunk_size);
                'work: loop {
                    if let Some(limit) = config.stop_after_bugs {
                        if counters.bugs.load(Ordering::Relaxed) >= limit {
                            break 'work;
                        }
                    }
                    chunk.clear();
                    {
                        let mut queue = queue.lock().expect("queue poisoned");
                        while queue.pulled < budget && chunk.len() < chunk_size {
                            match queue.iterator.next() {
                                Some(workload) => {
                                    queue.pulled += 1;
                                    chunk.push(workload);
                                }
                                None => break,
                            }
                        }
                    }
                    if chunk.is_empty() {
                        break 'work;
                    }
                    for workload in chunk.drain(..) {
                        // Re-check the bug limit per workload, not just per
                        // chunk, so the overshoot past `stop_after_bugs` is
                        // bounded by the number of workers, not chunk size.
                        if let Some(limit) = config.stop_after_bugs {
                            if counters.bugs.load(Ordering::Relaxed) >= limit {
                                break 'work;
                            }
                        }
                        match monkey.test_workload(&workload) {
                            Ok(outcome) => {
                                if outcome.found_bug() {
                                    counters.bugs.fetch_add(1, Ordering::Relaxed);
                                }
                                record(&summary, &counters, outcome);
                            }
                            Err(error) => {
                                counters.skipped.fetch_add(1, Ordering::Relaxed);
                                let mut summary = summary.lock().expect("summary poisoned");
                                summary.skipped += 1;
                                drop(error);
                            }
                        }
                    }
                }
            });
        }
    });

    let mut summary = summary.into_inner().expect("summary poisoned");
    summary.elapsed = start.elapsed();
    summary
}

fn record(summary: &Mutex<RunSummary>, counters: &LiveCounters, outcome: WorkloadOutcome) {
    if outcome.skipped.is_some() {
        counters.skipped.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.tested.fetch_add(1, Ordering::Relaxed);
    }
    let mut summary = summary.lock().expect("summary poisoned");
    if outcome.skipped.is_some() {
        summary.skipped += 1;
        return;
    }
    summary.tested += 1;
    summary.total_workload_time += outcome.timing.total;
    summary.raw_reports += outcome.bugs.len();
    summary.reports.extend(outcome.bugs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_ace::{Bounds, WorkloadGenerator};
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    #[test]
    fn parallel_run_over_tiny_bounds_is_clean_on_patched_fs() {
        let spec = CowFsSpec::patched();
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let total = workloads.len();
        let config = RunConfig {
            threads: 4,
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads, &config);
        assert_eq!(summary.tested + summary.skipped, total);
        assert!(
            summary.reports.is_empty(),
            "patched CowFs must not produce reports: {:?}",
            summary.reports
        );
        assert!(summary.tested > 0);
        assert!(summary.throughput() > 0.0);
    }

    #[test]
    fn buggy_fs_produces_reports_from_generated_workloads() {
        // seq-1 creat workloads on the 4.16 kernel find the "fsync file does
        // not persist all its names" family via link workloads; use a link
        // oriented tiny bound to keep the test fast.
        let spec = CowFsSpec::new(KernelEra::V3_13);
        let bounds = Bounds::tiny();
        let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
        let config = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads, &config);
        assert!(summary.tested > 0);
        // The 3.13-era CowFs has many injected bugs; at least one of the
        // tiny link/rename workloads must trip one.
        assert!(
            !summary.reports.is_empty(),
            "expected at least one report on the 3.13-era file system"
        );
    }

    #[test]
    fn stop_after_bugs_short_circuits() {
        let spec = CowFsSpec::new(KernelEra::V3_13);
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let config = RunConfig {
            threads: 1,
            chunk_size: 1,
            stop_after_bugs: Some(1),
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads.clone(), &config);
        assert!(summary.tested <= workloads.len());
        assert!(!summary.reports.is_empty());
    }

    #[test]
    fn stop_after_workloads_budget_is_respected() {
        let spec = CowFsSpec::patched();
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        assert!(workloads.len() > 5);
        let config = RunConfig {
            threads: 2,
            stop_after_workloads: Some(5),
            ..RunConfig::default()
        };
        let summary = run_stream(&spec, workloads, &config);
        assert_eq!(summary.tested + summary.skipped, 5);
    }

    #[test]
    fn progress_callback_fires_with_final_counters() {
        use std::sync::atomic::AtomicUsize;
        let spec = CowFsSpec::patched();
        let workloads: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let total = workloads.len();
        let calls = AtomicUsize::new(0);
        let last_processed = AtomicUsize::new(0);
        let callback = |p: &Progress| {
            calls.fetch_add(1, Ordering::Relaxed);
            last_processed.store(p.tested + p.skipped, Ordering::Relaxed);
        };
        let summary = run_stream_observed(
            &spec,
            workloads,
            &RunConfig::default(),
            Some(&callback),
            Duration::from_millis(1),
        );
        assert!(calls.load(Ordering::Relaxed) >= 1, "final callback fires");
        assert_eq!(last_processed.load(Ordering::Relaxed), total);
        assert_eq!(summary.tested + summary.skipped, total);
    }
}
