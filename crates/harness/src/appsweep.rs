//! In-process sharded sweeps over the application-level transaction space.
//!
//! [`AppSweep`] is the application-level twin of [`Sweep`](crate::Sweep):
//! same sharding, same work-stealing, same resumable [`SweepCheckpoint`]
//! records, same [`RunSummary`] — only the workload generator
//! (`b3_app::TxnWorkloadGenerator`) and the per-workload tester
//! (`b3_app::AppHarness`) differ. Because the per-shard results are
//! ordinary [`ShardResult`]s, app sweeps flow through the sweep
//! checkpoints, the distributed coordinator, and the fleet daemon without
//! any format changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use b3_app::{AppHarness, EngineProfile, TxnBounds, TxnWorkloadGenerator};
use b3_crashmonkey::CrashPointPolicy;
use b3_vfs::fs::FsSpec;

use crate::runner::{RunConfig, RunSummary};
use crate::sweep::{take_budget, Absorbed, ShardResult, SweepCheckpoint};

/// Runs one shard of an app sweep to completion: every transaction
/// workload of the shard is crash-tested, and the shard's result is a pure
/// function of (bounds, engine, shard index). The distributed worker calls
/// this for claimed shards of app jobs.
pub(crate) fn run_app_shard(
    harness: &AppHarness<'_>,
    bounds: &TxnBounds,
    shard_index: u32,
    num_shards: usize,
    mut tick: impl FnMut(),
) -> ShardResult {
    let shard = bounds.shard(shard_index as usize, num_shards);
    let generator = TxnWorkloadGenerator::for_shard(bounds.clone(), &shard);
    let mut result = ShardResult::default();
    for workload in generator {
        tick();
        result.absorb(harness.test_workload(&workload));
    }
    result
}

/// A sharded, resumable, in-process sweep over one bounded transaction
/// space against one (file system, engine profile) pair.
pub struct AppSweep<'a> {
    spec: &'a (dyn FsSpec + Sync),
    config: RunConfig,
    engine: EngineProfile,
    num_shards: usize,
}

impl<'a> AppSweep<'a> {
    /// Creates an app sweep with the same default shard count heuristic as
    /// [`Sweep`](crate::Sweep): eight shards per worker thread.
    pub fn new(spec: &'a (dyn FsSpec + Sync), config: RunConfig, engine: EngineProfile) -> Self {
        AppSweep {
            spec,
            num_shards: (config.threads.max(1) * 8).max(1),
            config,
            engine,
        }
    }

    /// Overrides the number of generator shards.
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.max(1);
        self
    }

    /// The checkpoint-scope component: the engine profile always
    /// participates (a buggy-engine sweep and a fixed-engine sweep must
    /// never share a checkpoint), combined with the crash-point policy the
    /// same way [`Sweep`](crate::Sweep) encodes it.
    pub(crate) fn scope_component(&self) -> String {
        let mut scope = format!("app:{}", self.engine.describe());
        match self.config.crashmonkey.crash_points {
            CrashPointPolicy::LastOnly => {}
            CrashPointPolicy::All => scope.push_str("/cp:all"),
            CrashPointPolicy::AllTriaged { audit: 0 } => scope.push_str("/cp:triaged"),
            CrashPointPolicy::AllTriaged { audit } => {
                scope.push_str(&format!("/cp:triaged-audit{audit}"));
            }
        }
        scope
    }

    /// An empty checkpoint for this sweep's (bounds, shard count, engine,
    /// crash points) tuple — the one [`AppSweep::run_resumable`] accepts.
    pub fn empty_checkpoint(&self, bounds: &TxnBounds) -> SweepCheckpoint {
        SweepCheckpoint::scoped_app(bounds, self.num_shards, &self.scope_component())
    }

    /// Runs the whole sweep in one go.
    pub fn run(&self, bounds: &TxnBounds) -> RunSummary {
        let mut checkpoint = self.empty_checkpoint(bounds);
        self.run_resumable(bounds, &mut checkpoint)
    }

    /// Runs (or resumes) the sweep, recording every completed shard into
    /// `checkpoint`, with the same semantics as
    /// [`Sweep::run_resumable`](crate::Sweep::run_resumable): recorded
    /// shards are skipped, budget-interrupted shards stay unrecorded but
    /// still count toward the returned summary.
    ///
    /// # Panics
    /// Panics when the checkpoint belongs to a different bounds, shard
    /// count, engine profile, or crash-point policy.
    pub fn run_resumable(
        &self,
        bounds: &TxnBounds,
        checkpoint: &mut SweepCheckpoint,
    ) -> RunSummary {
        assert!(
            checkpoint.fingerprint() == self.empty_checkpoint(bounds).fingerprint(),
            "app sweep checkpoint belongs to a different bounds/shard/engine configuration"
        );
        let start = Instant::now();
        let pending: Vec<u32> = checkpoint.missing_shards();
        let next_pending = AtomicUsize::new(0);
        let budget = AtomicUsize::new(self.config.stop_after_workloads.unwrap_or(usize::MAX));
        let bugs_seen = AtomicUsize::new(checkpoint.total_buggy() as usize);
        let threads = self.config.threads.max(1);
        let recorded: Mutex<&mut SweepCheckpoint> = Mutex::new(checkpoint);
        let abandoned: Mutex<Vec<ShardResult>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let harness = AppHarness::new(self.spec, self.config.crashmonkey, self.engine);
                    'steal: loop {
                        let slot = next_pending.fetch_add(1, Ordering::Relaxed);
                        let Some(&shard_index) = pending.get(slot) else {
                            break 'steal;
                        };
                        let shard = bounds.shard(shard_index as usize, self.num_shards);
                        let generator = TxnWorkloadGenerator::for_shard(bounds.clone(), &shard);
                        let mut result = ShardResult::default();
                        for workload in generator {
                            let bug_limit_hit = self
                                .config
                                .stop_after_bugs
                                .is_some_and(|limit| bugs_seen.load(Ordering::Relaxed) >= limit);
                            if bug_limit_hit || !take_budget(&budget) {
                                abandoned
                                    .lock()
                                    .expect("abandoned results poisoned")
                                    .push(result);
                                break 'steal;
                            }
                            if let Absorbed::Tested { buggy: true } =
                                result.absorb(harness.test_workload(&workload))
                            {
                                bugs_seen.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        recorded
                            .lock()
                            .expect("checkpoint poisoned")
                            .record(shard_index, result);
                    }
                });
            }
        });

        let checkpoint = recorded.into_inner().expect("checkpoint poisoned");
        let mut summary = checkpoint.summary();
        let mut grouped = checkpoint.grouped();
        for partial in abandoned.into_inner().expect("abandoned results poisoned") {
            partial.add_counts(&mut summary);
            grouped.merge_from(&partial.groups);
        }
        summary.reports = grouped.into_exemplars();
        summary.elapsed = start.elapsed();
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    fn config() -> RunConfig {
        RunConfig {
            threads: 2,
            crashmonkey: b3_crashmonkey::CrashMonkeyConfig::exhaustive_crash_points(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn fixed_engine_tiny_sweep_is_clean_and_complete() {
        let spec = CowFsSpec::new(KernelEra::Patched);
        let sweep = AppSweep::new(&spec, config(), EngineProfile::fixed()).shards(4);
        let summary = sweep.run(&TxnBounds::tiny());
        assert_eq!(summary.tested, 20);
        assert_eq!(summary.skipped, 0);
        assert!(summary.reports.is_empty(), "{:?}", summary.reports);
    }

    #[test]
    fn buggy_engine_sweep_finds_deterministic_exemplars() {
        let spec = CowFsSpec::new(KernelEra::Patched);
        let engine = EngineProfile {
            commit_without_data_fsync: true,
            ..EngineProfile::fixed()
        };
        let first = AppSweep::new(&spec, config(), engine)
            .shards(4)
            .run(&TxnBounds::tiny());
        let second = AppSweep::new(&spec, config(), engine)
            .shards(7)
            .run(&TxnBounds::tiny());
        assert!(!first.reports.is_empty());
        let names = |summary: &RunSummary| -> Vec<String> {
            summary
                .reports
                .iter()
                .map(|r| r.workload_name.clone())
                .collect()
        };
        assert_eq!(
            names(&first),
            names(&second),
            "exemplars are independent of the shard decomposition"
        );
    }

    #[test]
    fn resume_skips_recorded_shards_and_completes() {
        let spec = CowFsSpec::new(KernelEra::Patched);
        let sweep = AppSweep::new(&spec, config(), EngineProfile::fixed()).shards(5);
        let bounds = TxnBounds::tiny();
        let mut checkpoint = sweep.empty_checkpoint(&bounds);
        // Budget-limited first pass: some shards recorded, some not.
        let budgeted = AppSweep {
            config: RunConfig {
                stop_after_workloads: Some(7),
                ..config()
            },
            ..AppSweep::new(&spec, config(), EngineProfile::fixed())
        }
        .shards(5);
        budgeted.run_resumable(&bounds, &mut checkpoint);
        assert!(!checkpoint.is_complete());
        let resumed = sweep.run_resumable(&bounds, &mut checkpoint);
        assert!(checkpoint.is_complete());
        assert_eq!(resumed.tested, 20);
    }

    #[test]
    fn engine_profile_scopes_the_checkpoint() {
        let spec = CowFsSpec::new(KernelEra::Patched);
        let fixed = AppSweep::new(&spec, config(), EngineProfile::fixed());
        let buggy = AppSweep::new(
            &spec,
            config(),
            EngineProfile {
                torn_commit: true,
                ..EngineProfile::fixed()
            },
        );
        let bounds = TxnBounds::tiny();
        assert_ne!(
            fixed.empty_checkpoint(&bounds).fingerprint(),
            buggy.empty_checkpoint(&bounds).fingerprint()
        );
    }
}
