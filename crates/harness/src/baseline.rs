//! Baselines B3 is compared against.
//!
//! §2 argues that the state of the practice — xfstests' small set of
//! handcrafted, regression-oriented crash tests — cannot find *new* bugs,
//! and §7 contrasts B3's exhaustive bounded generation with fuzz-style
//! random input selection. This module provides both baselines so the
//! benches can put numbers behind the comparison:
//!
//! * [`xfstests_suite`] — a fixed regression suite: one handcrafted test per
//!   previously-reported bug (exactly what gets written after a bug report),
//!   which by construction cannot cover bugs nobody has reported yet.
//! * [`RandomWorkloads`] — a random workload generator drawing from the same
//!   operation and file bounds as ACE, but sampling instead of enumerating.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use b3_ace::phases::{persistence_options, phase2_candidates, phase4_dependencies};
use b3_ace::Bounds;
use b3_vfs::workload::{Op, Workload};

use crate::corpus::{known_bugs, CorpusEntry};

/// The regression suite a careful maintainer would have today: one test per
/// previously reported bug (the paper counts 26 crash-consistency tests in
/// xfstests). These are exactly the known-bug corpus workloads.
pub fn xfstests_suite() -> Vec<Workload> {
    known_bugs()
        .iter()
        .filter(|entry| entry.is_runnable())
        .map(CorpusEntry::workload)
        .collect()
}

/// Returns true if a workload's skeleton appears in the regression suite —
/// i.e. whether the suite would have had any chance of catching it.
pub fn regression_suite_covers(workload: &Workload) -> bool {
    let skeleton = workload.skeleton_string();
    xfstests_suite()
        .iter()
        .any(|test| test.skeleton_string() == skeleton)
}

/// A random (fuzz-style) workload generator over the same bounds as ACE.
pub struct RandomWorkloads {
    bounds: Bounds,
    rng: StdRng,
    counter: u64,
}

impl RandomWorkloads {
    /// Creates a generator with a fixed seed (deterministic for tests).
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        RandomWorkloads {
            bounds,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }
}

impl Iterator for RandomWorkloads {
    type Item = Workload;

    fn next(&mut self) -> Option<Workload> {
        // Keep sampling until a valid workload emerges (phase 4 can reject).
        for _ in 0..256 {
            self.counter += 1;
            let mut core = Vec::with_capacity(self.bounds.seq_len);
            for _ in 0..self.bounds.seq_len {
                let kind = *self.bounds.ops.choose(&mut self.rng)?;
                let candidates = phase2_candidates(kind, &self.bounds);
                if candidates.is_empty() {
                    return None;
                }
                core.push(candidates.choose(&mut self.rng)?.clone());
            }
            // Random persistence points: each op optionally followed by one
            // of its options; the last always gets one.
            let mut ops: Vec<Op> = Vec::with_capacity(core.len() * 2);
            let core_len = core.len();
            for (i, op) in core.into_iter().enumerate() {
                let is_last = i + 1 == core_len;
                let options = persistence_options(&op, is_last, &self.bounds);
                ops.push(op);
                if let Some(choice) = options.choose(&mut self.rng) {
                    if let Some(persist) = choice.clone() {
                        ops.push(persist);
                    }
                } else if is_last {
                    ops.push(Op::Sync);
                }
                if is_last && !ops.last().is_some_and(Op::is_persistence_point) {
                    ops.push(Op::Sync);
                }
            }
            let name = format!("fuzz-{:07}", self.counter);
            if let Some(workload) = phase4_dependencies(&name, ops, &self.bounds) {
                return Some(workload);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_suite_has_one_test_per_reproduced_bug() {
        assert_eq!(xfstests_suite().len(), 25);
    }

    #[test]
    fn regression_suite_covers_its_own_workloads_but_not_everything() {
        let suite = xfstests_suite();
        assert!(regression_suite_covers(&suite[0]));
        // A workload with a skeleton no regression test has.
        let novel = Workload::new(
            "novel",
            vec![
                Op::Mkfifo { path: "p".into() },
                Op::Truncate {
                    path: "p".into(),
                    size: 0,
                },
                Op::Sync,
            ],
        );
        assert!(!regression_suite_covers(&novel));
    }

    #[test]
    fn random_generator_is_deterministic_per_seed_and_valid() {
        let a: Vec<Workload> = RandomWorkloads::new(Bounds::paper_seq2(), 42)
            .take(50)
            .collect();
        let b: Vec<Workload> = RandomWorkloads::new(Bounds::paper_seq2(), 42)
            .take(50)
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for workload in &a {
            assert!(workload.ends_with_persistence_point(), "{workload}");
        }
        let c: Vec<Workload> = RandomWorkloads::new(Bounds::paper_seq2(), 7)
            .take(50)
            .collect();
        assert_ne!(a, c);
    }
}
