//! Multi-process sweep fan-out: a coordinator/worker protocol over the
//! sharded sweep engine.
//!
//! The paper fanned its 3.37M workloads out to 780 VMs on a 65-node cluster
//! (§6.1); [`crate::sweep`] is the in-process analogue, and this module is
//! the multi-*process* one. A coordinator owns the shard queue and the
//! checkpoint file; workers are child processes that speak a tiny
//! length-prefixed, codec-serialized protocol over stdio:
//!
//! ```text
//!  coordinator                               worker (child process)
//!  ───────────                               ──────────────────────
//!  spawn ──────────────────────────────────▶ start
//!  Job { fs, era, bounds, shards, config } ▶ build spec + CrashMonkey
//!                                          ◀ Claim
//!  Assign { shard indices } ───────────────▶ run each shard via the
//!                                            sweep engine's shard runner
//!                          ◀ ShardDone { shard, result }   (per shard)
//!                                          ◀ Claim
//!  …until the queue drains, then…
//!  Shutdown ───────────────────────────────▶ exit 0
//! ```
//!
//! A `ShardDone` frame carries the shard's **grouped** result — per-bug-group
//! exemplars and counts ([`crate::dedup::GroupTable`]), not every raw
//! report — so frame size, coordinator memory, and checkpoint size are all
//! bounded by bug diversity rather than bug density. Every frame is merged
//! into the coordinator's [`SweepCheckpoint`] (via [`SweepCheckpoint::merge`]
//! — union of completed shards) and durably appended to the checkpoint
//! file as one small fsync'd *delta record* (see the coordinator's `Persister`); the file is
//! an append-only segment log, compacted to a fresh snapshot atomically when
//! the run starts and whenever the deltas outgrow the last snapshot — never
//! rewritten in full per merge. Killing the coordinator *or* any worker at
//! any point therefore loses at most the shards that were in flight (a torn
//! trailing record is ignored on load): the next coordinator run replays the
//! file, re-queues exactly the missing shards, and converges to the same
//! counts as an uninterrupted single-process sweep (`tests/distrib.rs`
//! proves both the differential and the chaos direction).

use std::collections::VecDeque;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig, CrashPointPolicy};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::KernelEra;

use crate::corpus::FsKind;
use crate::runner::RunSummary;
use crate::sweep::{run_shard, Progress, ShardResult, SweepCheckpoint, WorkerThroughput};

/// Exit code a worker uses when its injected crash hook fires (the chaos
/// tests' stand-in for a worker VM dying mid-shard).
pub const WORKER_CRASH_EXIT: i32 = 41;

fn transport_err(context: &str, error: std::io::Error) -> FsError {
    FsError::Device(format!("worker transport: {context}: {error}"))
}

/// Writes one length-prefixed frame.
fn write_frame(writer: &mut impl Write, payload: &[u8]) -> FsResult<()> {
    writer
        .write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| writer.write_all(payload))
        .and_then(|()| writer.flush())
        .map_err(|e| transport_err("write frame", e))
}

/// Largest frame either side accepts. Real frames are far smaller (a Job
/// is a few KB, a ShardDone carries one shard's reports); the cap exists
/// so a desynced stream — stray bytes on a worker's stdout, say — surfaces
/// as a protocol error instead of a multi-gigabyte allocation.
const MAX_FRAME_BYTES: usize = 64 << 20;

/// Reads one length-prefixed frame.
fn read_frame(reader: &mut impl Read) -> FsResult<Vec<u8>> {
    let mut len = [0u8; 4];
    reader
        .read_exact(&mut len)
        .map_err(|e| transport_err("read frame length", e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FsError::Corrupted(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte protocol limit \
             (desynced stream?)"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| transport_err("read frame payload", e))?;
    Ok(payload)
}

/// Everything a worker needs to reproduce its slice of the sweep: which
/// simulated file system (and kernel era) to test, the exact bounds, the
/// shard split, and the CrashMonkey configuration.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The simulated file system under test.
    pub fs: FsKind,
    /// The kernel era the file system simulates.
    pub era: KernelEra,
    /// The bounded workload space.
    pub bounds: Bounds,
    /// How many shards the space is split into.
    pub num_shards: usize,
    /// CrashMonkey configuration every worker uses.
    pub crashmonkey: CrashMonkeyConfig,
}

impl SweepJob {
    /// A job over the given space with the paper's evaluation-era defaults
    /// (CowFs at 4.16, small CrashMonkey device).
    pub fn new(bounds: Bounds, num_shards: usize) -> SweepJob {
        SweepJob {
            fs: FsKind::Cow,
            era: KernelEra::EVALUATION,
            bounds,
            num_shards,
            crashmonkey: CrashMonkeyConfig::small(),
        }
    }

    /// The execution context this job's checkpoints are scoped to: the file
    /// system, kernel era, and CrashMonkey configuration. Two jobs over
    /// identical bounds but different contexts produce different shard
    /// results, so their checkpoints must never resume or merge into each
    /// other.
    pub fn scope(&self) -> String {
        let cm = &self.crashmonkey;
        format!(
            "{}@{}/blk{}/cp{}{}{}",
            self.fs.paper_name(),
            self.era.as_str(),
            cm.device_blocks,
            u8::from(matches!(cm.crash_points, CrashPointPolicy::All)),
            u8::from(cm.direct_write_is_persistence_point),
            u8::from(cm.model_kernel_delays),
        )
    }

    /// An empty checkpoint for this job's (bounds, shard count, context)
    /// triple.
    pub fn empty_checkpoint(&self) -> SweepCheckpoint {
        SweepCheckpoint::scoped(&self.bounds, self.num_shards, &self.scope())
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.fs.paper_name());
        enc.put_str(self.era.as_str());
        self.bounds.encode(enc);
        enc.put_u64(self.num_shards as u64);
        enc.put_u64(self.crashmonkey.device_blocks);
        enc.put_bool(matches!(
            self.crashmonkey.crash_points,
            CrashPointPolicy::All
        ));
        enc.put_bool(self.crashmonkey.direct_write_is_persistence_point);
        enc.put_bool(self.crashmonkey.model_kernel_delays);
    }

    fn decode(dec: &mut Decoder<'_>) -> FsResult<SweepJob> {
        let fs_name = dec.get_str()?;
        let fs = FsKind::parse(&fs_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown file system {fs_name:?}")))?;
        let era_name = dec.get_str()?;
        let era = KernelEra::parse(&era_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown kernel era {era_name:?}")))?;
        let bounds = Bounds::decode(dec)?;
        let num_shards = dec.get_u64()? as usize;
        let crashmonkey = CrashMonkeyConfig {
            device_blocks: dec.get_u64()?,
            crash_points: if dec.get_bool()? {
                CrashPointPolicy::All
            } else {
                CrashPointPolicy::LastOnly
            },
            direct_write_is_persistence_point: dec.get_bool()?,
            model_kernel_delays: dec.get_bool()?,
        };
        Ok(SweepJob {
            fs,
            era,
            bounds,
            num_shards,
            crashmonkey,
        })
    }
}

const MSG_JOB: u8 = 1;
const MSG_ASSIGN: u8 = 2;
const MSG_SHUTDOWN: u8 = 3;
const MSG_CLAIM: u8 = 0x81;
const MSG_SHARD_DONE: u8 = 0x82;

/// Coordinator-to-worker messages.
enum ToWorker {
    Job(SweepJob),
    Assign(Vec<u32>),
    Shutdown,
}

impl ToWorker {
    fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ToWorker::Job(job) => {
                enc.put_u8(MSG_JOB);
                job.encode(&mut enc);
            }
            ToWorker::Assign(shards) => {
                enc.put_u8(MSG_ASSIGN);
                enc.put_u64(shards.len() as u64);
                for shard in shards {
                    enc.put_u32(*shard);
                }
            }
            ToWorker::Shutdown => enc.put_u8(MSG_SHUTDOWN),
        }
        enc.finish()
    }

    fn from_frame(frame: &[u8]) -> FsResult<ToWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            MSG_JOB => Ok(ToWorker::Job(SweepJob::decode(&mut dec)?)),
            MSG_ASSIGN => {
                let count = dec.get_u64()? as usize;
                // Validate the declared length against the remaining frame
                // before allocating, so a corrupt frame errors instead of
                // attempting a huge allocation.
                if count > dec.remaining() / 4 {
                    return Err(FsError::Corrupted(format!(
                        "assignment declares {count} shards but only {} bytes remain",
                        dec.remaining()
                    )));
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(dec.get_u32()?);
                }
                Ok(ToWorker::Assign(shards))
            }
            MSG_SHUTDOWN => Ok(ToWorker::Shutdown),
            tag => Err(FsError::Corrupted(format!(
                "unknown coordinator message tag {tag:#x}"
            ))),
        }
    }
}

/// Worker-to-coordinator messages.
enum FromWorker {
    /// The worker is idle and wants shards.
    Claim,
    /// One assigned shard ran to completion.
    ShardDone { shard: u32, result: ShardResult },
}

impl FromWorker {
    fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            FromWorker::Claim => enc.put_u8(MSG_CLAIM),
            FromWorker::ShardDone { shard, result } => {
                enc.put_u8(MSG_SHARD_DONE);
                enc.put_u32(*shard);
                result.encode(&mut enc);
            }
        }
        enc.finish()
    }

    fn from_frame(frame: &[u8]) -> FsResult<FromWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            MSG_CLAIM => Ok(FromWorker::Claim),
            MSG_SHARD_DONE => Ok(FromWorker::ShardDone {
                shard: dec.get_u32()?,
                result: ShardResult::decode(&mut dec)?,
            }),
            tag => Err(FsError::Corrupted(format!(
                "unknown worker message tag {tag:#x}"
            ))),
        }
    }
}

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Path to the worker executable (typically the `b3-sweep-worker` binary
    /// or a `--worker`-mode re-exec of the coordinator binary).
    pub program: PathBuf,
    /// Arguments passed before the protocol takes over stdio.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Appends an argument.
    pub fn arg(mut self, arg: impl Into<String>) -> WorkerCommand {
        self.args.push(arg.into());
        self
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct DistribConfig {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Shards handed out per assignment. One is the safest (losing a worker
    /// loses at most one in-flight shard); larger batches amortize protocol
    /// round-trips when shards are tiny.
    pub assign_batch: usize,
    /// Stop handing out work after this many shards have been merged *in
    /// this run* (the chaos tests' stand-in for killing the coordinator
    /// after a partial merge).
    pub stop_after_shards: Option<usize>,
    /// Stop handing out work once this many workloads have been processed
    /// in this run. Shards are the scheduling unit, so the run overshoots
    /// to the end of in-flight shards.
    pub stop_after_workloads: Option<usize>,
    /// Where the merged checkpoint is persisted: a segment log that gets
    /// one durably-appended delta record per merged shard and is compacted
    /// at run start and when the deltas outgrow the last snapshot. `None`
    /// keeps the checkpoint in memory only.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the progress callback fires.
    pub progress_interval: Duration,
}

impl Default for DistribConfig {
    fn default() -> Self {
        DistribConfig {
            workers: 4,
            assign_batch: 1,
            stop_after_shards: None,
            stop_after_workloads: None,
            checkpoint_path: None,
            progress_interval: Duration::from_secs(1),
        }
    }
}

/// What a coordinator run produced.
#[derive(Debug)]
pub struct DistribOutcome {
    /// Aggregate counts of *all* completed shards (including ones restored
    /// from the checkpoint file), in shard order — identical to a
    /// single-process sweep's summary once complete.
    pub summary: RunSummary,
    /// The merged checkpoint (also persisted to the checkpoint file, when
    /// one is configured).
    pub checkpoint: SweepCheckpoint,
    /// Shards that were already in the checkpoint when this run started.
    pub resumed_shards: usize,
    /// Workloads processed (tested + skipped) by *this* run, excluding
    /// work restored from the checkpoint.
    pub processed_this_run: usize,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
    /// Workers that exited or broke the protocol before shutdown.
    pub failed_workers: usize,
}

impl DistribOutcome {
    /// True once every shard of the space is recorded.
    pub fn is_complete(&self) -> bool {
        self.checkpoint.is_complete()
    }

    /// Workloads per second of wall-clock time achieved by this run (not
    /// counting checkpointed work from previous runs).
    pub fn throughput_this_run(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.processed_this_run as f64 / self.elapsed.as_secs_f64()
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint file: an append-only segment log.
//
// Layout: 4 magic bytes, then records of `tag(u8) | len(u32 LE) | payload`.
// A SNAPSHOT record holds a full serialized `SweepCheckpoint`; a DELTA
// record holds one `shard(u32) | ShardResult` pair belonging to the most
// recent preceding snapshot. Snapshots are only ever written by an atomic
// tmp+rename (so they are all-or-nothing); deltas are appended with an
// fdatasync each, so a crash can leave at most one torn record at the tail,
// which the loader detects by its length field and ignores — the shard it
// carried is simply re-run.
// ---------------------------------------------------------------------------

/// "B3SG": magic prefix of segment-format checkpoint files.
const SEGMENT_MAGIC: [u8; 4] = *b"B3SG";
const REC_SNAPSHOT: u8 = 1;
const REC_DELTA: u8 = 2;
/// Compaction floor: deltas are allowed to grow to at least this many bytes
/// before a compaction is considered, so tiny sweeps don't thrash rewrites.
const MIN_COMPACT_BYTES: u64 = 64 << 10;

/// Frames one record of the segment log.
fn segment_record(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(payload.len() + 5);
    record.push(tag);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(payload);
    record
}

/// The bytes of a fresh (compacted) segment file holding one snapshot.
fn snapshot_file_bytes(checkpoint: &SweepCheckpoint) -> Vec<u8> {
    let payload = checkpoint.to_bytes();
    let mut bytes = Vec::with_capacity(payload.len() + 9);
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&segment_record(REC_SNAPSHOT, &payload));
    bytes
}

/// Replays a segment file: the latest snapshot, with every subsequent delta
/// merged in. A truncated trailing record (the signature a killed writer
/// leaves) is ignored; corruption anywhere else is an error.
fn replay_segment_file(bytes: &[u8], path: &Path) -> FsResult<SweepCheckpoint> {
    let corrupt =
        |what: String| FsError::Corrupted(format!("segment checkpoint {}: {what}", path.display()));
    let mut pos = SEGMENT_MAGIC.len();
    let mut current: Option<SweepCheckpoint> = None;
    while bytes.len() - pos >= 5 {
        let tag = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let end = pos + 5 + len;
        if end > bytes.len() {
            // Torn tail: the writer died mid-append. The record's shard is
            // lost (and will be re-run); everything before it is intact.
            break;
        }
        let payload = &bytes[pos + 5..end];
        match tag {
            REC_SNAPSHOT => current = Some(SweepCheckpoint::from_bytes(payload)?),
            REC_DELTA => {
                let checkpoint = current
                    .as_mut()
                    .ok_or_else(|| corrupt("delta record before any snapshot".into()))?;
                let mut dec = Decoder::new(payload);
                let shard = dec.get_u32()?;
                if shard as usize >= checkpoint.num_shards() {
                    return Err(corrupt(format!(
                        "delta for shard {shard} of a {}-shard sweep",
                        checkpoint.num_shards()
                    )));
                }
                let result = ShardResult::decode(&mut dec)?;
                checkpoint.record(shard, result);
            }
            other => return Err(corrupt(format!("unknown record tag {other:#x}"))),
        }
        pos = end;
    }
    current.ok_or_else(|| corrupt("no snapshot record".into()))
}

/// Per-record statistics of a segment checkpoint file — used by tests and
/// resume diagnostics to see how the file was produced (one snapshot per
/// compaction, one delta per merged shard since).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Snapshot (compaction) records.
    pub snapshots: usize,
    /// Per-shard delta records.
    pub deltas: usize,
    /// Bytes of a torn trailing record, ignored on load (0 for a cleanly
    /// written file).
    pub truncated_tail_bytes: usize,
}

/// Scans the record framing of a segment checkpoint file (payloads are not
/// decoded). Errors on files that are not in the segment format.
pub fn segment_stats(path: &Path) -> FsResult<SegmentStats> {
    let bytes = std::fs::read(path)
        .map_err(|e| FsError::Device(format!("read checkpoint {}: {e}", path.display())))?;
    if bytes.len() < 4 || bytes[0..4] != SEGMENT_MAGIC {
        return Err(FsError::InvalidArgument(format!(
            "{} is not a segment-format checkpoint",
            path.display()
        )));
    }
    let mut stats = SegmentStats {
        snapshots: 0,
        deltas: 0,
        truncated_tail_bytes: 0,
    };
    let mut pos = SEGMENT_MAGIC.len();
    while bytes.len() - pos >= 5 {
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let end = pos + 5 + len;
        if end > bytes.len() {
            break;
        }
        match bytes[pos] {
            REC_SNAPSHOT => stats.snapshots += 1,
            REC_DELTA => stats.deltas += 1,
            other => {
                return Err(FsError::Corrupted(format!(
                    "segment checkpoint {}: unknown record tag {other:#x}",
                    path.display()
                )))
            }
        }
        pos = end;
    }
    stats.truncated_tail_bytes = bytes.len() - pos;
    Ok(stats)
}

/// Loads a checkpoint file written by [`save_checkpoint`] or a coordinator's
/// `Persister`. Accepts both the segment format (replaying deltas onto the
/// latest snapshot, tolerating a torn trailing record) and a bare serialized
/// checkpoint. Returns `Ok(None)` when the file does not exist.
pub fn load_checkpoint(path: &Path) -> FsResult<Option<SweepCheckpoint>> {
    match std::fs::read(path) {
        Ok(bytes) => {
            if bytes.len() >= 4 && bytes[0..4] == SEGMENT_MAGIC {
                replay_segment_file(&bytes, path).map(Some)
            } else {
                SweepCheckpoint::from_bytes(&bytes).map(Some)
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(FsError::Device(format!(
            "read checkpoint {}: {e}",
            path.display()
        ))),
    }
}

/// Atomically writes `bytes` to `path`: a uniquely-named sibling temp file
/// (per process *and* per call, so concurrent writers never clobber each
/// other's temp), fsynced before the rename, with the parent directory
/// fsynced after — rename-without-fsync is precisely the bug class this
/// project tests for. A failed attempt removes its temp file.
fn write_atomic(path: &Path, bytes: &[u8]) -> FsResult<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fn inner(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = PathBuf::from(tmp);
        let write_and_rename = |tmp: &Path| -> std::io::Result<()> {
            let mut file = std::fs::File::create(tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(tmp, path)
        };
        if let Err(error) = write_and_rename(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            return Err(error);
        }
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    }
    inner(path, bytes)
        .map_err(|e| FsError::Device(format!("persist checkpoint {}: {e}", path.display())))
}

/// Persists a checkpoint as a one-snapshot segment file, atomically (a
/// temp-file write followed by a rename, so a kill mid-write never corrupts
/// the file).
pub fn save_checkpoint(path: &Path, checkpoint: &SweepCheckpoint) -> FsResult<()> {
    write_atomic(path, &snapshot_file_bytes(checkpoint))
}

/// Shared coordinator state plus the condition variable idle worker
/// threads wait on when the queue is empty but other workers still have
/// shards in flight (a dying worker may hand its shards back).
struct Coord {
    state: Mutex<CoordState>,
    /// Notified whenever the queue or the in-flight set changes, or when
    /// the coordinator starts stopping.
    wake: Condvar,
}

/// Incremental checkpoint persistence over the segment log.
///
/// Opening the persister compacts the file to a fresh snapshot (one atomic
/// rewrite per *run*); each merged shard then costs one small fdatasync'd
/// delta append instead of a full-file rewrite, and the file is re-compacted
/// only when the appended deltas outgrow the last snapshot. All writes
/// happen *outside* the coordinator mutex (encoding is memory-speed and
/// stays under it); the persister's own mutex serializes the file, and the
/// version check keeps a compaction encoded before a concurrent delta from
/// wiping that delta off disk.
struct Persister {
    path: PathBuf,
    state: Mutex<PersisterState>,
}

struct PersisterState {
    /// Append handle to the live segment file (replaced on compaction,
    /// since the rename puts a new inode at the path).
    file: std::fs::File,
    /// Size of the last compacted file (its lone snapshot record).
    snapshot_bytes: u64,
    /// Delta bytes appended since that compaction.
    segment_bytes: u64,
    /// Newest merge version recorded on disk (delta or compaction).
    last_version: u64,
    /// Set when a failed append may have left a torn record that could
    /// *not* be truncated away. Appending anything after such a record
    /// would let its declared length swallow the next record on replay —
    /// breaking the "torn records only ever sit at the tail" invariant —
    /// so further appends are refused until a compaction (an atomic full
    /// rewrite) replaces the file.
    wedged: bool,
}

impl Persister {
    /// Compacts `checkpoint` to `path` (atomically replacing whatever was
    /// there — the caller has already loaded and validated it) and opens
    /// the file for delta appends.
    fn open(path: &Path, checkpoint: &SweepCheckpoint) -> FsResult<Persister> {
        let bytes = snapshot_file_bytes(checkpoint);
        write_atomic(path, &bytes)?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| FsError::Device(format!("open checkpoint {}: {e}", path.display())))?;
        Ok(Persister {
            path: path.to_path_buf(),
            state: Mutex::new(PersisterState {
                file,
                snapshot_bytes: bytes.len() as u64,
                segment_bytes: 0,
                last_version: 0,
                wedged: false,
            }),
        })
    }

    /// Durably appends one delta record (`payload` is the encoded
    /// `shard | ShardResult` of merge number `version`). Returns true when
    /// the deltas have outgrown the snapshot and a compaction is due.
    ///
    /// A failed append (ENOSPC, EIO…) may have written a partial record; the
    /// partial bytes are truncated away so the file stays replayable, and if
    /// even the truncation fails the persister refuses further appends
    /// (appending a complete record *after* torn bytes would let the torn
    /// record's declared length swallow it on replay) until a compaction
    /// atomically rewrites the file.
    fn append_delta(&self, version: u64, payload: &[u8]) -> FsResult<bool> {
        let record = segment_record(REC_DELTA, payload);
        let mut state = self.state.lock().expect("persister poisoned");
        if state.wedged {
            return Err(FsError::Device(format!(
                "append checkpoint {}: a previous failed append left a torn \
                 record that could not be truncated",
                self.path.display()
            )));
        }
        let append = state
            .file
            .write_all(&record)
            .and_then(|()| state.file.sync_data());
        if let Err(error) = append {
            // Roll the file back to its last-good length; on success the
            // torn bytes are gone and later appends are safe again.
            let good_len = state.snapshot_bytes + state.segment_bytes;
            if state.file.set_len(good_len).is_err() {
                state.wedged = true;
            }
            return Err(FsError::Device(format!(
                "append checkpoint {}: {error}",
                self.path.display()
            )));
        }
        state.segment_bytes += record.len() as u64;
        state.last_version = state.last_version.max(version);
        Ok(state.segment_bytes > state.snapshot_bytes.max(MIN_COMPACT_BYTES))
    }

    /// Atomically rewrites the file as one snapshot (the checkpoint as of
    /// merge number `version`), dropping the replayed deltas. Skipped when
    /// a newer delta is already on disk — the snapshot would not contain
    /// it, so compacting over it would lose a persisted shard.
    fn compact(&self, version: u64, snapshot_payload: &[u8]) -> FsResult<()> {
        let mut state = self.state.lock().expect("persister poisoned");
        if version < state.last_version {
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(snapshot_payload.len() + 9);
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&segment_record(REC_SNAPSHOT, snapshot_payload));
        write_atomic(&self.path, &bytes)?;
        state.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| {
                FsError::Device(format!("reopen checkpoint {}: {e}", self.path.display()))
            })?;
        state.snapshot_bytes = bytes.len() as u64;
        state.segment_bytes = 0;
        state.last_version = version;
        // The atomic rewrite replaced whatever a failed append left behind.
        state.wedged = false;
        Ok(())
    }
}

/// The coordinator's mutable state: the shard queue, the merged
/// checkpoint, and per-worker telemetry. One mutex guards it all —
/// traffic is one message per completed shard, so contention is
/// negligible.
struct CoordState {
    queue: VecDeque<u32>,
    /// Shards assigned to some worker whose results are not merged yet.
    in_flight: usize,
    checkpoint: SweepCheckpoint,
    /// Running totals mirroring the checkpoint (kept incrementally so the
    /// progress monitor does not re-aggregate every tick).
    tested: usize,
    skipped: usize,
    buggy: usize,
    merged_this_run: usize,
    processed_this_run: usize,
    /// Candidates covered by every shard assigned this run (in flight or
    /// done). A workload budget gates *assignment* on this estimate, not on
    /// merged results — otherwise claims granted while the first shards are
    /// still in flight overshoot the budget by workers × shard size.
    assigned_candidates: u64,
    stopping: bool,
    workers: Vec<WorkerTelemetry>,
    failed_workers: usize,
}

struct WorkerTelemetry {
    tested: u64,
    shards: u64,
    alive: bool,
}

impl CoordState {
    fn should_stop(&self, config: &DistribConfig) -> bool {
        config
            .stop_after_shards
            .is_some_and(|limit| self.merged_this_run >= limit)
            || config.stop_after_workloads.is_some_and(|limit| {
                self.processed_this_run >= limit || self.assigned_candidates >= limit as u64
            })
    }

    fn progress(&self, started: Instant, total_workloads: u64, seeded_shards: usize) -> Progress {
        let elapsed = started.elapsed();
        let completed = self.checkpoint.completed_shards();
        let total_shards = self.checkpoint.num_shards();
        let done_this_run = completed.saturating_sub(seeded_shards);
        let remaining = total_shards.saturating_sub(completed);
        let eta = (done_this_run > 0 && remaining > 0 && !self.stopping)
            .then(|| elapsed.mul_f64(remaining as f64 / done_this_run as f64));
        Progress {
            tested: self.tested,
            skipped: self.skipped,
            bugs: self.buggy,
            completed_shards: completed,
            total_shards,
            total_workloads: Some(total_workloads),
            elapsed,
            eta,
            per_worker: self
                .workers
                .iter()
                .enumerate()
                .map(|(index, w)| WorkerThroughput {
                    worker: index,
                    tested: w.tested,
                    shards: w.shards,
                    throughput: (w.alive && !elapsed.is_zero())
                        .then(|| w.tested as f64 / elapsed.as_secs_f64()),
                })
                .collect(),
        }
    }
}

/// Runs (or resumes) a distributed sweep: spawns `config.workers` child
/// processes with `worker`, feeds them shards, merges every returned
/// grouped per-shard result into the checkpoint, and durably appends each
/// merge to the checkpoint file as one delta record (compacting the file
/// when the deltas outgrow the last snapshot — never a full rewrite per
/// shard).
///
/// When `config.checkpoint_path` names an existing file, the sweep resumes
/// from it; a checkpoint recorded for a different sweep — other bounds,
/// shard count, file system, kernel era, or CrashMonkey configuration
/// ([`SweepJob::scope`]) — is rejected with an error rather than silently
/// combined. Worker death is
/// tolerated: the dead worker's in-flight shards go back on the queue for
/// the surviving workers, and if *every* worker dies the coordinator
/// returns an incomplete (but persisted) checkpoint the next run picks up.
pub fn run_distributed(
    job: &SweepJob,
    config: &DistribConfig,
    worker: &WorkerCommand,
    progress: Option<&(dyn Fn(&Progress) + Sync)>,
) -> FsResult<DistribOutcome> {
    let started = Instant::now();
    let checkpoint = match &config.checkpoint_path {
        Some(path) => match load_checkpoint(path)? {
            Some(existing) => {
                // The scope covers the file system, era, and CrashMonkey
                // configuration: a checkpoint recorded under any other
                // execution context (not just other bounds) is rejected.
                if !existing.matches_scoped(&job.bounds, job.num_shards, &job.scope()) {
                    return Err(FsError::InvalidArgument(format!(
                        "checkpoint {} was recorded for a different sweep \
                         (its fingerprint: {})",
                        path.display(),
                        existing.fingerprint()
                    )));
                }
                existing
            }
            None => job.empty_checkpoint(),
        },
        None => job.empty_checkpoint(),
    };
    let seeded_shards = checkpoint.completed_shards();
    let seeded = checkpoint.summary();
    let total_workloads = WorkloadGenerator::estimate_candidates(&job.bounds);
    // Open the persister only after the loaded checkpoint was validated:
    // opening compacts (rewrites) the file, and a mismatched checkpoint
    // must be rejected untouched.
    let persister = match &config.checkpoint_path {
        Some(path) => Some(Persister::open(path, &checkpoint)?),
        None => None,
    };

    let coord = Coord {
        state: Mutex::new(CoordState {
            queue: checkpoint.missing_shards().into(),
            in_flight: 0,
            tested: seeded.tested,
            skipped: seeded.skipped,
            buggy: checkpoint.total_buggy() as usize,
            checkpoint,
            merged_this_run: 0,
            processed_this_run: 0,
            assigned_candidates: 0,
            stopping: false,
            workers: (0..config.workers.max(1))
                .map(|_| WorkerTelemetry {
                    tested: 0,
                    shards: 0,
                    alive: true,
                })
                .collect(),
            failed_workers: 0,
        }),
        wake: Condvar::new(),
    };
    let done = AtomicBool::new(false);

    let job_frame = ToWorker::Job(job.clone()).to_frame();
    let workers_to_spawn = config.workers.max(1);
    let shard_sizes: Vec<u64> = (0..job.num_shards)
        .map(|index| job.bounds.shard(index, job.num_shards).candidates())
        .collect();

    std::thread::scope(|scope| -> FsResult<()> {
        if let Some(callback) = progress {
            let coord = &coord;
            let done = &done;
            let interval = config.progress_interval;
            scope.spawn(move || {
                let mut last_fired = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last_fired.elapsed() >= interval {
                        let snapshot = coord
                            .state
                            .lock()
                            .expect("coordinator state poisoned")
                            .progress(started, total_workloads, seeded_shards);
                        callback(&snapshot);
                        last_fired = Instant::now();
                    }
                }
                let snapshot = coord
                    .state
                    .lock()
                    .expect("coordinator state poisoned")
                    .progress(started, total_workloads, seeded_shards);
                callback(&snapshot);
            });
        }

        let handles: Vec<_> = (0..workers_to_spawn)
            .map(|index| {
                let coord = &coord;
                let job_frame = &job_frame;
                let shard_sizes = &shard_sizes;
                let persister = persister.as_ref();
                scope.spawn(move || {
                    serve_worker(
                        index,
                        worker,
                        job_frame,
                        shard_sizes,
                        coord,
                        persister,
                        config,
                    )
                })
            })
            .collect();
        let mut first_error = None;
        for handle in handles {
            if let Err(error) = handle.join().expect("worker thread panicked") {
                let mut state = coord.state.lock().expect("coordinator state poisoned");
                state.failed_workers += 1;
                first_error.get_or_insert(error);
            }
        }
        done.store(true, Ordering::Relaxed);
        // A worker failure is only fatal when it left work unfinished AND
        // unpersisted progress — shards it completed are already merged, so
        // surviving workers usually absorb the loss. Report the error only
        // if the sweep neither completed nor was asked to stop early.
        let state = coord.state.lock().expect("coordinator state poisoned");
        if let Some(error) = first_error {
            if !state.checkpoint.is_complete() && !state.should_stop(config) {
                drop(state);
                return Err(error);
            }
        }
        Ok(())
    })?;

    let state = coord
        .state
        .into_inner()
        .expect("coordinator state poisoned");
    // No final rewrite: every merged shard is already on disk as a delta
    // record (the same state a killed coordinator leaves behind); the next
    // run's persister open compacts the log.
    drop(persister);
    let mut summary = state.checkpoint.summary();
    summary.elapsed = started.elapsed();
    Ok(DistribOutcome {
        summary,
        checkpoint: state.checkpoint,
        resumed_shards: seeded_shards,
        processed_this_run: state.processed_this_run,
        elapsed: started.elapsed(),
        failed_workers: state.failed_workers,
    })
}

/// Drives one worker process to completion: spawn, send the job, then
/// alternate claims and assignments until the queue drains or a stop
/// condition fires. Returns an error if the worker died with shards in
/// flight (after re-queueing them).
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    index: usize,
    command: &WorkerCommand,
    job_frame: &[u8],
    shard_sizes: &[u64],
    coord: &Coord,
    persister: Option<&Persister>,
    config: &DistribConfig,
) -> FsResult<()> {
    let mut child = match Command::new(&command.program)
        .args(&command.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(child) => child,
        Err(error) => {
            // Never-started workers must still drop out of the telemetry,
            // or progress reports them as alive at 0/s forever.
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            state.workers[index].alive = false;
            return Err(transport_err("spawn worker", error));
        }
    };
    let mut stdin = child.stdin.take().expect("worker stdin is piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("worker stdout is piped"));

    // Shards assigned to this worker whose results have not come back yet.
    let mut in_flight: Vec<u32> = Vec::new();
    let result = (|| -> FsResult<()> {
        write_frame(&mut stdin, job_frame)?;
        loop {
            let message = FromWorker::from_frame(&read_frame(&mut stdout)?)?;
            match message {
                FromWorker::Claim => {
                    let batch: Vec<u32> = {
                        let mut state = coord.state.lock().expect("coordinator state poisoned");
                        loop {
                            if state.stopping || state.should_stop(config) {
                                state.stopping = true;
                                coord.wake.notify_all();
                                break Vec::new();
                            }
                            if !state.queue.is_empty() {
                                let take = config.assign_batch.max(1).min(state.queue.len());
                                let batch: Vec<u32> = state.queue.drain(..take).collect();
                                for &shard in &batch {
                                    state.assigned_candidates += shard_sizes[shard as usize];
                                }
                                state.in_flight += batch.len();
                                break batch;
                            }
                            if state.in_flight == 0 {
                                // Queue drained and nothing in flight: the
                                // sweep (or this run's slice of it) is done.
                                break Vec::new();
                            }
                            // Queue empty but other workers still hold
                            // shards; if one of them dies, its shards come
                            // back to the queue — wait instead of shutting
                            // this worker down and stranding that work.
                            state = coord.wake.wait(state).expect("coordinator state poisoned");
                        }
                    };
                    if batch.is_empty() {
                        write_frame(&mut stdin, &ToWorker::Shutdown.to_frame())?;
                        return Ok(());
                    }
                    in_flight.extend(&batch);
                    write_frame(&mut stdin, &ToWorker::Assign(batch).to_frame())?;
                }
                FromWorker::ShardDone { shard, result } => {
                    // A result for a shard this worker was never assigned
                    // (or already reported) is a protocol violation; bail
                    // before it corrupts the shared counters.
                    let Some(position) = in_flight.iter().position(|&s| s == shard) else {
                        return Err(FsError::Corrupted(format!(
                            "worker reported shard {shard} it does not hold"
                        )));
                    };
                    in_flight.swap_remove(position);
                    let to_persist = {
                        let mut state = coord.state.lock().expect("coordinator state poisoned");
                        state.in_flight -= 1;
                        state.tested += result.tested as usize;
                        state.skipped += result.skipped as usize;
                        state.buggy += result.buggy as usize;
                        state.processed_this_run += (result.tested + result.skipped) as usize;
                        state.merged_this_run += 1;
                        let worker = &mut state.workers[index];
                        worker.shards += 1;
                        worker.tested += result.tested;
                        // Encode the delta record under the lock
                        // (memory-speed), then merge the single-shard
                        // result as a checkpoint union, so the one
                        // aggregation primitive (`merge`) is the one the
                        // protocol exercises.
                        let delta = persister.map(|p| {
                            let mut enc = Encoder::new();
                            enc.put_u32(shard);
                            result.encode(&mut enc);
                            (p, state.merged_this_run as u64, enc.finish())
                        });
                        let mut incoming = state.checkpoint.subset([]);
                        incoming.record(shard, result);
                        state.checkpoint.merge(&incoming)?;
                        coord.wake.notify_all();
                        delta
                    };
                    // The file IO happens outside the coordinator lock so
                    // workers don't stall behind it: one small fsync'd
                    // append per shard, plus the occasional compaction.
                    if let Some((persister, version, delta)) = to_persist {
                        if persister.append_delta(version, &delta)? {
                            let (version, snapshot) = {
                                let state = coord.state.lock().expect("coordinator state poisoned");
                                (state.merged_this_run as u64, state.checkpoint.to_bytes())
                            };
                            persister.compact(version, &snapshot)?;
                        }
                    }
                }
            }
        }
    })();

    // Whatever happened, account for this worker's fate.
    match result {
        Ok(()) => {
            let _ = child.wait();
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            state.workers[index].alive = false;
            Ok(())
        }
        Err(error) => {
            // The worker died or broke protocol: reclaim its in-flight
            // shards so surviving workers can run them, then reap it.
            let _ = child.kill();
            let _ = child.wait();
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            for shard in in_flight {
                state.in_flight -= 1;
                if !state.checkpoint.has_shard(shard) {
                    state.queue.push_front(shard);
                    state.assigned_candidates = state
                        .assigned_candidates
                        .saturating_sub(shard_sizes[shard as usize]);
                }
            }
            state.workers[index].alive = false;
            // Wake any worker waiting for in-flight shards: either the
            // queue just grew, or this was the last in-flight holder.
            coord.wake.notify_all();
            Err(error)
        }
    }
}

/// Options for [`worker_main`].
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Chaos-test hook: exit with [`WORKER_CRASH_EXIT`] immediately before
    /// running workload `N` (counted across all assigned shards), i.e. die
    /// mid-shard. `None` disables the hook.
    pub die_after_workloads: Option<u64>,
}

/// The worker side of the protocol, speaking frames over this process's
/// stdin/stdout. Returns the process exit code; the caller (the
/// `b3-sweep-worker` binary or a `--worker`-mode coordinator) passes it to
/// [`std::process::exit`].
pub fn worker_main(options: WorkerOptions) -> i32 {
    match worker_loop(options) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("b3 sweep worker: {error}");
            1
        }
    }
}

fn worker_loop(options: WorkerOptions) -> FsResult<()> {
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();

    let job = match ToWorker::from_frame(&read_frame(&mut stdin)?)? {
        ToWorker::Job(job) => job,
        _ => {
            return Err(FsError::Corrupted(
                "worker expected a Job as its first message".into(),
            ))
        }
    };
    let spec = job.fs.spec(job.era);
    let monkey = CrashMonkey::with_config(spec.as_ref(), job.crashmonkey);
    let mut workloads_until_crash = options.die_after_workloads;

    loop {
        write_frame(&mut stdout, &FromWorker::Claim.to_frame())?;
        match ToWorker::from_frame(&read_frame(&mut stdin)?)? {
            ToWorker::Assign(shards) => {
                for shard in shards {
                    let result = run_shard(&monkey, &job.bounds, shard, job.num_shards, || {
                        if let Some(remaining) = &mut workloads_until_crash {
                            if *remaining == 0 {
                                // The chaos hook: die mid-shard, leaving
                                // the claimed shard unreported.
                                std::process::exit(WORKER_CRASH_EXIT);
                            }
                            *remaining -= 1;
                        }
                    });
                    write_frame(
                        &mut stdout,
                        &FromWorker::ShardDone { shard, result }.to_frame(),
                    )?;
                }
            }
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Job(_) => {
                return Err(FsError::Corrupted("unexpected second Job message".into()))
            }
        }
    }
}
