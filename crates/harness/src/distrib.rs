//! Multi-process sweep fan-out: a coordinator/worker protocol over the
//! sharded sweep engine.
//!
//! The paper fanned its 3.37M workloads out to 780 VMs on a 65-node cluster
//! (§6.1); [`crate::sweep`] is the in-process analogue, and this module is
//! the multi-*process* one. A coordinator owns the shard queue and the
//! checkpoint file; workers are child processes that speak a tiny
//! length-prefixed, codec-serialized protocol over stdio:
//!
//! ```text
//!  coordinator                               worker (child process)
//!  ───────────                               ──────────────────────
//!  spawn ──────────────────────────────────▶ start
//!  Job { fs, era, bounds, shards, config } ▶ build spec + CrashMonkey
//!                                          ◀ Claim
//!  Assign { shard indices } ───────────────▶ run each shard via the
//!                                            sweep engine's shard runner
//!                          ◀ ShardDone { shard, result }   (per shard)
//!                                          ◀ Claim
//!  …until the queue drains, then…
//!  Shutdown ───────────────────────────────▶ exit 0
//! ```
//!
//! Every `ShardDone` is merged into the coordinator's
//! [`SweepCheckpoint`] (via [`SweepCheckpoint::merge`] — union of completed
//! shards) and atomically persisted to the checkpoint file, so killing the
//! coordinator *or* any worker at any point loses at most the shards that
//! were in flight: the next coordinator run reloads the file, re-queues
//! exactly the missing shards, and converges to the same counts as an
//! uninterrupted single-process sweep (`tests/distrib.rs` proves both the
//! differential and the chaos direction).

use std::collections::VecDeque;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig, CrashPointPolicy};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::KernelEra;

use crate::corpus::FsKind;
use crate::runner::RunSummary;
use crate::sweep::{run_shard, Progress, ShardResult, SweepCheckpoint, WorkerThroughput};

/// Exit code a worker uses when its injected crash hook fires (the chaos
/// tests' stand-in for a worker VM dying mid-shard).
pub const WORKER_CRASH_EXIT: i32 = 41;

fn transport_err(context: &str, error: std::io::Error) -> FsError {
    FsError::Device(format!("worker transport: {context}: {error}"))
}

/// Writes one length-prefixed frame.
fn write_frame(writer: &mut impl Write, payload: &[u8]) -> FsResult<()> {
    writer
        .write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| writer.write_all(payload))
        .and_then(|()| writer.flush())
        .map_err(|e| transport_err("write frame", e))
}

/// Largest frame either side accepts. Real frames are far smaller (a Job
/// is a few KB, a ShardDone carries one shard's reports); the cap exists
/// so a desynced stream — stray bytes on a worker's stdout, say — surfaces
/// as a protocol error instead of a multi-gigabyte allocation.
const MAX_FRAME_BYTES: usize = 64 << 20;

/// Reads one length-prefixed frame.
fn read_frame(reader: &mut impl Read) -> FsResult<Vec<u8>> {
    let mut len = [0u8; 4];
    reader
        .read_exact(&mut len)
        .map_err(|e| transport_err("read frame length", e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FsError::Corrupted(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte protocol limit \
             (desynced stream?)"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| transport_err("read frame payload", e))?;
    Ok(payload)
}

/// Everything a worker needs to reproduce its slice of the sweep: which
/// simulated file system (and kernel era) to test, the exact bounds, the
/// shard split, and the CrashMonkey configuration.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The simulated file system under test.
    pub fs: FsKind,
    /// The kernel era the file system simulates.
    pub era: KernelEra,
    /// The bounded workload space.
    pub bounds: Bounds,
    /// How many shards the space is split into.
    pub num_shards: usize,
    /// CrashMonkey configuration every worker uses.
    pub crashmonkey: CrashMonkeyConfig,
}

impl SweepJob {
    /// A job over the given space with the paper's evaluation-era defaults
    /// (CowFs at 4.16, small CrashMonkey device).
    pub fn new(bounds: Bounds, num_shards: usize) -> SweepJob {
        SweepJob {
            fs: FsKind::Cow,
            era: KernelEra::EVALUATION,
            bounds,
            num_shards,
            crashmonkey: CrashMonkeyConfig::small(),
        }
    }

    /// The execution context this job's checkpoints are scoped to: the file
    /// system, kernel era, and CrashMonkey configuration. Two jobs over
    /// identical bounds but different contexts produce different shard
    /// results, so their checkpoints must never resume or merge into each
    /// other.
    pub fn scope(&self) -> String {
        let cm = &self.crashmonkey;
        format!(
            "{}@{}/blk{}/cp{}{}{}",
            self.fs.paper_name(),
            self.era.as_str(),
            cm.device_blocks,
            u8::from(matches!(cm.crash_points, CrashPointPolicy::All)),
            u8::from(cm.direct_write_is_persistence_point),
            u8::from(cm.model_kernel_delays),
        )
    }

    /// An empty checkpoint for this job's (bounds, shard count, context)
    /// triple.
    pub fn empty_checkpoint(&self) -> SweepCheckpoint {
        SweepCheckpoint::scoped(&self.bounds, self.num_shards, &self.scope())
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.fs.paper_name());
        enc.put_str(self.era.as_str());
        self.bounds.encode(enc);
        enc.put_u64(self.num_shards as u64);
        enc.put_u64(self.crashmonkey.device_blocks);
        enc.put_bool(matches!(
            self.crashmonkey.crash_points,
            CrashPointPolicy::All
        ));
        enc.put_bool(self.crashmonkey.direct_write_is_persistence_point);
        enc.put_bool(self.crashmonkey.model_kernel_delays);
    }

    fn decode(dec: &mut Decoder<'_>) -> FsResult<SweepJob> {
        let fs_name = dec.get_str()?;
        let fs = FsKind::parse(&fs_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown file system {fs_name:?}")))?;
        let era_name = dec.get_str()?;
        let era = KernelEra::parse(&era_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown kernel era {era_name:?}")))?;
        let bounds = Bounds::decode(dec)?;
        let num_shards = dec.get_u64()? as usize;
        let crashmonkey = CrashMonkeyConfig {
            device_blocks: dec.get_u64()?,
            crash_points: if dec.get_bool()? {
                CrashPointPolicy::All
            } else {
                CrashPointPolicy::LastOnly
            },
            direct_write_is_persistence_point: dec.get_bool()?,
            model_kernel_delays: dec.get_bool()?,
        };
        Ok(SweepJob {
            fs,
            era,
            bounds,
            num_shards,
            crashmonkey,
        })
    }
}

const MSG_JOB: u8 = 1;
const MSG_ASSIGN: u8 = 2;
const MSG_SHUTDOWN: u8 = 3;
const MSG_CLAIM: u8 = 0x81;
const MSG_SHARD_DONE: u8 = 0x82;

/// Coordinator-to-worker messages.
enum ToWorker {
    Job(SweepJob),
    Assign(Vec<u32>),
    Shutdown,
}

impl ToWorker {
    fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ToWorker::Job(job) => {
                enc.put_u8(MSG_JOB);
                job.encode(&mut enc);
            }
            ToWorker::Assign(shards) => {
                enc.put_u8(MSG_ASSIGN);
                enc.put_u64(shards.len() as u64);
                for shard in shards {
                    enc.put_u32(*shard);
                }
            }
            ToWorker::Shutdown => enc.put_u8(MSG_SHUTDOWN),
        }
        enc.finish()
    }

    fn from_frame(frame: &[u8]) -> FsResult<ToWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            MSG_JOB => Ok(ToWorker::Job(SweepJob::decode(&mut dec)?)),
            MSG_ASSIGN => {
                let count = dec.get_u64()? as usize;
                let mut shards = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    shards.push(dec.get_u32()?);
                }
                Ok(ToWorker::Assign(shards))
            }
            MSG_SHUTDOWN => Ok(ToWorker::Shutdown),
            tag => Err(FsError::Corrupted(format!(
                "unknown coordinator message tag {tag:#x}"
            ))),
        }
    }
}

/// Worker-to-coordinator messages.
enum FromWorker {
    /// The worker is idle and wants shards.
    Claim,
    /// One assigned shard ran to completion.
    ShardDone { shard: u32, result: ShardResult },
}

impl FromWorker {
    fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            FromWorker::Claim => enc.put_u8(MSG_CLAIM),
            FromWorker::ShardDone { shard, result } => {
                enc.put_u8(MSG_SHARD_DONE);
                enc.put_u32(*shard);
                result.encode(&mut enc);
            }
        }
        enc.finish()
    }

    fn from_frame(frame: &[u8]) -> FsResult<FromWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            MSG_CLAIM => Ok(FromWorker::Claim),
            MSG_SHARD_DONE => Ok(FromWorker::ShardDone {
                shard: dec.get_u32()?,
                result: ShardResult::decode(&mut dec)?,
            }),
            tag => Err(FsError::Corrupted(format!(
                "unknown worker message tag {tag:#x}"
            ))),
        }
    }
}

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Path to the worker executable (typically the `b3-sweep-worker` binary
    /// or a `--worker`-mode re-exec of the coordinator binary).
    pub program: PathBuf,
    /// Arguments passed before the protocol takes over stdio.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Appends an argument.
    pub fn arg(mut self, arg: impl Into<String>) -> WorkerCommand {
        self.args.push(arg.into());
        self
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct DistribConfig {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Shards handed out per assignment. One is the safest (losing a worker
    /// loses at most one in-flight shard); larger batches amortize protocol
    /// round-trips when shards are tiny.
    pub assign_batch: usize,
    /// Stop handing out work after this many shards have been merged *in
    /// this run* (the chaos tests' stand-in for killing the coordinator
    /// after a partial merge).
    pub stop_after_shards: Option<usize>,
    /// Stop handing out work once this many workloads have been processed
    /// in this run. Shards are the scheduling unit, so the run overshoots
    /// to the end of in-flight shards.
    pub stop_after_workloads: Option<usize>,
    /// Where the merged checkpoint is persisted (atomically, after every
    /// merge). `None` keeps the checkpoint in memory only.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the progress callback fires.
    pub progress_interval: Duration,
}

impl Default for DistribConfig {
    fn default() -> Self {
        DistribConfig {
            workers: 4,
            assign_batch: 1,
            stop_after_shards: None,
            stop_after_workloads: None,
            checkpoint_path: None,
            progress_interval: Duration::from_secs(1),
        }
    }
}

/// What a coordinator run produced.
#[derive(Debug)]
pub struct DistribOutcome {
    /// Aggregate counts of *all* completed shards (including ones restored
    /// from the checkpoint file), in shard order — identical to a
    /// single-process sweep's summary once complete.
    pub summary: RunSummary,
    /// The merged checkpoint (also persisted to the checkpoint file, when
    /// one is configured).
    pub checkpoint: SweepCheckpoint,
    /// Shards that were already in the checkpoint when this run started.
    pub resumed_shards: usize,
    /// Workloads processed (tested + skipped) by *this* run, excluding
    /// work restored from the checkpoint.
    pub processed_this_run: usize,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
    /// Workers that exited or broke the protocol before shutdown.
    pub failed_workers: usize,
}

impl DistribOutcome {
    /// True once every shard of the space is recorded.
    pub fn is_complete(&self) -> bool {
        self.checkpoint.is_complete()
    }

    /// Workloads per second of wall-clock time achieved by this run (not
    /// counting checkpointed work from previous runs).
    pub fn throughput_this_run(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.processed_this_run as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Loads a checkpoint file written by [`save_checkpoint`]. Returns
/// `Ok(None)` when the file does not exist.
pub fn load_checkpoint(path: &Path) -> FsResult<Option<SweepCheckpoint>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(SweepCheckpoint::from_bytes(&bytes)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(FsError::Device(format!(
            "read checkpoint {}: {e}",
            path.display()
        ))),
    }
}

/// Atomically writes `bytes` to `path`: a sibling temp file, fsynced
/// before the rename (and the parent directory fsynced after), so neither
/// a process kill nor a power cut mid-write corrupts the destination —
/// rename-without-fsync is precisely the bug class this project tests for.
fn write_atomic(path: &Path, bytes: &[u8]) -> FsResult<()> {
    fn inner(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    }
    inner(path, bytes)
        .map_err(|e| FsError::Device(format!("persist checkpoint {}: {e}", path.display())))
}

/// Atomically persists a checkpoint: a temp-file write followed by a
/// rename, so a kill mid-write never corrupts the file.
pub fn save_checkpoint(path: &Path, checkpoint: &SweepCheckpoint) -> FsResult<()> {
    write_atomic(path, &checkpoint.to_bytes())
}

/// Shared coordinator state plus the condition variable idle worker
/// threads wait on when the queue is empty but other workers still have
/// shards in flight (a dying worker may hand its shards back).
struct Coord {
    state: Mutex<CoordState>,
    /// Notified whenever the queue or the in-flight set changes, or when
    /// the coordinator starts stopping.
    wake: Condvar,
}

/// Serializes checkpoint-file writes so they happen *outside* the
/// coordinator mutex (the encode is cheap and stays under the lock; the
/// write + rename is the slow part) without ever letting a stale snapshot
/// overwrite a newer one.
struct Persister {
    path: PathBuf,
    last_version: Mutex<u64>,
}

impl Persister {
    /// Writes `bytes` (the checkpoint as of merge number `version`)
    /// atomically, unless a newer version has already been written.
    fn persist(&self, version: u64, bytes: &[u8]) -> FsResult<()> {
        let mut last = self.last_version.lock().expect("persister poisoned");
        if version <= *last {
            return Ok(());
        }
        write_atomic(&self.path, bytes)?;
        *last = version;
        Ok(())
    }
}

/// The coordinator's mutable state: the shard queue, the merged
/// checkpoint, and per-worker telemetry. One mutex guards it all —
/// traffic is one message per completed shard, so contention is
/// negligible.
struct CoordState {
    queue: VecDeque<u32>,
    /// Shards assigned to some worker whose results are not merged yet.
    in_flight: usize,
    checkpoint: SweepCheckpoint,
    /// Running totals mirroring the checkpoint (kept incrementally so the
    /// progress monitor does not re-aggregate every tick).
    tested: usize,
    skipped: usize,
    buggy: usize,
    merged_this_run: usize,
    processed_this_run: usize,
    /// Candidates covered by every shard assigned this run (in flight or
    /// done). A workload budget gates *assignment* on this estimate, not on
    /// merged results — otherwise claims granted while the first shards are
    /// still in flight overshoot the budget by workers × shard size.
    assigned_candidates: u64,
    stopping: bool,
    workers: Vec<WorkerTelemetry>,
    failed_workers: usize,
}

struct WorkerTelemetry {
    tested: u64,
    shards: u64,
    alive: bool,
}

impl CoordState {
    fn should_stop(&self, config: &DistribConfig) -> bool {
        config
            .stop_after_shards
            .is_some_and(|limit| self.merged_this_run >= limit)
            || config.stop_after_workloads.is_some_and(|limit| {
                self.processed_this_run >= limit || self.assigned_candidates >= limit as u64
            })
    }

    fn progress(&self, started: Instant, total_workloads: u64, seeded_shards: usize) -> Progress {
        let elapsed = started.elapsed();
        let completed = self.checkpoint.completed_shards();
        let total_shards = self.checkpoint.num_shards();
        let done_this_run = completed.saturating_sub(seeded_shards);
        let remaining = total_shards.saturating_sub(completed);
        let eta = (done_this_run > 0 && remaining > 0 && !self.stopping)
            .then(|| elapsed.mul_f64(remaining as f64 / done_this_run as f64));
        Progress {
            tested: self.tested,
            skipped: self.skipped,
            bugs: self.buggy,
            completed_shards: completed,
            total_shards,
            total_workloads: Some(total_workloads),
            elapsed,
            eta,
            per_worker: self
                .workers
                .iter()
                .enumerate()
                .map(|(index, w)| WorkerThroughput {
                    worker: index,
                    tested: w.tested,
                    shards: w.shards,
                    throughput: (w.alive && !elapsed.is_zero())
                        .then(|| w.tested as f64 / elapsed.as_secs_f64()),
                })
                .collect(),
        }
    }
}

/// Runs (or resumes) a distributed sweep: spawns `config.workers` child
/// processes with `worker`, feeds them shards, merges every returned
/// per-shard result into the checkpoint, and persists the merge after
/// every shard.
///
/// When `config.checkpoint_path` names an existing file, the sweep resumes
/// from it; a checkpoint recorded for a different sweep — other bounds,
/// shard count, file system, kernel era, or CrashMonkey configuration
/// ([`SweepJob::scope`]) — is rejected with an error rather than silently
/// combined. Worker death is
/// tolerated: the dead worker's in-flight shards go back on the queue for
/// the surviving workers, and if *every* worker dies the coordinator
/// returns an incomplete (but persisted) checkpoint the next run picks up.
pub fn run_distributed(
    job: &SweepJob,
    config: &DistribConfig,
    worker: &WorkerCommand,
    progress: Option<&(dyn Fn(&Progress) + Sync)>,
) -> FsResult<DistribOutcome> {
    let started = Instant::now();
    let checkpoint = match &config.checkpoint_path {
        Some(path) => match load_checkpoint(path)? {
            Some(existing) => {
                // The scope covers the file system, era, and CrashMonkey
                // configuration: a checkpoint recorded under any other
                // execution context (not just other bounds) is rejected.
                if !existing.matches_scoped(&job.bounds, job.num_shards, &job.scope()) {
                    return Err(FsError::InvalidArgument(format!(
                        "checkpoint {} was recorded for a different sweep \
                         (its fingerprint: {})",
                        path.display(),
                        existing.fingerprint()
                    )));
                }
                existing
            }
            None => job.empty_checkpoint(),
        },
        None => job.empty_checkpoint(),
    };
    let seeded_shards = checkpoint.completed_shards();
    let seeded = checkpoint.summary();
    let total_workloads = WorkloadGenerator::estimate_candidates(&job.bounds);

    let coord = Coord {
        state: Mutex::new(CoordState {
            queue: checkpoint.missing_shards().into(),
            in_flight: 0,
            tested: seeded.tested,
            skipped: seeded.skipped,
            buggy: checkpoint.total_buggy() as usize,
            checkpoint,
            merged_this_run: 0,
            processed_this_run: 0,
            assigned_candidates: 0,
            stopping: false,
            workers: (0..config.workers.max(1))
                .map(|_| WorkerTelemetry {
                    tested: 0,
                    shards: 0,
                    alive: true,
                })
                .collect(),
            failed_workers: 0,
        }),
        wake: Condvar::new(),
    };
    let persister = config.checkpoint_path.as_ref().map(|path| Persister {
        path: path.clone(),
        last_version: Mutex::new(0),
    });
    let done = AtomicBool::new(false);

    let job_frame = ToWorker::Job(job.clone()).to_frame();
    let workers_to_spawn = config.workers.max(1);
    let shard_sizes: Vec<u64> = (0..job.num_shards)
        .map(|index| job.bounds.shard(index, job.num_shards).candidates())
        .collect();

    std::thread::scope(|scope| -> FsResult<()> {
        if let Some(callback) = progress {
            let coord = &coord;
            let done = &done;
            let interval = config.progress_interval;
            scope.spawn(move || {
                let mut last_fired = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last_fired.elapsed() >= interval {
                        let snapshot = coord
                            .state
                            .lock()
                            .expect("coordinator state poisoned")
                            .progress(started, total_workloads, seeded_shards);
                        callback(&snapshot);
                        last_fired = Instant::now();
                    }
                }
                let snapshot = coord
                    .state
                    .lock()
                    .expect("coordinator state poisoned")
                    .progress(started, total_workloads, seeded_shards);
                callback(&snapshot);
            });
        }

        let handles: Vec<_> = (0..workers_to_spawn)
            .map(|index| {
                let coord = &coord;
                let job_frame = &job_frame;
                let shard_sizes = &shard_sizes;
                let persister = persister.as_ref();
                scope.spawn(move || {
                    serve_worker(
                        index,
                        worker,
                        job_frame,
                        shard_sizes,
                        coord,
                        persister,
                        config,
                    )
                })
            })
            .collect();
        let mut first_error = None;
        for handle in handles {
            if let Err(error) = handle.join().expect("worker thread panicked") {
                let mut state = coord.state.lock().expect("coordinator state poisoned");
                state.failed_workers += 1;
                first_error.get_or_insert(error);
            }
        }
        done.store(true, Ordering::Relaxed);
        // A worker failure is only fatal when it left work unfinished AND
        // unpersisted progress — shards it completed are already merged, so
        // surviving workers usually absorb the loss. Report the error only
        // if the sweep neither completed nor was asked to stop early.
        let state = coord.state.lock().expect("coordinator state poisoned");
        if let Some(error) = first_error {
            if !state.checkpoint.is_complete() && !state.should_stop(config) {
                drop(state);
                return Err(error);
            }
        }
        Ok(())
    })?;

    let state = coord
        .state
        .into_inner()
        .expect("coordinator state poisoned");
    if let Some(path) = &config.checkpoint_path {
        save_checkpoint(path, &state.checkpoint)?;
    }
    let mut summary = state.checkpoint.summary();
    summary.elapsed = started.elapsed();
    Ok(DistribOutcome {
        summary,
        checkpoint: state.checkpoint,
        resumed_shards: seeded_shards,
        processed_this_run: state.processed_this_run,
        elapsed: started.elapsed(),
        failed_workers: state.failed_workers,
    })
}

/// Drives one worker process to completion: spawn, send the job, then
/// alternate claims and assignments until the queue drains or a stop
/// condition fires. Returns an error if the worker died with shards in
/// flight (after re-queueing them).
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    index: usize,
    command: &WorkerCommand,
    job_frame: &[u8],
    shard_sizes: &[u64],
    coord: &Coord,
    persister: Option<&Persister>,
    config: &DistribConfig,
) -> FsResult<()> {
    let mut child = match Command::new(&command.program)
        .args(&command.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(child) => child,
        Err(error) => {
            // Never-started workers must still drop out of the telemetry,
            // or progress reports them as alive at 0/s forever.
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            state.workers[index].alive = false;
            return Err(transport_err("spawn worker", error));
        }
    };
    let mut stdin = child.stdin.take().expect("worker stdin is piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("worker stdout is piped"));

    // Shards assigned to this worker whose results have not come back yet.
    let mut in_flight: Vec<u32> = Vec::new();
    let result = (|| -> FsResult<()> {
        write_frame(&mut stdin, job_frame)?;
        loop {
            let message = FromWorker::from_frame(&read_frame(&mut stdout)?)?;
            match message {
                FromWorker::Claim => {
                    let batch: Vec<u32> = {
                        let mut state = coord.state.lock().expect("coordinator state poisoned");
                        loop {
                            if state.stopping || state.should_stop(config) {
                                state.stopping = true;
                                coord.wake.notify_all();
                                break Vec::new();
                            }
                            if !state.queue.is_empty() {
                                let take = config.assign_batch.max(1).min(state.queue.len());
                                let batch: Vec<u32> = state.queue.drain(..take).collect();
                                for &shard in &batch {
                                    state.assigned_candidates += shard_sizes[shard as usize];
                                }
                                state.in_flight += batch.len();
                                break batch;
                            }
                            if state.in_flight == 0 {
                                // Queue drained and nothing in flight: the
                                // sweep (or this run's slice of it) is done.
                                break Vec::new();
                            }
                            // Queue empty but other workers still hold
                            // shards; if one of them dies, its shards come
                            // back to the queue — wait instead of shutting
                            // this worker down and stranding that work.
                            state = coord.wake.wait(state).expect("coordinator state poisoned");
                        }
                    };
                    if batch.is_empty() {
                        write_frame(&mut stdin, &ToWorker::Shutdown.to_frame())?;
                        return Ok(());
                    }
                    in_flight.extend(&batch);
                    write_frame(&mut stdin, &ToWorker::Assign(batch).to_frame())?;
                }
                FromWorker::ShardDone { shard, result } => {
                    // A result for a shard this worker was never assigned
                    // (or already reported) is a protocol violation; bail
                    // before it corrupts the shared counters.
                    let Some(position) = in_flight.iter().position(|&s| s == shard) else {
                        return Err(FsError::Corrupted(format!(
                            "worker reported shard {shard} it does not hold"
                        )));
                    };
                    in_flight.swap_remove(position);
                    let to_persist = {
                        let mut state = coord.state.lock().expect("coordinator state poisoned");
                        state.in_flight -= 1;
                        state.tested += result.tested as usize;
                        state.skipped += result.skipped as usize;
                        state.buggy += result.buggy as usize;
                        state.processed_this_run += (result.tested + result.skipped) as usize;
                        state.merged_this_run += 1;
                        let worker = &mut state.workers[index];
                        worker.shards += 1;
                        worker.tested += result.tested;
                        // Merge the single-shard result as a checkpoint
                        // union, so the one aggregation primitive (`merge`)
                        // is the one the protocol exercises.
                        let mut incoming = state.checkpoint.subset([]);
                        incoming.record(shard, result);
                        state.checkpoint.merge(&incoming)?;
                        coord.wake.notify_all();
                        // Serialize under the lock (memory-speed), but do
                        // the file write outside it so workers don't stall
                        // behind checkpoint IO.
                        persister
                            .map(|p| (p, state.merged_this_run as u64, state.checkpoint.to_bytes()))
                    };
                    if let Some((persister, version, bytes)) = to_persist {
                        persister.persist(version, &bytes)?;
                    }
                }
            }
        }
    })();

    // Whatever happened, account for this worker's fate.
    match result {
        Ok(()) => {
            let _ = child.wait();
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            state.workers[index].alive = false;
            Ok(())
        }
        Err(error) => {
            // The worker died or broke protocol: reclaim its in-flight
            // shards so surviving workers can run them, then reap it.
            let _ = child.kill();
            let _ = child.wait();
            let mut state = coord.state.lock().expect("coordinator state poisoned");
            for shard in in_flight {
                state.in_flight -= 1;
                if !state.checkpoint.has_shard(shard) {
                    state.queue.push_front(shard);
                    state.assigned_candidates = state
                        .assigned_candidates
                        .saturating_sub(shard_sizes[shard as usize]);
                }
            }
            state.workers[index].alive = false;
            // Wake any worker waiting for in-flight shards: either the
            // queue just grew, or this was the last in-flight holder.
            coord.wake.notify_all();
            Err(error)
        }
    }
}

/// Options for [`worker_main`].
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Chaos-test hook: exit with [`WORKER_CRASH_EXIT`] immediately before
    /// running workload `N` (counted across all assigned shards), i.e. die
    /// mid-shard. `None` disables the hook.
    pub die_after_workloads: Option<u64>,
}

/// The worker side of the protocol, speaking frames over this process's
/// stdin/stdout. Returns the process exit code; the caller (the
/// `b3-sweep-worker` binary or a `--worker`-mode coordinator) passes it to
/// [`std::process::exit`].
pub fn worker_main(options: WorkerOptions) -> i32 {
    match worker_loop(options) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("b3 sweep worker: {error}");
            1
        }
    }
}

fn worker_loop(options: WorkerOptions) -> FsResult<()> {
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();

    let job = match ToWorker::from_frame(&read_frame(&mut stdin)?)? {
        ToWorker::Job(job) => job,
        _ => {
            return Err(FsError::Corrupted(
                "worker expected a Job as its first message".into(),
            ))
        }
    };
    let spec = job.fs.spec(job.era);
    let monkey = CrashMonkey::with_config(spec.as_ref(), job.crashmonkey);
    let mut workloads_until_crash = options.die_after_workloads;

    loop {
        write_frame(&mut stdout, &FromWorker::Claim.to_frame())?;
        match ToWorker::from_frame(&read_frame(&mut stdin)?)? {
            ToWorker::Assign(shards) => {
                for shard in shards {
                    let result = run_shard(&monkey, &job.bounds, shard, job.num_shards, || {
                        if let Some(remaining) = &mut workloads_until_crash {
                            if *remaining == 0 {
                                // The chaos hook: die mid-shard, leaving
                                // the claimed shard unreported.
                                std::process::exit(WORKER_CRASH_EXIT);
                            }
                            *remaining -= 1;
                        }
                    });
                    write_frame(
                        &mut stdout,
                        &FromWorker::ShardDone { shard, result }.to_frame(),
                    )?;
                }
            }
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Job(_) => {
                return Err(FsError::Corrupted("unexpected second Job message".into()))
            }
        }
    }
}
