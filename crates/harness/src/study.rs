//! The crash-consistency bug study of §3.
//!
//! The paper analyzes the 26 unique crash-consistency bugs reported against
//! ext4, F2FS and btrfs in the five years before publication (two of which
//! occur on two file systems, for 28 bugs total), and summarizes them in
//! Table 1 by consequence, kernel version, file system, and the number of
//! core operations needed to reproduce them; Table 2 shows five examples.
//! This module carries that dataset and the aggregation code that
//! regenerates both tables.

use std::collections::BTreeMap;

use crate::report::Table;

/// The consequence categories used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StudyConsequence {
    /// File-system metadata corruption (missing files, broken directories).
    Corruption,
    /// Persisted data lost or inconsistent.
    DataInconsistency,
    /// The file system cannot be mounted.
    Unmountable,
}

impl StudyConsequence {
    /// Table 1's row label.
    pub fn label(&self) -> &'static str {
        match self {
            StudyConsequence::Corruption => "Corruption",
            StudyConsequence::DataInconsistency => "Data Inconsistency",
            StudyConsequence::Unmountable => "Un-mountable file system",
        }
    }
}

/// One reported bug in the study (one row of the per-bug dataset; a bug
/// reported on two file systems appears twice, as in the paper's count of
/// 28).
#[derive(Debug, Clone)]
pub struct StudyBug {
    /// Identifier matching the Appendix 9.1 workload number where
    /// applicable.
    pub id: u32,
    /// File system the bug was reported on.
    pub file_system: &'static str,
    /// Table 1 consequence category.
    pub consequence: StudyConsequence,
    /// Kernel version the bug was reported against (or latest version where
    /// it reproduces).
    pub kernel_version: &'static str,
    /// Number of core file-system operations required to reproduce.
    pub num_ops: u32,
}

/// The full study dataset: 28 bug reports (26 unique bugs).
pub fn study_bugs() -> Vec<StudyBug> {
    use StudyConsequence::{Corruption, DataInconsistency, Unmountable};
    let rows: [(u32, &'static str, StudyConsequence, &'static str, u32); 28] = [
        // The 24 unique bugs reproduced by CrashMonkey + ACE (Appendix 9.1),
        // plus the two cross-file-system duplicates, plus the two bugs that
        // could not be reproduced (ids 25 and 26).
        (1, "btrfs", Corruption, "4.4", 3),
        (1, "F2FS", Corruption, "4.4", 3), // duplicate of bug 1 on F2FS
        (2, "ext4", DataInconsistency, "4.15", 2),
        (2, "F2FS", DataInconsistency, "4.15", 2), // duplicate of bug 2 on F2FS
        (3, "btrfs", Unmountable, "3.12", 3),
        (4, "ext4", DataInconsistency, "4.15", 2),
        (5, "btrfs", Unmountable, "3.12", 3),
        (6, "btrfs", Corruption, "4.16", 1),
        (7, "btrfs", Corruption, "4.4", 3),
        (8, "btrfs", Corruption, "4.4", 2),
        (9, "btrfs", Corruption, "4.4", 3),
        (10, "btrfs", Corruption, "4.4", 1),
        (11, "btrfs", Corruption, "4.4", 2),
        (12, "btrfs", DataInconsistency, "4.4", 2),
        (13, "btrfs", Corruption, "4.1.1", 2),
        (14, "btrfs", DataInconsistency, "3.16", 2),
        (15, "btrfs", Corruption, "4.1.1", 2),
        (16, "btrfs", Corruption, "3.13", 2),
        (17, "btrfs", Corruption, "3.13", 2),
        (18, "btrfs", Corruption, "3.13", 1),
        (19, "btrfs", Corruption, "4.4", 3),
        (20, "btrfs", Corruption, "3.13", 2),
        (21, "btrfs", Corruption, "3.13", 2),
        (22, "btrfs", Corruption, "3.13", 2),
        (23, "btrfs", DataInconsistency, "3.13", 3),
        (24, "btrfs", Corruption, "3.13", 2),
        // Bugs 25 and 26: not reproducible within the B3 bounds (one needs
        // dropcaches during the workload, the other needs 3000 pre-existing
        // hard links); reported against kernel 3.13 / 3.12.
        (25, "btrfs", Unmountable, "3.13", 3),
        (26, "btrfs", Corruption, "3.12", 3),
    ];
    rows.into_iter()
        .map(
            |(id, file_system, consequence, kernel_version, num_ops)| StudyBug {
                id,
                file_system,
                consequence,
                kernel_version,
                num_ops,
            },
        )
        .collect()
}

/// Breakdown by consequence (first block of Table 1).
pub fn by_consequence() -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for bug in study_bugs() {
        *map.entry(bug.consequence.label()).or_insert(0) += 1;
    }
    map
}

/// Breakdown by kernel version (second block of Table 1).
pub fn by_kernel_version() -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for bug in study_bugs() {
        *map.entry(bug.kernel_version).or_insert(0) += 1;
    }
    map
}

/// Breakdown by file system (third block of Table 1).
pub fn by_file_system() -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for bug in study_bugs() {
        *map.entry(bug.file_system).or_insert(0) += 1;
    }
    map
}

/// Breakdown of *unique* bugs by the number of operations required (fourth
/// block of Table 1; unique bugs, so 26 total).
pub fn by_num_ops() -> BTreeMap<u32, usize> {
    let mut seen = std::collections::BTreeSet::new();
    let mut map = BTreeMap::new();
    for bug in study_bugs() {
        if seen.insert(bug.id) {
            *map.entry(bug.num_ops).or_insert(0) += 1;
        }
    }
    map
}

/// One row of Table 2 (example reported bugs).
pub struct ExampleBug {
    pub number: u32,
    pub file_system: &'static str,
    pub consequence: &'static str,
    pub num_ops: u32,
    pub ops: &'static str,
}

/// Table 2's five example bugs.
pub fn example_bugs() -> Vec<ExampleBug> {
    vec![
        ExampleBug {
            number: 1,
            file_system: "btrfs",
            consequence: "Directory un-removable",
            num_ops: 2,
            ops: "creat(A/x), creat(A/y)",
        },
        ExampleBug {
            number: 2,
            file_system: "btrfs",
            consequence: "Persisted data lost",
            num_ops: 2,
            ops: "pwrite(x), link(x,y)",
        },
        ExampleBug {
            number: 3,
            file_system: "btrfs",
            consequence: "Directory un-removable",
            num_ops: 3,
            ops: "link(x,A/x), link(x,A/y), unlink(A/y)",
        },
        ExampleBug {
            number: 4,
            file_system: "F2FS",
            consequence: "Persisted file disappears",
            num_ops: 3,
            ops: "pwrite(x), rename(x,y), pwrite(x)",
        },
        ExampleBug {
            number: 5,
            file_system: "ext4",
            consequence: "Persisted data lost",
            num_ops: 2,
            ops: "pwrite(x), direct write(x)",
        },
    ]
}

/// Renders Table 1 as four plain-text blocks.
pub fn render_table1() -> String {
    let mut out = String::new();
    let mut consequence = Table::new(vec!["Consequence", "# bugs"]);
    for (label, count) in by_consequence() {
        consequence.row(vec![label.to_string(), count.to_string()]);
    }
    consequence.row(vec!["Total".into(), study_bugs().len().to_string()]);
    out.push_str(&consequence.render());

    let mut version = Table::new(vec!["Kernel Version", "# bugs"]);
    let mut versions: Vec<(&str, usize)> = by_kernel_version().into_iter().collect();
    versions.sort_by_key(|(v, _)| {
        v.split('.')
            .map(|part| part.parse::<u32>().unwrap_or(0))
            .collect::<Vec<_>>()
    });
    for (label, count) in versions {
        version.row(vec![label.to_string(), count.to_string()]);
    }
    version.row(vec!["Total".into(), study_bugs().len().to_string()]);
    out.push('\n');
    out.push_str(&version.render());

    let mut fs = Table::new(vec!["File System", "# bugs"]);
    for (label, count) in by_file_system() {
        fs.row(vec![label.to_string(), count.to_string()]);
    }
    fs.row(vec!["Total".into(), study_bugs().len().to_string()]);
    out.push('\n');
    out.push_str(&fs.render());

    let mut ops = Table::new(vec!["# of ops required", "# bugs"]);
    let unique: usize = by_num_ops().values().sum();
    for (num, count) in by_num_ops() {
        ops.row(vec![num.to_string(), count.to_string()]);
    }
    ops.row(vec!["Total".into(), unique.to_string()]);
    out.push('\n');
    out.push_str(&ops.render());
    out
}

/// Renders Table 2.
pub fn render_table2() -> String {
    let mut table = Table::new(vec![
        "Bug #",
        "File System",
        "Consequence",
        "# of ops",
        "ops involved",
    ]);
    for bug in example_bugs() {
        table.row(vec![
            bug.number.to_string(),
            bug.file_system.to_string(),
            bug.consequence.to_string(),
            bug.num_ops.to_string(),
            bug.ops.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        assert_eq!(
            study_bugs().len(),
            28,
            "28 bugs including cross-FS duplicates"
        );
        let unique: usize = by_num_ops().values().sum();
        assert_eq!(unique, 26, "26 unique bugs");
    }

    #[test]
    fn consequence_breakdown_matches_table1() {
        let map = by_consequence();
        assert_eq!(map["Corruption"], 19);
        assert_eq!(map["Data Inconsistency"], 6);
        assert_eq!(map["Un-mountable file system"], 3);
    }

    #[test]
    fn file_system_breakdown_matches_table1() {
        let map = by_file_system();
        assert_eq!(map["btrfs"], 24);
        assert_eq!(map["ext4"], 2);
        assert_eq!(map["F2FS"], 2);
    }

    #[test]
    fn kernel_version_breakdown_matches_table1() {
        let map = by_kernel_version();
        assert_eq!(map["3.12"], 3);
        assert_eq!(map["3.13"], 9);
        assert_eq!(map["3.16"], 1);
        assert_eq!(map["4.1.1"], 2);
        assert_eq!(map["4.4"], 9);
        assert_eq!(map["4.15"], 3);
        assert_eq!(map["4.16"], 1);
    }

    #[test]
    fn num_ops_breakdown_matches_table1() {
        let map = by_num_ops();
        assert_eq!(map[&1], 3);
        assert_eq!(map[&2], 14);
        assert_eq!(map[&3], 9);
    }

    #[test]
    fn tables_render_without_panicking() {
        let table1 = render_table1();
        assert!(table1.contains("Corruption"));
        assert!(table1.contains("4.16"));
        let table2 = render_table2();
        assert!(table2.contains("pwrite(x), link(x,y)"));
        assert_eq!(example_bugs().len(), 5);
    }
}
