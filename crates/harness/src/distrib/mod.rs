//! Distributed sweep fan-out: a coordinator/worker protocol over the
//! sharded sweep engine, generalized over pluggable worker transports.
//!
//! The paper fanned its 3.37M workloads out to 780 VMs on a 65-node cluster
//! (§6.1); [`crate::sweep`] is the in-process analogue, and this module is
//! the multi-process *and* multi-machine one. A coordinator owns the shard
//! queue and the checkpoint file; workers speak a tiny length-prefixed,
//! codec-serialized protocol ([`protocol`], specified in
//! `docs/PROTOCOL.md`) over whatever byte pipe a [`Transport`] provides —
//! a child's stdio ([`ChildTransport`]), an inbound TCP connection
//! ([`TcpTransport`], workers dial in with `b3-sweep-worker --connect`),
//! or an ssh session ([`SshTransport`], the remote worker's stdio *is* the
//! pipe):
//!
//! ```text
//!  coordinator                               worker (any transport)
//!  ───────────                               ──────────────────────
//!  connect ────────────────────────────────▶ start (+ calibration burst)
//!  [auth links: Challenge { nonce } ──────▶  compute HMAC answer]
//!                    ◀ Hello { version, calibrated rate, auth }
//!  (version + challenge answer checked;
//!   batches sized by the observed-throughput
//!   EWMA, seeded by the calibrated rate)
//!  Job { job, fingerprint } ───────────────▶ recompute fingerprint; on
//!                                            mismatch: Reject + exit
//!                                          ◀ Claim
//!  Assign { shard indices } ───────────────▶ run each shard via the
//!                                            sweep engine's shard runner
//!                          ◀ ShardDone { shard, result }   (per shard)
//!                                          ◀ Claim
//!  …until the queue drains, then…
//!  Shutdown ───────────────────────────────▶ exit 0
//! ```
//!
//! A `ShardDone` frame carries the shard's **grouped** result — per-bug-group
//! exemplars and counts ([`crate::dedup::GroupTable`]), not every raw
//! report — so frame size, coordinator memory, and checkpoint size are all
//! bounded by bug diversity rather than bug density. Every frame is merged
//! into the coordinator's [`SweepCheckpoint`] (via [`SweepCheckpoint::merge`]
//! — union of completed shards) and durably appended to the checkpoint
//! file as one small fsync'd *delta record* (see [`segment`], specified in
//! `docs/FORMATS.md`); the file is an append-only segment log, compacted to
//! a fresh snapshot atomically when the run starts and whenever the deltas
//! outgrow the last snapshot — never rewritten in full per merge.
//!
//! **Worker death is survivable at every layer.** Killing the coordinator
//! loses at most the shards that were in flight (a torn trailing record is
//! ignored on load): the next run replays the file, re-queues exactly the
//! missing shards, and converges to the same counts as an uninterrupted
//! single-process sweep. Killing a *worker* re-queues its in-flight shards
//! and — when [`DistribConfig::respawn_budget`] allows — asks the transport
//! for a replacement link (a fresh child, a fresh inbound connection, a
//! fresh ssh session), so a fleet of perpetually crashing workers still
//! drives the sweep to completion (`tests/distrib.rs` proves the
//! differential, chaos, and respawn directions).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_app::{EngineProfile, TxnBounds};
use b3_crashmonkey::{CrashMonkeyConfig, CrashPointPolicy};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::KernelEra;

use crate::corpus::FsKind;
use crate::runner::RunSummary;
use crate::sweep::{Progress, PruneMode, SweepCheckpoint, WorkerThroughput};

pub mod auth;
pub mod fleet;
pub mod protocol;
pub mod segment;
mod transport;
mod worker;

pub use fleet::{
    inspect_queue, ClientRequest, DaemonReply, FleetClient, FleetConfig, FleetCoordinator,
    FleetEvent, FleetSubscription, JobState, JobStatus,
};
pub use protocol::{Hello, PROTOCOL_VERSION};
pub use segment::{load_checkpoint, save_checkpoint, segment_stats, SegmentStats};
pub use transport::{
    ChildTransport, SshTransport, TcpTransport, Transport, WorkerCommand, WorkerLink,
};
pub use worker::{
    worker_connect, worker_main, WorkerOptions, DEFAULT_CALIBRATION_WORKLOADS, WORKER_CRASH_EXIT,
};

use crate::dedup::GroupKey;
use crate::postprocess::BugGroup;
use protocol::{validate_hello, FromWorker, ToWorker};
use segment::Persister;

/// Which bounded space a [`SweepJob`] sweeps: ACE's file-system operation
/// space, or the application-level transaction space crash-tested through
/// the reference WAL/KV engine (`b3_app`). Either way the unit of work is
/// a shard and the unit of result is a [`crate::sweep::ShardResult`], so
/// everything downstream of the generator — claim/assign frames,
/// checkpoint merging, the fleet queue — is space-agnostic.
#[derive(Debug, Clone)]
pub enum SweepSpace {
    /// ACE's bounded file-system operation space.
    Fs(Bounds),
    /// The bounded transaction space, run through the `b3_app` WAL/KV
    /// engine on top of the job's file system.
    App {
        /// The bounded transaction space.
        bounds: TxnBounds,
        /// Which seeded engine bugs are switched on (participates in the
        /// job scope: buggy- and fixed-engine sweeps never share
        /// checkpoints).
        engine: EngineProfile,
    },
}

/// Everything a worker needs to reproduce its slice of the sweep: which
/// simulated file system (and kernel era) to test, the exact bounded
/// space, the shard split, and the CrashMonkey configuration.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The simulated file system under test.
    pub fs: FsKind,
    /// The kernel era the file system simulates.
    pub era: KernelEra,
    /// The bounded workload space (file-system ops or app transactions).
    pub space: SweepSpace,
    /// How many shards the space is split into.
    pub num_shards: usize,
    /// CrashMonkey configuration every worker uses.
    pub crashmonkey: CrashMonkeyConfig,
    /// How equivalent candidates are pruned (see
    /// [`crate::sweep::PruneMode`]). Participates in [`SweepJob::scope`] —
    /// and therefore the fingerprint echo — so a coordinator and worker
    /// that disagree on the canonicalization version reject each other
    /// instead of pruning different candidates.
    pub prune: PruneMode,
}

impl SweepJob {
    /// A job over the given file-system operation space with the paper's
    /// evaluation-era defaults (CowFs at 4.16, small CrashMonkey device).
    pub fn new(bounds: Bounds, num_shards: usize) -> SweepJob {
        SweepJob::with_space(SweepSpace::Fs(bounds), num_shards)
    }

    /// A job over the given application transaction space, crash-testing
    /// the `b3_app` WAL/KV engine (with the given seeded-bug profile) on
    /// the job's file system. Same defaults as [`SweepJob::new`].
    pub fn new_app(bounds: TxnBounds, engine: EngineProfile, num_shards: usize) -> SweepJob {
        SweepJob::with_space(SweepSpace::App { bounds, engine }, num_shards)
    }

    fn with_space(space: SweepSpace, num_shards: usize) -> SweepJob {
        SweepJob {
            fs: FsKind::Cow,
            era: KernelEra::EVALUATION,
            space,
            num_shards,
            crashmonkey: CrashMonkeyConfig::small(),
            prune: PruneMode::Off,
        }
    }

    /// The file-system bounds, when this is a [`SweepSpace::Fs`] job.
    pub fn fs_bounds(&self) -> Option<&Bounds> {
        match &self.space {
            SweepSpace::Fs(bounds) => Some(bounds),
            SweepSpace::App { .. } => None,
        }
    }

    /// Exact (app) or estimated (fs) number of candidate workloads in the
    /// whole space.
    pub fn total_candidates(&self) -> u64 {
        match &self.space {
            SweepSpace::Fs(bounds) => WorkloadGenerator::estimate_candidates(bounds),
            SweepSpace::App { bounds, .. } => bounds.candidates(),
        }
    }

    /// Number of candidate workloads in shard `index` of this job's split.
    pub fn shard_candidates(&self, index: usize) -> u64 {
        match &self.space {
            SweepSpace::Fs(bounds) => bounds.shard(index, self.num_shards).candidates(),
            SweepSpace::App { bounds, .. } => bounds.shard(index, self.num_shards).candidates(),
        }
    }

    /// The execution context this job's checkpoints are scoped to: the file
    /// system, kernel era, CrashMonkey configuration, and (when pruning is
    /// on) the prune mode + canonicalization version. Two jobs over
    /// identical bounds but different contexts produce different shard
    /// results, so their checkpoints must never resume or merge into each
    /// other.
    pub fn scope(&self) -> String {
        let cm = &self.crashmonkey;
        // Crash-point code: 0 = last-only, 1 = all, 2 = all-triaged (with
        // the audit budget appended when non-zero). The 0/1 spellings
        // predate triage, so existing scopes are unchanged.
        let cp = match cm.crash_points {
            CrashPointPolicy::LastOnly => "0".to_string(),
            CrashPointPolicy::All => "1".to_string(),
            CrashPointPolicy::AllTriaged { audit: 0 } => "2".to_string(),
            CrashPointPolicy::AllTriaged { audit } => format!("2a{audit}"),
        };
        let mut scope = format!(
            "{}@{}/blk{}/cp{}{}{}",
            self.fs.paper_name(),
            self.era.as_str(),
            cm.device_blocks,
            cp,
            u8::from(cm.direct_write_is_persistence_point),
            u8::from(cm.model_kernel_delays),
        );
        // App jobs drive the WAL/KV engine on top of the file system, and
        // the engine's seeded-bug profile changes every shard result — so
        // it scopes the checkpoint exactly like the file system itself.
        if let SweepSpace::App { engine, .. } = &self.space {
            scope.push_str(&format!("/app:{}", engine.describe()));
        }
        let canon = self.prune.scope_component();
        if !canon.is_empty() {
            scope.push('/');
            scope.push_str(&canon);
        }
        scope
    }

    /// An empty checkpoint for this job's (space, shard count, context)
    /// triple.
    pub fn empty_checkpoint(&self) -> SweepCheckpoint {
        match &self.space {
            SweepSpace::Fs(bounds) => {
                SweepCheckpoint::scoped(bounds, self.num_shards, &self.scope())
            }
            SweepSpace::App { bounds, .. } => {
                SweepCheckpoint::scoped_app(bounds, self.num_shards, &self.scope())
            }
        }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.fs.paper_name());
        enc.put_str(self.era.as_str());
        // Protocol v6: a kind byte selects the swept space.
        match &self.space {
            SweepSpace::Fs(bounds) => {
                enc.put_u8(protocol::wire::SPACE_FS);
                bounds.encode(enc);
            }
            SweepSpace::App { bounds, engine } => {
                enc.put_u8(protocol::wire::SPACE_APP);
                bounds.encode(enc);
                enc.put_u8(engine.bits());
            }
        }
        enc.put_u64(self.num_shards as u64);
        enc.put_u64(self.crashmonkey.device_blocks);
        // Protocol v5: a one-byte policy code plus the triage audit budget
        // (v4 sent a single `All` bool here).
        let (cp_code, cp_audit) = match self.crashmonkey.crash_points {
            CrashPointPolicy::LastOnly => (0u8, 0u32),
            CrashPointPolicy::All => (1, 0),
            CrashPointPolicy::AllTriaged { audit } => (2, audit),
        };
        enc.put_u8(cp_code);
        enc.put_u32(cp_audit);
        enc.put_bool(self.crashmonkey.direct_write_is_persistence_point);
        enc.put_bool(self.crashmonkey.model_kernel_delays);
        self.prune.encode(enc);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> FsResult<SweepJob> {
        let fs_name = dec.get_str()?;
        let fs = FsKind::parse(&fs_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown file system {fs_name:?}")))?;
        let era_name = dec.get_str()?;
        let era = KernelEra::parse(&era_name)
            .ok_or_else(|| FsError::Corrupted(format!("unknown kernel era {era_name:?}")))?;
        let space = match dec.get_u8()? {
            protocol::wire::SPACE_FS => SweepSpace::Fs(Bounds::decode(dec)?),
            protocol::wire::SPACE_APP => {
                let bounds = TxnBounds::decode(dec)?;
                let engine = EngineProfile::from_bits(dec.get_u8()?)?;
                SweepSpace::App { bounds, engine }
            }
            other => {
                return Err(FsError::Corrupted(format!(
                    "unknown sweep-space kind {other:#x}"
                )))
            }
        };
        let num_shards = dec.get_u64()? as usize;
        let device_blocks = dec.get_u64()?;
        let cp_code = dec.get_u8()?;
        let cp_audit = dec.get_u32()?;
        let crash_points = match cp_code {
            0 => CrashPointPolicy::LastOnly,
            1 => CrashPointPolicy::All,
            2 => CrashPointPolicy::AllTriaged { audit: cp_audit },
            other => {
                return Err(FsError::Corrupted(format!(
                    "unknown crash-point policy code {other}"
                )))
            }
        };
        let crashmonkey = CrashMonkeyConfig {
            device_blocks,
            crash_points,
            direct_write_is_persistence_point: dec.get_bool()?,
            model_kernel_delays: dec.get_bool()?,
            // Recovery mode is outcome-neutral by construction (see
            // [`b3_crashmonkey::RecoveryMode`]) so it is not part of the
            // wire format; every worker uses its own default.
            recovery: Default::default(),
        };
        let prune = PruneMode::decode(dec)?;
        Ok(SweepJob {
            fs,
            era,
            space,
            num_shards,
            crashmonkey,
            prune,
        })
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct DistribConfig {
    /// Number of worker slots to serve. Each slot asks the transport for
    /// one link (plus one per respawn).
    pub workers: usize,
    /// Shards handed out per assignment when capability-based sizing is
    /// off (or the worker reported no calibrated rate). One is the safest
    /// (losing a worker loses at most one in-flight shard); larger batches
    /// amortize protocol round-trips when shards are tiny.
    pub assign_batch: usize,
    /// When set, each worker's batches are sized so one batch is roughly
    /// this much work at the worker's *effective* rate — an EWMA of the
    /// throughput actually observed across its `ShardDone` frames, seeded
    /// by the rate its [`Hello`] reported — so a fast host gets more shards
    /// per round-trip instead of being drip-fed, and a host that slows
    /// down (or warms up) after calibration converges to batches matching
    /// what it really delivers. Clamped to [`assign_batch`,
    /// [`max_batch`]]. Workers with no calibration *and* no observed
    /// throughput yet fall back to [`assign_batch`].
    ///
    /// [`assign_batch`]: DistribConfig::assign_batch
    /// [`max_batch`]: DistribConfig::max_batch
    pub batch_target: Option<Duration>,
    /// Upper bound on capability-sized batches (bounds the work lost when
    /// a fast worker dies mid-batch). Must be at least
    /// [`assign_batch`](DistribConfig::assign_batch); a config with
    /// `assign_batch > max_batch` is rejected by
    /// [`DistribConfig::validate`] (which every coordinator entry point
    /// calls) rather than silently exceeding this bound.
    pub max_batch: usize,
    /// How many replacement links a dead worker slot may establish: the
    /// dead link's in-flight shards are re-queued and the transport is
    /// asked for a fresh link (a new child, a new inbound TCP connection,
    /// a new ssh session). `0` (the default) keeps the PR 3 behavior — a
    /// dead worker just shrinks the fleet. Version-mismatch and `Reject`
    /// failures are never respawned (a replacement of the same binary
    /// would fail the same way).
    pub respawn_budget: usize,
    /// Stop handing out work after this many shards have been merged *in
    /// this run* (the chaos tests' stand-in for killing the coordinator
    /// after a partial merge).
    pub stop_after_shards: Option<usize>,
    /// Stop handing out work once this many workloads have been processed
    /// in this run. Shards are the scheduling unit, so the run overshoots
    /// to the end of in-flight shards.
    pub stop_after_workloads: Option<usize>,
    /// Where the merged checkpoint is persisted: a segment log that gets
    /// one durably-appended delta record per merged shard and is compacted
    /// at run start and when the deltas outgrow the last snapshot. `None`
    /// keeps the checkpoint in memory only.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the progress callback fires.
    pub progress_interval: Duration,
}

impl Default for DistribConfig {
    fn default() -> Self {
        DistribConfig {
            workers: 4,
            assign_batch: 1,
            batch_target: None,
            max_batch: 64,
            respawn_budget: 0,
            stop_after_shards: None,
            stop_after_workloads: None,
            checkpoint_path: None,
            progress_interval: Duration::from_secs(1),
        }
    }
}

impl DistribConfig {
    /// Rejects configurations the scheduler cannot honor. Today that is
    /// one rule: `assign_batch` (the batch floor) must not exceed
    /// `max_batch` (the documented upper bound on work lost to a dying
    /// worker) — the old behavior silently raised the cap to the floor,
    /// which let a config that *looked* bounded hand out oversized
    /// batches. Called by every coordinator entry point.
    pub fn validate(&self) -> FsResult<()> {
        if self.max_batch == 0 {
            return Err(FsError::InvalidArgument(
                "max_batch must be at least 1 (it caps every assignment batch)".into(),
            ));
        }
        if self.assign_batch > self.max_batch {
            return Err(FsError::InvalidArgument(format!(
                "assign_batch ({}) exceeds max_batch ({}): the batch floor cannot be \
                 above the documented per-assignment cap",
                self.assign_batch, self.max_batch
            )));
        }
        Ok(())
    }
}

/// What a coordinator run produced.
#[derive(Debug)]
pub struct DistribOutcome {
    /// Aggregate counts of *all* completed shards (including ones restored
    /// from the checkpoint file), in shard order — identical to a
    /// single-process sweep's summary once complete.
    pub summary: RunSummary,
    /// The merged checkpoint (also persisted to the checkpoint file, when
    /// one is configured).
    pub checkpoint: SweepCheckpoint,
    /// Shards that were already in the checkpoint when this run started.
    pub resumed_shards: usize,
    /// Workloads processed (tested + skipped) by *this* run, excluding
    /// work restored from the checkpoint.
    pub processed_this_run: usize,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
    /// Worker slots that gave up (exited or broke the protocol with no
    /// respawn budget left) before shutdown.
    pub failed_workers: usize,
    /// Replacement links established after worker deaths, across all
    /// slots. A slot that respawned and then finished cleanly counts here
    /// but not in `failed_workers`.
    pub respawns: usize,
}

impl DistribOutcome {
    /// True once every shard of the space is recorded.
    pub fn is_complete(&self) -> bool {
        self.checkpoint.is_complete()
    }

    /// Workloads per second of wall-clock time achieved by this run (not
    /// counting checkpointed work from previous runs).
    pub fn throughput_this_run(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.processed_this_run as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Shared coordinator state plus the condition variable idle worker
/// threads wait on when the queue is empty but other workers still have
/// shards in flight (a dying worker may hand its shards back).
struct Coord {
    state: Mutex<CoordState>,
    /// Notified whenever the queue or the in-flight set changes, or when
    /// the coordinator starts stopping.
    wake: Condvar,
}

/// The coordinator's mutable state: the shard queue, the merged
/// checkpoint, and per-worker telemetry. One mutex guards it all —
/// traffic is one message per completed shard, so contention is
/// negligible.
struct CoordState {
    queue: VecDeque<u32>,
    /// Shards assigned to some worker whose results are not merged yet.
    in_flight: usize,
    checkpoint: SweepCheckpoint,
    /// Running totals mirroring the checkpoint (kept incrementally so the
    /// progress monitor does not re-aggregate every tick).
    tested: usize,
    skipped: usize,
    pruned: usize,
    buggy: usize,
    merged_this_run: usize,
    processed_this_run: usize,
    /// Candidates covered by every shard assigned this run (in flight or
    /// done). A workload budget gates *assignment* on this estimate, not on
    /// merged results — otherwise claims granted while the first shards are
    /// still in flight overshoot the budget by workers × shard size.
    assigned_candidates: u64,
    stopping: bool,
    workers: Vec<WorkerTelemetry>,
    failed_workers: usize,
    respawns: usize,
    /// Bug-group keys already merged (restored from the checkpoint at
    /// startup, grown per merge): the discovery hook fires exactly when a
    /// key first enters this set during the run.
    seen_groups: std::collections::BTreeSet<GroupKey>,
}

/// Weight of the newest throughput sample in the observed-rate EWMA: high
/// enough that a host that slows down re-sizes its batches within a few
/// shards, low enough that one outlier shard does not whipsaw the batch
/// size.
const OBSERVED_RATE_ALPHA: f64 = 0.3;

struct WorkerTelemetry {
    /// Transport endpoint of the slot's current link (`child:<pid>`,
    /// `host:port`, `ssh:<host>#<pid>`); empty until the first handshake.
    /// Kept across link death (progress output still names the machine
    /// the dead slot last ran on) — only the rates are cleared.
    endpoint: String,
    /// Calibrated throughput from the current link's `Hello`, if it
    /// calibrated. Only the sizing *seed*: observed throughput supersedes
    /// it as `ShardDone` frames arrive.
    reported_rate: Option<f64>,
    /// EWMA of the throughput actually observed across this link's
    /// `ShardDone` frames (workloads processed / time since the previous
    /// frame on this link).
    observed_rate: Option<f64>,
    /// When this link's last `ShardDone` (or its `Hello`) landed — the
    /// denominator baseline for the next observed-rate sample.
    last_activity: Option<Instant>,
    tested: u64,
    shards: u64,
    respawns: u64,
    alive: bool,
}

impl WorkerTelemetry {
    /// A slot that has not completed a handshake yet.
    fn idle() -> WorkerTelemetry {
        WorkerTelemetry {
            endpoint: String::new(),
            reported_rate: None,
            observed_rate: None,
            last_activity: None,
            tested: 0,
            shards: 0,
            respawns: 0,
            alive: true,
        }
    }

    /// The rate batch sizing uses: observed throughput once any exists
    /// (it reflects *this job's* per-workload cost), else the calibration
    /// the worker reported.
    fn effective_rate(&self) -> Option<f64> {
        self.observed_rate.or(self.reported_rate)
    }

    /// A fresh link completed its handshake on this slot.
    fn handshake(&mut self, endpoint: &str, hello: &Hello, now: Instant) {
        self.endpoint = endpoint.to_string();
        self.reported_rate = (hello.calibrated_rate > 0.0).then_some(hello.calibrated_rate);
        self.observed_rate = None;
        self.last_activity = Some(now);
        self.alive = true;
    }

    /// Folds one `ShardDone` into the observed-rate EWMA: `processed`
    /// workloads landed `now`, so the sample is workloads per second since
    /// the link's previous activity.
    fn observe(&mut self, processed: u64, now: Instant) {
        if let Some(last) = self.last_activity {
            let dt = now.duration_since(last).as_secs_f64();
            if dt > 0.0 && processed > 0 {
                let sample = processed as f64 / dt;
                self.observed_rate = Some(match self.observed_rate {
                    Some(previous) => {
                        OBSERVED_RATE_ALPHA * sample + (1.0 - OBSERVED_RATE_ALPHA) * previous
                    }
                    None => sample,
                });
            }
        }
        self.last_activity = Some(now);
    }

    /// The slot's link is gone (died, broke protocol, or wound down).
    /// Clears liveness *and* both rates immediately — a replacement link
    /// must never inherit the dead link's throughput for its first
    /// batches, and progress output must never attribute a live rate to a
    /// dead endpoint. The endpoint string stays for attribution.
    fn mark_dead(&mut self) {
        self.alive = false;
        self.reported_rate = None;
        self.observed_rate = None;
        self.last_activity = None;
    }
}

impl CoordState {
    fn should_stop(&self, config: &DistribConfig) -> bool {
        config
            .stop_after_shards
            .is_some_and(|limit| self.merged_this_run >= limit)
            || config.stop_after_workloads.is_some_and(|limit| {
                self.processed_this_run >= limit || self.assigned_candidates >= limit as u64
            })
    }

    /// True when a fresh link would have nothing to do: the run is
    /// stopping, or the queue is empty with nothing in flight that could
    /// flow back to it.
    fn no_work_left(&self, config: &DistribConfig) -> bool {
        self.stopping || self.should_stop(config) || (self.queue.is_empty() && self.in_flight == 0)
    }

    fn progress(&self, started: Instant, total_workloads: u64, seeded_shards: usize) -> Progress {
        let elapsed = started.elapsed();
        let completed = self.checkpoint.completed_shards();
        let total_shards = self.checkpoint.num_shards();
        let done_this_run = completed.saturating_sub(seeded_shards);
        let remaining = total_shards.saturating_sub(completed);
        let eta = (done_this_run > 0 && remaining > 0 && !self.stopping)
            .then(|| elapsed.mul_f64(remaining as f64 / done_this_run as f64));
        Progress {
            tested: self.tested,
            skipped: self.skipped,
            pruned: self.pruned,
            bugs: self.buggy,
            completed_shards: completed,
            total_shards,
            total_workloads: Some(total_workloads),
            elapsed,
            eta,
            per_worker: self
                .workers
                .iter()
                .enumerate()
                .map(|(index, w)| WorkerThroughput {
                    worker: index,
                    endpoint: w.endpoint.clone(),
                    tested: w.tested,
                    shards: w.shards,
                    throughput: (w.alive && !elapsed.is_zero())
                        .then(|| w.tested as f64 / elapsed.as_secs_f64()),
                    // `mark_dead` cleared both rates with the link, so a
                    // dead slot can never report a stale sizing rate here.
                    rate: w.effective_rate(),
                })
                .collect(),
        }
    }
}

/// Sizes one assignment batch for a worker: `assign_batch` when capability
/// sizing is off or the worker has no effective rate yet; otherwise enough
/// shards that the batch is roughly `batch_target` of work at the given
/// rate (the observed EWMA once one exists, else the `Hello` calibration),
/// clamped to `[assign_batch, max_batch]`. [`DistribConfig::validate`]
/// guarantees the clamp range is well-formed, so `max_batch` is a hard
/// cap — never silently raised to the floor.
fn sized_batch(config: &DistribConfig, rate: Option<f64>, avg_shard_workloads: f64) -> usize {
    let base = config.assign_batch.max(1).min(config.max_batch);
    let (Some(target), Some(rate)) = (config.batch_target, rate) else {
        return base;
    };
    if rate <= 0.0 || avg_shard_workloads <= 0.0 {
        return base;
    }
    let sized = (rate * target.as_secs_f64() / avg_shard_workloads) as usize;
    sized.clamp(base, config.max_batch)
}

/// Runs (or resumes) a distributed sweep over stdio worker child
/// processes — the transport-pinned convenience wrapper around
/// [`run_with_transport`] that PR 3 callers use.
pub fn run_distributed(
    job: &SweepJob,
    config: &DistribConfig,
    worker: &WorkerCommand,
    progress: Option<&(dyn Fn(&Progress) + Sync)>,
) -> FsResult<DistribOutcome> {
    run_with_transport(job, config, &ChildTransport::new(worker.clone()), progress)
}

/// Observation and control hooks for [`run_with_transport_hooked`] — what
/// the fleet daemon plugs into a job run. All hooks are optional; the
/// no-hook default is exactly [`run_with_transport`].
#[derive(Default)]
pub struct DistribHooks<'a> {
    /// Fired every [`DistribConfig::progress_interval`] with a state
    /// snapshot (and once more when the run ends).
    pub progress: Option<&'a (dyn Fn(&Progress) + Sync)>,
    /// Fired once per bug group the first time it is merged into the
    /// checkpoint *in this run* (groups restored from the checkpoint file
    /// do not re-fire) — the fleet daemon's live discovery stream.
    pub on_discovery: Option<&'a (dyn Fn(&BugGroup) + Sync)>,
    /// Polled at every claim; returning `true` stops handing out work, as
    /// if a stop budget had been reached — in-flight shards still finish
    /// and persist, so the run winds down to a cleanly resumable
    /// checkpoint. The fleet daemon uses this for graceful shutdown with
    /// a job mid-flight.
    pub should_stop: Option<&'a (dyn Fn() -> bool + Sync)>,
}

/// Runs (or resumes) a distributed sweep over any [`Transport`]: serves
/// `config.workers` worker slots, feeds each link shards (batch-sized by
/// its calibrated throughput when [`DistribConfig::batch_target`] is set),
/// merges every returned grouped per-shard result into the checkpoint, and
/// durably appends each merge to the checkpoint file as one delta record
/// (compacting the file when the deltas outgrow the last snapshot — never
/// a full rewrite per shard).
///
/// When `config.checkpoint_path` names an existing file, the sweep resumes
/// from it; a checkpoint recorded for a different sweep — other bounds,
/// shard count, file system, kernel era, or CrashMonkey configuration
/// ([`SweepJob::scope`]) — is rejected with an error rather than silently
/// combined. Worker death is tolerated: the dead link's in-flight shards
/// go back on the queue, and the slot asks the transport for a
/// replacement link while [`DistribConfig::respawn_budget`] lasts. If a
/// slot gives up, surviving slots absorb its work; if *every* slot gives
/// up the coordinator returns an incomplete (but persisted) checkpoint the
/// next run picks up.
pub fn run_with_transport(
    job: &SweepJob,
    config: &DistribConfig,
    transport: &dyn Transport,
    progress: Option<&(dyn Fn(&Progress) + Sync)>,
) -> FsResult<DistribOutcome> {
    run_with_transport_hooked(
        job,
        config,
        transport,
        DistribHooks {
            progress,
            ..DistribHooks::default()
        },
    )
}

/// [`run_with_transport`] with the full [`DistribHooks`] surface: live
/// bug-group discovery streaming and cooperative stop, in addition to the
/// progress callback. This is the entry point the fleet daemon
/// ([`fleet::FleetCoordinator`]) schedules queued jobs through.
pub fn run_with_transport_hooked(
    job: &SweepJob,
    config: &DistribConfig,
    transport: &dyn Transport,
    hooks: DistribHooks<'_>,
) -> FsResult<DistribOutcome> {
    config.validate()?;
    if matches!(job.space, SweepSpace::App { .. }) && !job.prune.is_off() {
        return Err(FsError::InvalidArgument(
            "app sweeps have no canonicalization: prune must be off".into(),
        ));
    }
    let progress = hooks.progress;
    let started = Instant::now();
    let checkpoint = match &config.checkpoint_path {
        Some(path) => match load_checkpoint(path)? {
            Some(existing) => {
                // The scope covers the file system, era, and CrashMonkey
                // configuration: a checkpoint recorded under any other
                // execution context (not just other bounds) is rejected.
                if existing.fingerprint() != job.empty_checkpoint().fingerprint() {
                    return Err(FsError::InvalidArgument(format!(
                        "checkpoint {} was recorded for a different sweep \
                         (its fingerprint: {})",
                        path.display(),
                        existing.fingerprint()
                    )));
                }
                existing
            }
            None => job.empty_checkpoint(),
        },
        None => job.empty_checkpoint(),
    };
    let seeded_shards = checkpoint.completed_shards();
    let seeded = checkpoint.summary();
    let total_workloads = job.total_candidates();
    // Open the persister only after the loaded checkpoint was validated:
    // opening compacts (rewrites) the file, and a mismatched checkpoint
    // must be rejected untouched.
    let persister = match &config.checkpoint_path {
        Some(path) => Some(Persister::open(path, &checkpoint)?),
        None => None,
    };

    // Groups already in the (resumed) checkpoint are not re-discovered:
    // the discovery hook only fires for groups first merged in this run.
    let seen_groups: std::collections::BTreeSet<GroupKey> = checkpoint
        .grouped()
        .entries()
        .map(|(key, _)| key.clone())
        .collect();
    let coord = Coord {
        state: Mutex::new(CoordState {
            queue: checkpoint.missing_shards().into(),
            in_flight: 0,
            tested: seeded.tested,
            skipped: seeded.skipped,
            pruned: seeded.pruned,
            buggy: checkpoint.total_buggy() as usize,
            checkpoint,
            merged_this_run: 0,
            processed_this_run: 0,
            assigned_candidates: 0,
            stopping: false,
            workers: (0..config.workers.max(1))
                .map(|_| WorkerTelemetry::idle())
                .collect(),
            failed_workers: 0,
            respawns: 0,
            seen_groups,
        }),
        wake: Condvar::new(),
    };
    let done = AtomicBool::new(false);

    let job_frame = ToWorker::Job {
        job: Box::new(job.clone()),
        fingerprint: job.empty_checkpoint().fingerprint().to_string(),
    }
    .to_frame();
    let workers_to_spawn = config.workers.max(1);
    let shard_sizes: Vec<u64> = (0..job.num_shards)
        .map(|index| job.shard_candidates(index))
        .collect();
    let avg_shard_workloads = if job.num_shards > 0 {
        total_workloads as f64 / job.num_shards as f64
    } else {
        0.0
    };
    let slot_context = SlotContext {
        job_frame: &job_frame,
        shard_sizes: &shard_sizes,
        avg_shard_workloads,
        coord: &coord,
        persister: persister.as_ref(),
        config,
        transport,
        on_discovery: hooks.on_discovery,
        should_stop: hooks.should_stop,
    };

    std::thread::scope(|scope| -> FsResult<()> {
        if let Some(callback) = progress {
            let coord = &coord;
            let done = &done;
            let interval = config.progress_interval;
            scope.spawn(move || {
                let mut last_fired = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last_fired.elapsed() >= interval {
                        let snapshot = coord
                            .state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .progress(started, total_workloads, seeded_shards);
                        callback(&snapshot);
                        last_fired = Instant::now();
                    }
                }
                let snapshot = coord
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .progress(started, total_workloads, seeded_shards);
                callback(&snapshot);
            });
        }

        let handles: Vec<_> = (0..workers_to_spawn)
            .map(|index| {
                let slot_context = &slot_context;
                scope.spawn(move || serve_slot(index, slot_context))
            })
            .collect();
        let mut first_error = None;
        for handle in handles {
            let result = match handle.join() {
                Ok(result) => result,
                // A panicking worker thread is a harness bug; surface the
                // original panic instead of a generic message.
                Err(panic) => std::panic::resume_unwind(panic),
            };
            if let Err(error) = result {
                let mut state = coord
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state.failed_workers += 1;
                first_error.get_or_insert(error);
            }
        }
        done.store(true, Ordering::Relaxed);
        // A worker failure is only fatal when it left work unfinished AND
        // unpersisted progress — shards it completed are already merged, so
        // surviving workers usually absorb the loss. Report the error only
        // if the sweep neither completed nor was asked to stop early.
        let state = coord
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(error) = first_error {
            if !state.checkpoint.is_complete() && !state.should_stop(config) {
                drop(state);
                return Err(error);
            }
        }
        Ok(())
    })?;

    let state = coord
        .state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // No final rewrite: every merged shard is already on disk as a delta
    // record (the same state a killed coordinator leaves behind); the next
    // run's persister open compacts the log.
    drop(persister);
    let mut summary = state.checkpoint.summary();
    summary.elapsed = started.elapsed();
    Ok(DistribOutcome {
        summary,
        checkpoint: state.checkpoint,
        resumed_shards: seeded_shards,
        processed_this_run: state.processed_this_run,
        elapsed: started.elapsed(),
        failed_workers: state.failed_workers,
        respawns: state.respawns,
    })
}

/// Everything a worker slot needs, bundled so the spawn loop stays
/// readable.
struct SlotContext<'a> {
    job_frame: &'a [u8],
    shard_sizes: &'a [u64],
    avg_shard_workloads: f64,
    coord: &'a Coord,
    persister: Option<&'a Persister>,
    config: &'a DistribConfig,
    transport: &'a dyn Transport,
    on_discovery: Option<&'a (dyn Fn(&BugGroup) + Sync)>,
    should_stop: Option<&'a (dyn Fn() -> bool + Sync)>,
}

/// How one link's session ended, as seen by the slot's respawn loop.
enum LinkEnd {
    /// Clean shutdown: the queue drained (or a stop condition fired) and
    /// the worker was told to exit.
    Finished,
    /// The link died or desynced mid-session; a replacement link can pick
    /// up where it left off.
    Lost(FsError),
    /// The failure is inherent to the worker binary or the coordinator
    /// (version mismatch, `Reject`, a desynced stream, a
    /// checkpoint-persist error): respawning would fail identically, so
    /// the slot gives up immediately.
    Fatal(FsError),
}

impl LinkEnd {
    /// Classifies a receive failure: a `Corrupted` error means the frame
    /// stream itself is desynced (oversized frame, unknown tag, truncated
    /// payload) — a respawned copy of the same binary would desync the
    /// same way, so it is fatal, exactly as `docs/PROTOCOL.md`'s error
    /// table specifies. IO errors (`Device`) mean the worker died; a
    /// replacement can pick up.
    fn from_recv_error(error: FsError) -> LinkEnd {
        match error {
            FsError::Corrupted(_) => LinkEnd::Fatal(error),
            other => LinkEnd::Lost(other),
        }
    }
}

/// Drives one worker slot to completion: connect through the transport,
/// serve the link until it finishes or dies, and — within the respawn
/// budget — replace dead links (after re-queueing their in-flight shards)
/// until the sweep has no work left for this slot. Returns an error if
/// the slot gave up with the sweep unfinished.
fn serve_slot(index: usize, ctx: &SlotContext<'_>) -> FsResult<()> {
    let coord = ctx.coord;
    let mut respawns_left = ctx.config.respawn_budget;
    // Links this slot has actually served; connections after the first
    // are the respawns the outcome reports.
    let mut links_served = 0usize;
    loop {
        {
            // A fresh link is pointless when the run is stopping or the
            // queue is drained with nothing in flight — and for listener
            // transports it would block in accept for a worker that is
            // never coming.
            let mut state = coord
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.no_work_left(ctx.config) {
                state.workers[index].mark_dead();
                return Ok(());
            }
        }
        // Slow transports (a TCP listener waiting for a worker to dial
        // in) poll this so a slot stops waiting the moment the sweep has
        // no work left — otherwise a finished run would stall until the
        // accept timeout for workers that are never coming.
        let cancelled = || {
            coord
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .no_work_left(ctx.config)
        };
        let mut link = match ctx.transport.connect(&cancelled) {
            Ok(Some(link)) => link,
            Ok(None) => {
                // Cancelled: loop back to the no-work check, which will
                // wind the slot down cleanly.
                continue;
            }
            Err(error) => {
                // Never-started workers must still drop out of the
                // telemetry, or progress reports them as alive at 0/s
                // forever.
                let mut state = coord
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state.workers[index].mark_dead();
                if respawns_left == 0 {
                    return Err(error);
                }
                respawns_left -= 1;
                continue;
            }
        };
        if links_served > 0 {
            // Only a link that actually got established counts as a
            // respawn — a granted retry that never connects (or winds
            // down because the work ran out) is not a "replacement link".
            let mut state = coord
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.respawns += 1;
            state.workers[index].respawns += 1;
        }
        links_served += 1;
        // Shards assigned over this link whose results have not come back.
        let mut in_flight: Vec<u32> = Vec::new();
        let (error, fatal) = match serve_link(index, link.as_mut(), ctx, &mut in_flight) {
            LinkEnd::Finished => {
                link.close();
                let mut state = coord
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state.workers[index].mark_dead();
                return Ok(());
            }
            LinkEnd::Lost(error) => (error, false),
            LinkEnd::Fatal(error) => (error, true),
        };
        // The worker died or broke protocol: reclaim its in-flight shards
        // so a replacement (or the surviving slots) can run them, then
        // tear the link down.
        link.abort();
        let mut state = coord
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for &shard in &in_flight {
            state.in_flight -= 1;
            if !state.checkpoint.has_shard(shard) {
                state.queue.push_front(shard);
                state.assigned_candidates = state
                    .assigned_candidates
                    .saturating_sub(ctx.shard_sizes[shard as usize]);
            }
        }
        // Mark the slot dead *immediately* — before any replacement link's
        // Hello — clearing its rates with it: progress output must never
        // attribute live throughput (or a stale sizing rate) to the dead
        // endpoint, and a replacement must re-earn its batch size.
        state.workers[index].mark_dead();
        // Wake any worker waiting for in-flight shards: either the queue
        // just grew, or this was the last in-flight holder.
        coord.wake.notify_all();
        if fatal || respawns_left == 0 {
            return Err(error);
        }
        respawns_left -= 1;
    }
}

/// Serves one established link: handshake, then alternate claims and
/// assignments until the queue drains or a stop condition fires.
/// `in_flight` tracks shards assigned over this link that have not been
/// merged yet; on a lost link the caller re-queues them.
fn serve_link(
    index: usize,
    link: &mut dyn WorkerLink,
    ctx: &SlotContext<'_>,
    in_flight: &mut Vec<u32>,
) -> LinkEnd {
    let coord = ctx.coord;
    let config = ctx.config;

    // Links whose transport demands authentication open with a Challenge
    // *instead of* the eager Job: the worker must answer the challenge in
    // its Hello before it learns anything about the job. Everyone else
    // gets the Job eagerly, before the coordinator waits for the
    // handshake: a v2+ worker's Hello simply crosses it on the wire — but
    // a pre-handshake (v1) binary writes nothing until it has a Job, and
    // awaiting its Hello first would deadlock both sides forever. Fed a
    // Job, a v1 worker answers Claim instead of Hello, which the check
    // below turns into the intended clean rejection.
    let challenge = link
        .required_secret()
        .map(|secret| (secret.to_string(), auth::make_nonce()));
    let opening = match &challenge {
        Some((_, nonce)) => ToWorker::Challenge {
            nonce: nonce.clone(),
        }
        .to_frame(),
        None => ctx.job_frame.to_vec(),
    };
    if let Err(error) = link.send(&opening) {
        return LinkEnd::Lost(error);
    }

    // Handshake: the worker leads with Hello; anything else (or a dead
    // pipe) means the binary predates the handshake or crashed on start.
    // A challenged worker without the secret sends Reject, which the
    // dispatch below turns into a fatal (never-respawned) refusal.
    let hello = match link.recv().and_then(|f| FromWorker::from_frame(&f)) {
        Ok(FromWorker::Hello(hello)) => hello,
        Ok(FromWorker::Reject { reason }) => {
            return LinkEnd::Fatal(FsError::InvalidArgument(format!(
                "worker {} refused the handshake: {reason}",
                link.endpoint()
            )))
        }
        Ok(_) => {
            return LinkEnd::Fatal(FsError::Corrupted(
                "worker did not open with a Hello frame (pre-handshake binary?)".into(),
            ))
        }
        Err(error) => return LinkEnd::from_recv_error(error),
    };
    if let Err(error) = validate_hello(&hello) {
        return LinkEnd::Fatal(error);
    }
    if let Some((secret, nonce)) = &challenge {
        if !auth::verify_auth_tag(secret, nonce, &hello.auth) {
            // Kill the link without sending the Job: an unauthenticated
            // peer learns nothing about the sweep. Fatal, not lost — a
            // respawned copy of the same worker has the same (missing or
            // wrong) secret.
            return LinkEnd::Fatal(FsError::InvalidArgument(format!(
                "worker {} failed the shared-secret challenge (wrong or missing secret)",
                link.endpoint()
            )));
        }
        // Authenticated: the Job the unauthenticated path sent eagerly
        // goes out now.
        if let Err(error) = link.send(ctx.job_frame) {
            return LinkEnd::Lost(error);
        }
    }
    {
        let mut state = coord
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.workers[index].handshake(link.endpoint(), &hello, Instant::now());
    }

    loop {
        let message = match link.recv().and_then(|f| FromWorker::from_frame(&f)) {
            Ok(message) => message,
            Err(error) => return LinkEnd::from_recv_error(error),
        };
        match message {
            FromWorker::Hello(_) => {
                return LinkEnd::Fatal(FsError::Corrupted(
                    "worker sent a second Hello mid-session".into(),
                ))
            }
            FromWorker::Reject { reason } => {
                return LinkEnd::Fatal(FsError::InvalidArgument(format!(
                    "worker {} refused the job: {reason}",
                    link.endpoint()
                )))
            }
            FromWorker::Claim => {
                // The fleet daemon's graceful-stop hook: polled here (the
                // claim is the scheduling decision point) so a stop
                // request stops handing out work while in-flight shards
                // still land and persist.
                if ctx.should_stop.is_some_and(|hook| hook()) {
                    let mut state = coord
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state.stopping = true;
                    coord.wake.notify_all();
                }
                let batch: Vec<u32> = {
                    let mut state = coord
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    loop {
                        if state.stopping || state.should_stop(config) {
                            state.stopping = true;
                            coord.wake.notify_all();
                            break Vec::new();
                        }
                        if !state.queue.is_empty() {
                            let want = sized_batch(
                                config,
                                state.workers[index].effective_rate(),
                                ctx.avg_shard_workloads,
                            );
                            let take = want.min(state.queue.len());
                            let batch: Vec<u32> = state.queue.drain(..take).collect();
                            for &shard in &batch {
                                state.assigned_candidates += ctx.shard_sizes[shard as usize];
                            }
                            state.in_flight += batch.len();
                            break batch;
                        }
                        if state.in_flight == 0 {
                            // Queue drained and nothing in flight: the
                            // sweep (or this run's slice of it) is done.
                            break Vec::new();
                        }
                        // Queue empty but other workers still hold
                        // shards; if one of them dies, its shards come
                        // back to the queue — wait instead of shutting
                        // this worker down and stranding that work.
                        state = coord
                            .wake
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                };
                if batch.is_empty() {
                    return match link.send(&ToWorker::Shutdown.to_frame()) {
                        Ok(()) => LinkEnd::Finished,
                        Err(error) => LinkEnd::Lost(error),
                    };
                }
                in_flight.extend(&batch);
                if let Err(error) = link.send(&ToWorker::Assign(batch).to_frame()) {
                    return LinkEnd::Lost(error);
                }
            }
            FromWorker::ShardDone { shard, result } => {
                // A result for a shard this worker was never assigned
                // (or already reported) is a protocol violation; bail
                // before it corrupts the shared counters.
                let Some(position) = in_flight.iter().position(|&s| s == shard) else {
                    return LinkEnd::Fatal(FsError::Corrupted(format!(
                        "worker reported shard {shard} it does not hold"
                    )));
                };
                in_flight.swap_remove(position);
                let (to_persist, discovered) = {
                    let mut state = coord
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state.in_flight -= 1;
                    state.tested += result.tested as usize;
                    state.skipped += result.skipped as usize;
                    state.pruned += result.pruned as usize;
                    state.buggy += result.buggy as usize;
                    let processed = result.tested + result.skipped + result.pruned;
                    state.processed_this_run += processed as usize;
                    state.merged_this_run += 1;
                    let telemetry = &mut state.workers[index];
                    telemetry.shards += 1;
                    telemetry.tested += result.tested;
                    // Fold this frame into the observed-throughput EWMA:
                    // batch sizing follows what the worker actually
                    // delivers, not its one-shot Hello calibration.
                    telemetry.observe(processed, Instant::now());
                    // Bug groups this shard introduces to the whole sweep:
                    // collected under the lock (the seen-set must be
                    // consistent), streamed to the hook outside it.
                    let discovered: Vec<BugGroup> = match ctx.on_discovery {
                        Some(_) => result
                            .groups
                            .groups()
                            .into_iter()
                            .filter(|group| {
                                state
                                    .seen_groups
                                    .insert((group.skeleton.clone(), group.consequence))
                            })
                            .collect(),
                        None => Vec::new(),
                    };
                    // Encode the delta record under the lock
                    // (memory-speed), then merge the single-shard
                    // result as a checkpoint union, so the one
                    // aggregation primitive (`merge`) is the one the
                    // protocol exercises.
                    let delta = ctx.persister.map(|p| {
                        let mut enc = Encoder::new();
                        enc.put_u32(shard);
                        result.encode(&mut enc);
                        (p, state.merged_this_run as u64, enc.finish())
                    });
                    let mut incoming = state.checkpoint.subset([]);
                    incoming.record(shard, result);
                    if let Err(error) = state.checkpoint.merge(&incoming) {
                        return LinkEnd::Fatal(error);
                    }
                    coord.wake.notify_all();
                    (delta, discovered)
                };
                if let Some(hook) = ctx.on_discovery {
                    for group in &discovered {
                        hook(group);
                    }
                }
                // The file IO happens outside the coordinator lock so
                // workers don't stall behind it: one small fsync'd
                // append per shard, plus the occasional compaction.
                if let Some((persister, version, delta)) = to_persist {
                    match persister.append_delta(version, &delta) {
                        Ok(true) => {
                            let (version, snapshot) = {
                                let state = coord
                                    .state
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                (state.merged_this_run as u64, state.checkpoint.to_bytes())
                            };
                            if let Err(error) = persister.compact(version, &snapshot) {
                                return LinkEnd::Fatal(error);
                            }
                        }
                        Ok(false) => {}
                        // A persist failure is a coordinator-side problem;
                        // respawning the worker cannot fix the disk.
                        Err(error) => return LinkEnd::Fatal(error),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_with(batch_target: Option<Duration>) -> DistribConfig {
        DistribConfig {
            assign_batch: 1,
            batch_target,
            max_batch: 16,
            ..DistribConfig::default()
        }
    }

    #[test]
    fn uncalibrated_workers_get_the_base_batch() {
        let config = config_with(Some(Duration::from_secs(2)));
        assert_eq!(sized_batch(&config, None, 100.0), 1);
        // Capability sizing off entirely: rate is ignored.
        let config = config_with(None);
        assert_eq!(sized_batch(&config, Some(10_000.0), 100.0), 1);
    }

    #[test]
    fn fast_workers_get_bigger_batches_than_slow_ones() {
        let config = config_with(Some(Duration::from_secs(2)));
        // 100 workloads per shard: a 1000/s worker covers ~20 shards in the
        // 2s target (clamped to max_batch), a 100/s worker 2, a 10/s worker
        // stays at the floor.
        assert_eq!(sized_batch(&config, Some(1000.0), 100.0), 16);
        assert_eq!(sized_batch(&config, Some(100.0), 100.0), 2);
        assert_eq!(sized_batch(&config, Some(10.0), 100.0), 1);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_the_floor() {
        let config = config_with(Some(Duration::from_secs(2)));
        assert_eq!(sized_batch(&config, Some(0.0), 100.0), 1);
        assert_eq!(sized_batch(&config, Some(100.0), 0.0), 1);
    }

    /// The documented `max_batch` bound is hard: a config whose floor
    /// exceeds it is rejected up front by `validate()` (the old behavior
    /// silently raised the cap to the floor), and capability sizing can
    /// never exceed the cap.
    #[test]
    fn assign_batch_above_max_batch_is_rejected_not_silently_exceeded() {
        let config = DistribConfig {
            assign_batch: 32,
            max_batch: 8,
            ..DistribConfig::default()
        };
        let error = config.validate().unwrap_err();
        assert!(error.to_string().contains("exceeds max_batch"), "{error}");
        // Every coordinator entry point validates, so the bad config never
        // reaches a transport.
        let job = SweepJob::new(Bounds::tiny(), 2);
        let transport = ChildTransport::new(WorkerCommand::new("unused"));
        let error = run_with_transport(&job, &config, &transport, None).unwrap_err();
        assert!(error.to_string().contains("exceeds max_batch"), "{error}");

        let degenerate = DistribConfig {
            max_batch: 0,
            ..DistribConfig::default()
        };
        assert!(degenerate.validate().is_err());

        // A valid config's sizing stays within the cap even for an
        // arbitrarily fast worker.
        let config = DistribConfig {
            assign_batch: 4,
            batch_target: Some(Duration::from_secs(2)),
            max_batch: 16,
            ..DistribConfig::default()
        };
        config.validate().unwrap();
        assert_eq!(sized_batch(&config, Some(1.0e12), 100.0), 16);
    }

    /// Satellite: batch sizing must track *observed* throughput, not the
    /// one-shot `Hello` calibration. A worker that reported fast but runs
    /// slow shrinks to small batches; one that reported slow (or not at
    /// all) but runs fast grows.
    #[test]
    fn observed_rate_overrides_stale_hello_calibration() {
        let config = config_with(Some(Duration::from_secs(2)));
        let started = Instant::now();
        let mut telemetry = WorkerTelemetry::idle();
        telemetry.handshake(
            "mock:1",
            &Hello {
                version: PROTOCOL_VERSION,
                calibrated_rate: 10_000.0,
                auth: String::new(),
            },
            started,
        );
        // Freshly handshaken: only the reported rate exists, so the batch
        // is cap-sized for the claimed 10k/s.
        assert_eq!(telemetry.effective_rate(), Some(10_000.0));
        assert_eq!(sized_batch(&config, telemetry.effective_rate(), 100.0), 16);
        // The host then *delivers* 100 workloads per second: each
        // ShardDone lands 100 workloads one second after the previous.
        for i in 1..=5u64 {
            telemetry.observe(100, started + Duration::from_secs(i));
        }
        let observed = telemetry.effective_rate().expect("observed rate exists");
        assert!(
            (observed - 100.0).abs() < 1.0,
            "EWMA of identical 100/s samples must sit at 100/s, got {observed}"
        );
        // Batches now match reality (2 shards of ~100 workloads in the 2s
        // target), not the stale calibration's 16.
        assert_eq!(sized_batch(&config, telemetry.effective_rate(), 100.0), 2);

        // The divergence works the other way too: an uncalibrated worker
        // that turns out to be fast earns big batches.
        let mut warmup = WorkerTelemetry::idle();
        warmup.handshake(
            "mock:2",
            &Hello {
                version: PROTOCOL_VERSION,
                calibrated_rate: 0.0,
                auth: String::new(),
            },
            started,
        );
        assert_eq!(sized_batch(&config, warmup.effective_rate(), 100.0), 1);
        warmup.observe(2_000, started + Duration::from_secs(1));
        assert_eq!(sized_batch(&config, warmup.effective_rate(), 100.0), 16);
    }

    /// Satellite: the moment a link dies its slot must stop advertising a
    /// rate — a replacement link must re-earn its batch size instead of
    /// inheriting the dead link's, and progress output must never show a
    /// live rate on a dead endpoint.
    #[test]
    fn dead_slots_drop_their_rates_immediately() {
        let started = Instant::now();
        let mut telemetry = WorkerTelemetry::idle();
        telemetry.handshake(
            "127.0.0.1:9999",
            &Hello {
                version: PROTOCOL_VERSION,
                calibrated_rate: 500.0,
                auth: String::new(),
            },
            started,
        );
        telemetry.observe(100, started + Duration::from_secs(1));
        assert!(telemetry.effective_rate().is_some());

        telemetry.mark_dead();
        assert!(!telemetry.alive);
        assert_eq!(
            telemetry.effective_rate(),
            None,
            "a dead slot must not keep a sizing rate"
        );
        assert_eq!(
            telemetry.endpoint, "127.0.0.1:9999",
            "the endpoint stays for attribution"
        );
        // The batch size consequently falls back to the floor until the
        // replacement's handshake + observations rebuild a rate.
        let config = config_with(Some(Duration::from_secs(2)));
        assert_eq!(sized_batch(&config, telemetry.effective_rate(), 100.0), 1);
    }

    /// The error table in `docs/PROTOCOL.md`: desynced streams are fatal
    /// (a respawned identical binary would desync again), dead pipes are
    /// retryable.
    #[test]
    fn recv_error_classification_matches_the_spec() {
        assert!(matches!(
            LinkEnd::from_recv_error(FsError::Corrupted("unknown tag".into())),
            LinkEnd::Fatal(_)
        ));
        assert!(matches!(
            LinkEnd::from_recv_error(FsError::Device("broken pipe".into())),
            LinkEnd::Lost(_)
        ));
    }

    /// A pre-handshake (protocol v1) worker never sends Hello — its first
    /// action is to wait for a Job. Because the coordinator sends the Job
    /// eagerly, such a worker answers `Claim` instead of `Hello`, and the
    /// session must end in a clean fatal rejection rather than both sides
    /// blocking on a frame the other will never send.
    #[test]
    fn pre_handshake_worker_is_rejected_not_deadlocked() {
        struct V1Link;
        impl WorkerLink for V1Link {
            fn endpoint(&self) -> &str {
                "mock:v1"
            }
            fn send(&mut self, _payload: &[u8]) -> FsResult<()> {
                Ok(())
            }
            fn recv(&mut self) -> FsResult<Vec<u8>> {
                // The v1 worker consumed the eagerly sent Job (its decoder
                // ignores the trailing fingerprint) and claims work.
                Ok(FromWorker::Claim.to_frame())
            }
            fn close(&mut self) {}
            fn abort(&mut self) {}
        }

        let job = SweepJob::new(Bounds::tiny(), 2);
        let config = DistribConfig {
            workers: 1,
            ..DistribConfig::default()
        };
        let coord = Coord {
            state: Mutex::new(CoordState {
                queue: [0u32, 1].into(),
                in_flight: 0,
                checkpoint: job.empty_checkpoint(),
                tested: 0,
                skipped: 0,
                pruned: 0,
                buggy: 0,
                merged_this_run: 0,
                processed_this_run: 0,
                assigned_candidates: 0,
                stopping: false,
                workers: vec![WorkerTelemetry::idle()],
                failed_workers: 0,
                respawns: 0,
                seen_groups: Default::default(),
            }),
            wake: Condvar::new(),
        };
        let job_frame = ToWorker::Job {
            job: Box::new(job.clone()),
            fingerprint: job.empty_checkpoint().fingerprint().to_string(),
        }
        .to_frame();
        let shard_sizes = vec![5u64, 5];
        let transport = ChildTransport::new(WorkerCommand::new("unused"));
        let ctx = SlotContext {
            job_frame: &job_frame,
            shard_sizes: &shard_sizes,
            avg_shard_workloads: 5.0,
            coord: &coord,
            persister: None,
            config: &config,
            transport: &transport,
            on_discovery: None,
            should_stop: None,
        };
        let mut in_flight = Vec::new();
        match serve_link(0, &mut V1Link, &ctx, &mut in_flight) {
            LinkEnd::Fatal(error) => {
                assert!(error.to_string().contains("Hello"), "{error}");
            }
            LinkEnd::Finished => panic!("a pre-handshake worker must not finish cleanly"),
            LinkEnd::Lost(error) => panic!("must be fatal, not retryable: {error}"),
        }
    }
}
