//! Pluggable worker transports for the distributed sweep.
//!
//! The coordinator/worker protocol (see [`super::protocol`] and
//! `docs/PROTOCOL.md`) is pure length-prefixed frames, so the only thing a
//! transport has to provide is a way to *establish* a framed byte pipe to a
//! fresh worker. Three implementations cover the deployment spectrum:
//!
//! * [`ChildTransport`] — spawn a worker child process on this machine and
//!   speak over its stdio (the PR 3 behavior, still the default).
//! * [`TcpTransport`] — bind a listener; workers connect with
//!   `b3-sweep-worker --connect host:port` from anywhere on the network.
//!   Optionally, a *launcher* command spawns a local worker per connection
//!   (used by the loopback tests and the `sweep_coordinator` example).
//! * [`SshTransport`] — re-exec the worker on a remote host over `ssh`,
//!   whose stdio *is* the pipe; no daemon or open port needed on the remote
//!   side.
//!
//! Worker *respawn* composes with every transport: when a link dies
//! mid-shard the coordinator re-queues the in-flight shards and simply asks
//! the transport for a new link ([`Transport::connect`]) — a fresh child, a
//! fresh inbound TCP connection, or a fresh ssh session.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use b3_vfs::error::{FsError, FsResult};

use super::protocol::{read_frame, transport_err, write_frame};

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Path to the worker executable (typically the `b3-sweep-worker` binary
    /// or a `--worker`-mode re-exec of the coordinator binary).
    pub program: PathBuf,
    /// Arguments passed before the protocol takes over the link.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Appends an argument.
    pub fn arg(mut self, arg: impl Into<String>) -> WorkerCommand {
        self.args.push(arg.into());
        self
    }
}

/// One established, framed connection to a worker.
///
/// A link owns whatever resources back the pipe (a child process handle, a
/// socket) and knows how to tear them down. Frame semantics are identical
/// across implementations; only [`WorkerLink::endpoint`] differs, and that
/// string is what progress output uses to attribute work to a worker.
pub trait WorkerLink: Send {
    /// Where this worker is: `child:<pid>`, `<host>:<port>`, or
    /// `ssh:<host>` — stable for the life of the link, unique enough to
    /// attribute multi-host progress output.
    fn endpoint(&self) -> &str;

    /// Sends one frame payload.
    fn send(&mut self, payload: &[u8]) -> FsResult<()>;

    /// Receives one frame payload.
    fn recv(&mut self) -> FsResult<Vec<u8>>;

    /// Cleanly closes the link after a `Shutdown` was sent: signals EOF and
    /// waits for a child to exit, closes a socket. Idempotent.
    fn close(&mut self);

    /// Forcibly tears the link down (kills a spawned child, shuts the
    /// socket): used when the worker broke protocol or died. Idempotent.
    fn abort(&mut self);

    /// The shared secret this link's worker must prove knowledge of before
    /// it is handed a job ([`super::auth`]): `Some` makes the coordinator
    /// open the session with a `Challenge` and verify the `Hello`'s answer.
    /// The default (`None`, used by the spawned stdio/ssh links and
    /// loopback TCP) skips the challenge entirely.
    fn required_secret(&self) -> Option<&str> {
        None
    }
}

/// Establishes links to fresh workers. One transport serves every worker
/// slot of a coordinator run; [`Transport::connect`] is called once per
/// worker plus once per respawn.
pub trait Transport: Sync {
    /// Human-readable description for logs ("stdio children of …",
    /// "tcp listener on …").
    fn describe(&self) -> String;

    /// Establishes a link to one new worker: spawn a child, accept an
    /// inbound TCP connection, or open an ssh session.
    ///
    /// `cancelled` is polled by transports that can block for a long time
    /// (the TCP listener waiting for an inbound connection); when it
    /// reports true the attempt stops and `Ok(None)` is returned — the
    /// coordinator uses this so a slot waiting for a worker that will
    /// never come does not stall a sweep that other workers already
    /// finished. Transports that establish links promptly may ignore it.
    fn connect(
        &self,
        cancelled: &(dyn Fn() -> bool + Sync),
    ) -> FsResult<Option<Box<dyn WorkerLink>>>;
}

// ---------------------------------------------------------------------------
// Child processes over stdio.
// ---------------------------------------------------------------------------

/// A link to a local child process over its piped stdin/stdout.
struct ChildLink {
    child: Child,
    /// `None` once [`WorkerLink::close`] dropped it to signal EOF.
    stdin: Option<ChildStdin>,
    stdout: std::io::BufReader<ChildStdout>,
    endpoint: String,
    reaped: bool,
}

impl ChildLink {
    fn spawn(program: &PathBuf, args: &[String], endpoint_prefix: &str) -> FsResult<ChildLink> {
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| transport_err("spawn worker", e))?;
        let stdio = child.stdin.take().zip(child.stdout.take());
        let Some((stdin, stdout)) = stdio else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(transport_err(
                "open worker stdio",
                std::io::Error::other("spawned child has no piped stdin/stdout"),
            ));
        };
        let stdout = std::io::BufReader::new(stdout);
        let endpoint = format!("{endpoint_prefix}{}", child.id());
        Ok(ChildLink {
            child,
            stdin: Some(stdin),
            stdout,
            endpoint,
            reaped: false,
        })
    }

    fn reap(&mut self) {
        if !self.reaped {
            let _ = self.child.wait();
            self.reaped = true;
        }
    }
}

impl WorkerLink for ChildLink {
    fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn send(&mut self, payload: &[u8]) -> FsResult<()> {
        let stdin = self.stdin.as_mut().ok_or_else(|| {
            FsError::Device("worker transport: write after link was closed".into())
        })?;
        write_frame(stdin, payload)
    }

    fn recv(&mut self) -> FsResult<Vec<u8>> {
        read_frame(&mut self.stdout)
    }

    fn close(&mut self) {
        // Dropping stdin signals EOF; a worker that was sent Shutdown (or
        // reads EOF) exits on its own, so a plain wait reaps it.
        self.stdin = None;
        self.reap();
    }

    fn abort(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        self.reap();
    }
}

impl Drop for ChildLink {
    fn drop(&mut self) {
        if !self.reaped {
            let _ = self.child.kill();
            self.reap();
        }
    }
}

/// The stdio transport: every [`Transport::connect`] spawns `command` as a
/// child process and frames flow over its stdin/stdout. Endpoints are
/// `child:<pid>`.
#[derive(Debug, Clone)]
pub struct ChildTransport {
    command: WorkerCommand,
}

impl ChildTransport {
    /// A transport spawning `command` per worker.
    pub fn new(command: WorkerCommand) -> ChildTransport {
        ChildTransport { command }
    }
}

impl Transport for ChildTransport {
    fn describe(&self) -> String {
        format!("stdio children of {}", self.command.program.display())
    }

    fn connect(
        &self,
        _cancelled: &(dyn Fn() -> bool + Sync),
    ) -> FsResult<Option<Box<dyn WorkerLink>>> {
        Ok(Some(Box::new(ChildLink::spawn(
            &self.command.program,
            &self.command.args,
            "child:",
        )?)))
    }
}

// ---------------------------------------------------------------------------
// TCP listener.
// ---------------------------------------------------------------------------

/// A link over an accepted TCP connection.
///
/// Deliberately does **not** own the launcher-spawned worker process:
/// connections are accepted in whatever order the kernel delivers them,
/// so when several slots connect concurrently the socket a slot accepts
/// need not belong to the child *it* triggered — killing "its" child on
/// abort could murder a healthy worker serving another slot. Instead the
/// link only manages the socket (shutting it down makes whichever worker
/// is behind it fail its next frame IO and exit), and the transport reaps
/// every launched child (see [`TcpTransport`]).
struct TcpLink {
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
    endpoint: String,
    /// `Some` when the transport's auth policy requires this peer to pass
    /// the shared-secret challenge (non-loopback peers, or any peer when
    /// loopback auth is forced).
    required_secret: Option<String>,
}

impl WorkerLink for TcpLink {
    fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn send(&mut self, payload: &[u8]) -> FsResult<()> {
        write_frame(&mut self.writer, payload)
    }

    fn recv(&mut self) -> FsResult<Vec<u8>> {
        read_frame(&mut self.reader)
    }

    fn close(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }

    fn abort(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }

    fn required_secret(&self) -> Option<&str> {
        self.required_secret.as_deref()
    }
}

/// The TCP transport: the coordinator binds a listener and every
/// [`Transport::connect`] accepts one inbound worker connection (a
/// `b3-sweep-worker --connect host:port` started anywhere that can reach
/// the listener). Endpoints are the worker's peer `host:port`.
///
/// With a *launcher* ([`TcpTransport::with_launcher`]), each connect first
/// spawns the given command locally with `--connect <local_addr>` appended
/// — which makes loopback fan-out (and the respawn chaos tests)
/// self-contained: the transport both launches the worker and accepts its
/// connection.
pub struct TcpTransport {
    listener: TcpListener,
    local_addr: SocketAddr,
    accept_timeout: Duration,
    launcher: Option<WorkerCommand>,
    /// Shared secret for the HMAC challenge ([`super::auth`]). Required to
    /// accept non-loopback workers; without it any non-loopback connection
    /// is refused outright.
    secret: Option<String>,
    /// Forces the challenge even for loopback peers — normally loopback is
    /// exempt (the workers are ours), but the auth tests and belt-and-
    /// braces deployments flip this.
    loopback_auth: bool,
    /// Every worker process the launcher spawned. Links do not own
    /// children (see [`TcpLink`]); exited children are reaped
    /// opportunistically on each connect, and whatever is left is killed
    /// and reaped when the transport drops.
    launched: Mutex<Vec<Child>>,
}

impl TcpTransport {
    /// Binds the listener (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port, `"0.0.0.0:7733"` to serve a fleet).
    pub fn bind(addr: &str) -> FsResult<TcpTransport> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| transport_err(&format!("bind tcp listener on {addr}"), e))?;
        // Non-blocking accept + polling, so `connect` can enforce a
        // deadline (std's TcpListener has no native accept timeout).
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err("set listener non-blocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| transport_err("read listener address", e))?;
        Ok(TcpTransport {
            listener,
            local_addr,
            accept_timeout: Duration::from_secs(30),
            launcher: None,
            secret: None,
            loopback_auth: false,
            launched: Mutex::new(Vec::new()),
        })
    }

    /// The bound address — what workers pass to `--connect` (and where an
    /// ephemeral `:0` port materializes).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Spawns `command --connect <local_addr>` locally before each accept,
    /// so the transport produces its own workers.
    pub fn with_launcher(mut self, command: WorkerCommand) -> TcpTransport {
        self.launcher = Some(command);
        self
    }

    /// How long one [`Transport::connect`] waits for an inbound connection
    /// before giving up (default 30s).
    pub fn with_accept_timeout(mut self, timeout: Duration) -> TcpTransport {
        self.accept_timeout = timeout;
        self
    }

    /// Sets the shared secret non-loopback workers must authenticate with
    /// (HMAC challenge, [`super::auth`]). Without a secret, non-loopback
    /// connections are refused at accept time.
    pub fn with_secret(mut self, secret: impl Into<String>) -> TcpTransport {
        self.secret = Some(secret.into());
        self
    }

    /// Requires the challenge even from loopback peers (normally exempt).
    /// Used by the auth tests — CI has only loopback — and by deployments
    /// that want every link challenged regardless of source address.
    pub fn with_loopback_auth(mut self, required: bool) -> TcpTransport {
        self.loopback_auth = required;
        self
    }

    /// The auth policy for one accepted peer: `Ok(Some(secret))` when the
    /// link must be challenged, `Ok(None)` when it may proceed
    /// unauthenticated, `Err` when it must be refused (a peer we cannot
    /// challenge because no secret is configured).
    fn peer_auth(&self, peer: &SocketAddr) -> FsResult<Option<String>> {
        let needs_auth = self.loopback_auth || !peer.ip().is_loopback();
        match (&self.secret, needs_auth) {
            (_, false) => Ok(None),
            (Some(secret), true) => Ok(Some(secret.clone())),
            (None, true) => Err(FsError::InvalidArgument(format!(
                "worker at {peer} requires the shared-secret challenge but no secret is \
                 configured on this listener (set one with --secret / TcpTransport::with_secret)"
            ))),
        }
    }

    fn accept(
        &self,
        cancelled: &(dyn Fn() -> bool + Sync),
    ) -> FsResult<Option<(TcpStream, SocketAddr)>> {
        let deadline = Instant::now() + self.accept_timeout;
        loop {
            match self.listener.accept() {
                Ok(accepted) => return Ok(Some(accepted)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if cancelled() {
                        return Ok(None);
                    }
                    if Instant::now() >= deadline {
                        return Err(FsError::Device(format!(
                            "worker transport: no worker connected to {} within {:?}",
                            self.local_addr, self.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(transport_err("accept worker connection", e)),
            }
        }
    }

    /// Reaps launched children that already exited (non-blocking).
    fn reap_exited(&self) {
        let mut launched = self
            .launched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        launched.retain_mut(|child| !matches!(child.try_wait(), Ok(Some(_))));
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // By drop time the coordinator run is over; any launched worker
        // still alive is either stuck or lost its socket, so kill and
        // reap rather than leak.
        let mut launched = self
            .launched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for child in launched.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        launched.clear();
    }
}

impl Transport for TcpTransport {
    fn describe(&self) -> String {
        match &self.launcher {
            Some(cmd) => format!(
                "tcp listener on {} launching {}",
                self.local_addr,
                cmd.program.display()
            ),
            None => format!("tcp listener on {}", self.local_addr),
        }
    }

    fn connect(
        &self,
        cancelled: &(dyn Fn() -> bool + Sync),
    ) -> FsResult<Option<Box<dyn WorkerLink>>> {
        self.reap_exited();
        if let Some(command) = &self.launcher {
            let child = Command::new(&command.program)
                .args(&command.args)
                .arg("--connect")
                .arg(self.local_addr.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| transport_err("spawn tcp worker", e))?;
            // The pool (not the link) owns the child: the connection
            // accepted below may belong to a different, concurrently
            // launched worker, so no link may kill "its" child.
            self.launched
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(child);
        }
        let Some((stream, peer)) = self.accept(cancelled)? else {
            return Ok(None);
        };
        // A peer we must challenge but cannot (no secret configured) is
        // refused before it joins the pool.
        let required_secret = match self.peer_auth(&peer) {
            Ok(required_secret) => required_secret,
            Err(refused) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(refused);
            }
        };
        // The listener is non-blocking for the deadline loop above, but the
        // accepted stream must block: frames are read with read_exact.
        stream
            .set_nonblocking(false)
            .map_err(|e| transport_err("set stream blocking", e))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| transport_err("clone tcp stream", e))?;
        Ok(Some(Box::new(TcpLink {
            reader: std::io::BufReader::new(reader),
            writer: stream,
            endpoint: peer.to_string(),
            required_secret,
        })))
    }
}

// ---------------------------------------------------------------------------
// ssh pipes.
// ---------------------------------------------------------------------------

/// The ssh transport: each [`Transport::connect`] runs
/// `ssh -oBatchMode=yes <host> <remote_command…>` and frames flow over the
/// ssh process's stdio — the remote worker's stdin/stdout *are* the pipe,
/// exactly as with a local child. Multiple hosts are used round-robin, so
/// one transport can fan a coordinator's worker slots (and respawns) out
/// across a fleet. Endpoints are `ssh:<host>#<pid>` (the pid of the local
/// ssh client, so two sessions to the same host stay distinguishable).
///
/// `BatchMode=yes` makes a missing key/agent fail fast instead of hanging
/// the coordinator on a password prompt.
pub struct SshTransport {
    ssh_program: PathBuf,
    hosts: Vec<String>,
    remote_command: Vec<String>,
    next_host: AtomicUsize,
}

impl SshTransport {
    /// A transport running `remote_command` (program + args, e.g.
    /// `["b3-sweep-worker", "--calibrate"]`) on each of `hosts` via `ssh`.
    ///
    /// # Panics
    /// Panics if `hosts` or `remote_command` is empty.
    pub fn new(
        hosts: impl IntoIterator<Item = impl Into<String>>,
        remote_command: impl IntoIterator<Item = impl Into<String>>,
    ) -> SshTransport {
        let hosts: Vec<String> = hosts.into_iter().map(Into::into).collect();
        let remote_command: Vec<String> = remote_command.into_iter().map(Into::into).collect();
        assert!(!hosts.is_empty(), "ssh transport needs at least one host");
        assert!(
            !remote_command.is_empty(),
            "ssh transport needs a remote worker command"
        );
        SshTransport {
            ssh_program: PathBuf::from("ssh"),
            hosts,
            remote_command,
            next_host: AtomicUsize::new(0),
        }
    }

    /// Overrides the `ssh` binary — the tests substitute a local stub that
    /// drops the host argument and execs the "remote" command directly.
    pub fn with_ssh_program(mut self, program: impl Into<PathBuf>) -> SshTransport {
        self.ssh_program = program.into();
        self
    }
}

impl Transport for SshTransport {
    fn describe(&self) -> String {
        format!(
            "ssh pipes to [{}] running {}",
            self.hosts.join(", "),
            self.remote_command.join(" ")
        )
    }

    fn connect(
        &self,
        _cancelled: &(dyn Fn() -> bool + Sync),
    ) -> FsResult<Option<Box<dyn WorkerLink>>> {
        let host = &self.hosts[self.next_host.fetch_add(1, Ordering::Relaxed) % self.hosts.len()];
        let mut args: Vec<String> = vec!["-oBatchMode=yes".into(), host.clone()];
        args.extend(self.remote_command.iter().cloned());
        Ok(Some(Box::new(ChildLink::spawn(
            &self.ssh_program,
            &args,
            &format!("ssh:{host}#"),
        )?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_accept_times_out_when_nobody_connects() {
        let transport = TcpTransport::bind("127.0.0.1:0")
            .unwrap()
            .with_accept_timeout(Duration::from_millis(50));
        let Err(error) = transport.connect(&|| false) else {
            panic!("accept must time out with nobody connecting")
        };
        assert!(error.to_string().contains("no worker connected"));
    }

    #[test]
    fn tcp_accept_stops_early_when_cancelled() {
        let transport = TcpTransport::bind("127.0.0.1:0")
            .unwrap()
            .with_accept_timeout(Duration::from_secs(3600));
        let started = Instant::now();
        let link = transport.connect(&|| true).unwrap();
        assert!(link.is_none(), "a cancelled accept must not produce a link");
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "cancellation must beat the accept timeout"
        );
    }

    #[test]
    fn tcp_auth_policy_challenges_non_loopback_and_exempts_loopback() {
        let loopback: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        let remote: SocketAddr = "192.0.2.7:5000".parse().unwrap();

        let open = TcpTransport::bind("127.0.0.1:0").unwrap();
        assert_eq!(open.peer_auth(&loopback).unwrap(), None);
        let refused = open.peer_auth(&remote).unwrap_err();
        assert!(refused.to_string().contains("no secret is configured"));

        let secured = TcpTransport::bind("127.0.0.1:0").unwrap().with_secret("s");
        assert_eq!(secured.peer_auth(&loopback).unwrap(), None);
        assert_eq!(secured.peer_auth(&remote).unwrap(), Some("s".into()));

        let strict = TcpTransport::bind("127.0.0.1:0")
            .unwrap()
            .with_secret("s")
            .with_loopback_auth(true);
        assert_eq!(strict.peer_auth(&loopback).unwrap(), Some("s".into()));
    }

    #[test]
    fn ssh_transport_round_robins_hosts() {
        let transport = SshTransport::new(["a", "b"], ["worker"]);
        // `connect` would spawn ssh; just check the host rotation logic via
        // the counter and describe().
        assert!(transport.describe().contains("a, b"));
        assert_eq!(transport.next_host.fetch_add(1, Ordering::Relaxed) % 2, 0);
        assert_eq!(transport.next_host.fetch_add(1, Ordering::Relaxed) % 2, 1);
    }
}
