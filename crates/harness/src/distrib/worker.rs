//! The worker side of the distributed sweep protocol.
//!
//! A worker is transport-agnostic: [`worker_main`] speaks frames over this
//! process's stdin/stdout (for stdio-child and ssh-pipe transports, where
//! the spawner owns the pipe), and [`worker_connect`] dials a coordinator's
//! TCP listener and speaks the same frames over the socket. Both run the
//! identical loop: calibrate (optionally), read the coordinator's opening
//! frame (a `Challenge` on authenticated links, otherwise the eagerly-sent
//! `Job`), send `Hello` (carrying the HMAC challenge answer when one was
//! issued), verify the job fingerprint, then claim and run shards until
//! `Shutdown`.

use std::io::{Read, Write};
use std::time::Instant;

use b3_ace::Bounds;
use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::KernelEra;

use b3_app::AppHarness;

use super::protocol::PROTOCOL_VERSION;
use super::protocol::{read_frame, transport_err, write_frame, FromWorker, Hello, ToWorker};
use super::SweepSpace;
use crate::appsweep::run_app_shard;
use crate::corpus::FsKind;
use crate::sweep::{run_shard, PruneContext};

/// Exit code a worker uses when its injected crash hook fires (the chaos
/// tests' stand-in for a worker VM dying mid-shard).
pub const WORKER_CRASH_EXIT: i32 = 41;

/// Default size of the calibration burst `--calibrate` runs (workloads).
pub const DEFAULT_CALIBRATION_WORKLOADS: u64 = 64;

/// Options for [`worker_main`] / [`worker_connect`].
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Chaos-test hook: exit with [`WORKER_CRASH_EXIT`] immediately before
    /// running workload `N` (counted across all assigned shards), i.e. die
    /// mid-shard. `None` disables the hook.
    pub die_after_workloads: Option<u64>,
    /// Workloads to run in the calibration burst before the `Hello` frame.
    /// `0` (the default) skips calibration and reports an unknown rate; the
    /// coordinator then falls back to fixed-size shard batches for this
    /// worker until observed throughput accumulates.
    pub calibration_workloads: u64,
    /// Shared secret for answering a coordinator's `Challenge` (required
    /// when dialing a non-loopback listener; see
    /// [`super::auth`]). `None` on spawned stdio/ssh workers and loopback
    /// dials, which are never challenged.
    pub secret: Option<String>,
}

/// Measures this host's crash-testing throughput with a short burst over a
/// fixed tiny space (CowFs at the evaluation era, CrashMonkey's small
/// device), cycling the space as needed. The result is a *relative*
/// capability signal for batch sizing — the real job's per-workload cost
/// differs — so precision beyond "fast host vs slow host" is not the goal.
fn calibration_rate(workloads: u64) -> f64 {
    let bounds = Bounds::tiny();
    let spec = FsKind::Cow.spec(KernelEra::EVALUATION);
    let monkey = CrashMonkey::with_config(spec.as_ref(), CrashMonkeyConfig::small());
    let started = Instant::now();
    let mut remaining = workloads;
    while remaining > 0 {
        for workload in b3_ace::WorkloadGenerator::new(bounds.clone()) {
            let _ = monkey.test_workload(&workload);
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        workloads as f64 / elapsed
    } else {
        0.0
    }
}

/// The worker side of the protocol, speaking frames over this process's
/// stdin/stdout — used when a stdio-child or ssh-pipe transport spawned us
/// and owns the pipe. Returns the process exit code; the caller (the
/// `b3-sweep-worker` binary or a `--worker`-mode coordinator) passes it to
/// [`std::process::exit`].
pub fn worker_main(options: WorkerOptions) -> i32 {
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    exit_code(worker_loop(&mut stdin, &mut stdout, &options))
}

/// The worker side of the protocol over TCP: dials `addr` (a coordinator's
/// [`TcpTransport`](super::transport::TcpTransport) listener, as passed to
/// `b3-sweep-worker --connect`) and runs the same loop as [`worker_main`]
/// over the socket. Returns the process exit code.
pub fn worker_connect(addr: &str, options: WorkerOptions) -> i32 {
    let run = || -> FsResult<()> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| transport_err(&format!("connect to coordinator {addr}"), e))?;
        let _ = stream.set_nodelay(true);
        let mut reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| transport_err("clone tcp stream", e))?,
        );
        let mut writer = stream;
        worker_loop(&mut reader, &mut writer, &options)
    };
    exit_code(run())
}

fn exit_code(result: FsResult<()>) -> i32 {
    match result {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("b3 sweep worker: {error}");
            1
        }
    }
}

/// One full worker session over any framed byte pipe:
/// (`Challenge` →) `Hello` → `Job` (fingerprint-verified) →
/// `Claim`/`Assign`/`ShardDone` → `Shutdown`.
fn worker_loop(
    reader: &mut impl Read,
    writer: &mut impl Write,
    options: &WorkerOptions,
) -> FsResult<()> {
    let calibrated_rate = if options.calibration_workloads > 0 {
        calibration_rate(options.calibration_workloads)
    } else {
        0.0
    };

    // The coordinator always writes its opening frame eagerly — a
    // `Challenge` on authenticated links, otherwise the `Job` itself — so
    // reading before sending `Hello` cannot deadlock, and lets the worker
    // fold the challenge answer into the `Hello` it was going to send
    // anyway.
    let mut first = ToWorker::from_frame(&read_frame(reader)?)?;
    let auth = match &first {
        ToWorker::Challenge { nonce } => match &options.secret {
            Some(secret) => super::auth::auth_tag(secret, nonce),
            None => {
                let reason = "coordinator requires a shared secret (--secret) \
                              but this worker has none"
                    .to_string();
                write_frame(
                    writer,
                    &FromWorker::Reject {
                        reason: reason.clone(),
                    }
                    .to_frame(),
                )?;
                return Err(FsError::InvalidArgument(reason));
            }
        },
        _ => String::new(),
    };
    write_frame(
        writer,
        &FromWorker::Hello(Hello {
            version: PROTOCOL_VERSION,
            calibrated_rate,
            auth,
        })
        .to_frame(),
    )?;
    // On a challenged link the `Job` only arrives after the coordinator
    // verified our `Hello`.
    if matches!(first, ToWorker::Challenge { .. }) {
        first = ToWorker::from_frame(&read_frame(reader)?)?;
    }

    let ToWorker::Job {
        job,
        fingerprint: expected_fingerprint,
    } = first
    else {
        return Err(FsError::Corrupted(
            "worker expected a Job as its first message".into(),
        ));
    };
    // The coordinator's fingerprint and ours must agree on what the job
    // *means* — bounds enumeration, scope, shard split. A divergence means
    // the two binaries would silently produce unmergeable shard results,
    // so refuse loudly instead.
    let actual_fingerprint = job.empty_checkpoint().fingerprint().to_string();
    if actual_fingerprint != expected_fingerprint {
        let reason = format!(
            "job fingerprint mismatch: coordinator expects {expected_fingerprint:?} \
             but this worker computes {actual_fingerprint:?} (mismatched binaries?)"
        );
        write_frame(
            writer,
            &FromWorker::Reject {
                reason: reason.clone(),
            }
            .to_frame(),
        )?;
        return Err(FsError::InvalidArgument(reason));
    }

    let spec = job.fs.spec(job.era);
    let mut workloads_until_crash = options.die_after_workloads;
    // The chaos hook: die mid-shard, leaving the claimed shard unreported.
    let mut tick = move || {
        if let Some(remaining) = &mut workloads_until_crash {
            if *remaining == 0 {
                std::process::exit(WORKER_CRASH_EXIT);
            }
            *remaining -= 1;
        }
    };

    match &job.space {
        SweepSpace::Fs(bounds) => {
            // One bounded oracle interner for the life of the worker
            // process, so content-equal oracle entries dedup across every
            // shard it runs.
            let interner = std::sync::Arc::new(b3_vfs::snapshot::EntryInterner::new());
            let monkey = CrashMonkey::with_interner(spec.as_ref(), job.crashmonkey, interner);
            // The classifier is a pure function of the bounds, and the
            // sampling seed of the (canon-version-scoped) fingerprint both
            // sides already agreed on — so every worker prunes and audits
            // the exact same candidates the coordinator (or any
            // replacement worker) would.
            let classifier = (!job.prune.is_off()).then(|| b3_ace::Classifier::new(bounds));
            let prune_ctx = PruneContext::new(job.prune, classifier.as_ref(), &actual_fingerprint);
            claim_loop(reader, writer, |shard| {
                run_shard(
                    &monkey,
                    bounds,
                    shard,
                    job.num_shards,
                    &prune_ctx,
                    &mut tick,
                )
            })
        }
        SweepSpace::App { bounds, engine } => {
            // Canonicalization is a file-system-workload concept; an app
            // job asking for it means the coordinator and this worker
            // would disagree about what gets skipped — refuse loudly.
            if !job.prune.is_off() {
                let reason = "app sweeps have no canonicalization: prune must be off".to_string();
                write_frame(
                    writer,
                    &FromWorker::Reject {
                        reason: reason.clone(),
                    }
                    .to_frame(),
                )?;
                return Err(FsError::InvalidArgument(reason));
            }
            let harness = AppHarness::new(spec.as_ref(), job.crashmonkey, *engine);
            claim_loop(reader, writer, |shard| {
                run_app_shard(&harness, bounds, shard, job.num_shards, &mut tick)
            })
        }
    }
}

/// The steady-state worker loop: `Claim` → `Assign`/`Shutdown` →
/// `ShardDone`, with `run` supplying the per-shard result (the fs or app
/// shard runner).
fn claim_loop(
    reader: &mut impl Read,
    writer: &mut impl Write,
    mut run: impl FnMut(u32) -> crate::sweep::ShardResult,
) -> FsResult<()> {
    loop {
        write_frame(writer, &FromWorker::Claim.to_frame())?;
        match ToWorker::from_frame(&read_frame(reader)?)? {
            ToWorker::Assign(shards) => {
                for shard in shards {
                    let result = run(shard);
                    write_frame(writer, &FromWorker::ShardDone { shard, result }.to_frame())?;
                }
            }
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Job { .. } => {
                return Err(FsError::Corrupted("unexpected second Job message".into()))
            }
            ToWorker::Challenge { .. } => {
                return Err(FsError::Corrupted(
                    "unexpected mid-session Challenge message".into(),
                ))
            }
        }
    }
}
