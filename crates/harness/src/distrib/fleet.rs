//! The sweep fleet daemon: a long-lived, multi-tenant coordinator that owns
//! a persistent queue of sweep jobs and schedules them onto the shared
//! worker pool.
//!
//! One-shot coordinators ([`super::run_with_transport`]) run a single job and
//! exit; the [`FleetCoordinator`] stays up. Clients connect to its control
//! listener and speak the client half of the wire protocol (tags
//! `0x10`–`0x14` / `0x90`–`0x94` in [`super::protocol::wire`], specified in
//! `docs/PROTOCOL.md`): [`ClientRequest::Enqueue`] adds a job (preset × fs
//! × era × prune mode), `Status` reports the queue, `Results` fetches a
//! job's merged bug groups, `Cancel` withdraws a still-queued job, and
//! `Subscribe` turns the connection into a live stream of bug-group
//! discoveries as they are merged.
//!
//! **Everything survives a daemon restart.** The queue itself is journaled
//! to `queue.b3fq` in the fleet directory (format in `docs/FORMATS.md`):
//! one fsync'd append per job added and per state transition, with the
//! same torn-trailing-record discipline as the `B3SG` checkpoint log — a
//! kill mid-append loses at most that one record, never the queue. Each
//! job's sweep progress lives in its own segment-log checkpoint
//! (`job-<id>.ck`) next to the journal, so a job interrupted mid-sweep
//! resumes from its completed shards. On reload, jobs recorded `Running`
//! (the daemon died with them mid-flight) go back to `Queued`; the journal
//! is compacted to one job record + one state record per job, atomically.
//!
//! Job state machine (terminal states never transition again):
//!
//! ```text
//!  Enqueue ──▶ Queued ──▶ Running ──▶ Done
//!                │  ▲         │  └───▶ Failed
//!                │  └─────────┘ (daemon restart, graceful stop)
//!                └──▶ Cancelled (client Cancel; queued jobs only)
//! ```

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use b3_crashmonkey::Consequence;
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};

use super::protocol::{read_frame, transport_err, wire, write_frame, MAX_FRAME_BYTES};
use super::segment::{load_checkpoint, segment_record, write_atomic};
use super::{run_with_transport_hooked, DistribConfig, DistribHooks, SweepJob, Transport};
use crate::dedup::GroupTable;
use crate::postprocess::BugGroup;

/// Magic prefix of the fleet queue journal (`queue.b3fq`).
pub const QUEUE_MAGIC: [u8; 4] = *b"B3FQ";
/// Journal record tag: a job joined the queue (`id u64 | SweepJob`).
pub const REC_JOB: u8 = 1;
/// Journal record tag: a job changed state (`id u64 | state u8 | error str`).
pub const REC_STATE: u8 = 2;

/// File name of the queue journal inside the fleet directory.
pub const QUEUE_FILE: &str = "queue.b3fq";

/// Where one job stands in the fleet queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the scheduler (also the reload state of a job that was
    /// `Running` when the daemon died — its checkpoint keeps the progress).
    Queued,
    /// Currently being swept on the worker pool.
    Running,
    /// Swept to completion; results are final.
    Done,
    /// The sweep errored out (reason in [`JobStatus::error`]). Terminal.
    Failed,
    /// Withdrawn by a client while still queued. Terminal.
    Cancelled,
}

impl JobState {
    /// Stable one-byte code for the journal and the wire.
    pub fn code(&self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    /// Inverse of [`JobState::code`].
    pub fn from_code(code: u8) -> Option<JobState> {
        Some(match code {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Lowercase name used in status output.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True for states that never transition again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job's row in a `Status` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The queue-assigned job id (unique for the life of the fleet dir).
    pub id: u64,
    /// Paper name of the file system under test.
    pub fs: String,
    /// Kernel era the job sweeps.
    pub era: String,
    /// Shard split of the job's workload space.
    pub num_shards: usize,
    /// Where the job stands.
    pub state: JobState,
    /// Failure reason; empty unless `state` is [`JobState::Failed`].
    pub error: String,
}

impl JobStatus {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        enc.put_str(&self.fs);
        enc.put_str(&self.era);
        enc.put_u64(self.num_shards as u64);
        enc.put_u8(self.state.code());
        enc.put_str(&self.error);
    }

    fn decode(dec: &mut Decoder<'_>) -> FsResult<JobStatus> {
        let id = dec.get_u64()?;
        let fs = dec.get_str()?;
        let era = dec.get_str()?;
        let num_shards = dec.get_u64()? as usize;
        let code = dec.get_u8()?;
        let state = JobState::from_code(code)
            .ok_or_else(|| FsError::Corrupted(format!("unknown job state code {code}")))?;
        let error = dec.get_str()?;
        Ok(JobStatus {
            id,
            fs,
            era,
            num_shards,
            state,
            error,
        })
    }
}

/// One bug-group discovery, as streamed to `Subscribe`d clients the moment
/// the coordinator merges a group it has not seen before in that job's
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// The job whose sweep discovered the group.
    pub job: u64,
    /// The group's workload skeleton (the §5.3 grouping key).
    pub skeleton: String,
    /// The group's crash consequence.
    pub consequence: Consequence,
    /// Raw reports in the group at discovery time.
    pub count: u64,
}

/// Client-to-daemon requests (tags `0x10`–`0x14`).
#[derive(Debug, Clone)]
pub enum ClientRequest {
    /// Add a sweep job to the queue; answered with `Ack { id }`.
    Enqueue(SweepJob),
    /// Report every job's state; answered with `StatusReport`.
    Status,
    /// Fetch one job's state + merged bug groups; answered with
    /// `ResultsReport`.
    Results {
        /// The job to report on.
        id: u64,
    },
    /// Cancel a still-queued job (running and terminal jobs are refused);
    /// answered with `Ack { id }`.
    Cancel {
        /// The job to cancel.
        id: u64,
    },
    /// Turn this connection into a one-way stream of `Event` frames.
    Subscribe,
}

impl ClientRequest {
    /// Encodes this request as one frame payload.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ClientRequest::Enqueue(job) => {
                enc.put_u8(wire::ENQUEUE);
                job.encode(&mut enc);
            }
            ClientRequest::Status => enc.put_u8(wire::STATUS),
            ClientRequest::Results { id } => {
                enc.put_u8(wire::RESULTS);
                enc.put_u64(*id);
            }
            ClientRequest::Cancel { id } => {
                enc.put_u8(wire::CANCEL);
                enc.put_u64(*id);
            }
            ClientRequest::Subscribe => enc.put_u8(wire::SUBSCRIBE),
        }
        enc.finish()
    }

    /// Decodes one client-to-daemon frame payload.
    pub fn from_frame(frame: &[u8]) -> FsResult<ClientRequest> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            wire::ENQUEUE => Ok(ClientRequest::Enqueue(SweepJob::decode(&mut dec)?)),
            wire::STATUS => Ok(ClientRequest::Status),
            wire::RESULTS => Ok(ClientRequest::Results { id: dec.get_u64()? }),
            wire::CANCEL => Ok(ClientRequest::Cancel { id: dec.get_u64()? }),
            wire::SUBSCRIBE => Ok(ClientRequest::Subscribe),
            tag => Err(FsError::Corrupted(format!(
                "unknown client request tag {tag:#x}"
            ))),
        }
    }
}

/// Daemon-to-client replies (tags `0x90`–`0x94`).
#[derive(Debug, Clone)]
pub enum DaemonReply {
    /// `Enqueue`/`Cancel` succeeded for this job id.
    Ack {
        /// The affected job.
        id: u64,
    },
    /// The queue's job states, id-ordered.
    Status(Vec<JobStatus>),
    /// One job's state plus its merged bug groups so far (final once the
    /// state is terminal).
    Results {
        /// The job's status row.
        status: JobStatus,
        /// The job checkpoint's merged group table.
        groups: GroupTable,
    },
    /// The request failed.
    Error {
        /// Human-readable reason.
        reason: String,
    },
    /// One newly merged bug group (subscription stream only).
    Event(FleetEvent),
}

impl DaemonReply {
    /// Encodes this reply as one frame payload.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            DaemonReply::Ack { id } => {
                enc.put_u8(wire::ACK);
                enc.put_u64(*id);
            }
            DaemonReply::Status(rows) => {
                enc.put_u8(wire::STATUS_REPORT);
                enc.put_u64(rows.len() as u64);
                for row in rows {
                    row.encode(&mut enc);
                }
            }
            DaemonReply::Results { status, groups } => {
                enc.put_u8(wire::RESULTS_REPORT);
                status.encode(&mut enc);
                groups.encode(&mut enc);
            }
            DaemonReply::Error { reason } => {
                enc.put_u8(wire::CLIENT_ERROR);
                enc.put_str(reason);
            }
            DaemonReply::Event(event) => {
                enc.put_u8(wire::EVENT);
                enc.put_u64(event.job);
                enc.put_str(&event.skeleton);
                enc.put_u8(event.consequence.code());
                enc.put_u64(event.count);
            }
        }
        enc.finish()
    }

    /// Decodes one daemon-to-client frame payload.
    pub fn from_frame(frame: &[u8]) -> FsResult<DaemonReply> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            wire::ACK => Ok(DaemonReply::Ack { id: dec.get_u64()? }),
            wire::STATUS_REPORT => {
                let count = dec.get_u64()? as usize;
                let mut rows = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    rows.push(JobStatus::decode(&mut dec)?);
                }
                Ok(DaemonReply::Status(rows))
            }
            wire::RESULTS_REPORT => Ok(DaemonReply::Results {
                status: JobStatus::decode(&mut dec)?,
                groups: GroupTable::decode(&mut dec)?,
            }),
            wire::CLIENT_ERROR => Ok(DaemonReply::Error {
                reason: dec.get_str()?,
            }),
            wire::EVENT => {
                let job = dec.get_u64()?;
                let skeleton = dec.get_str()?;
                let code = dec.get_u8()?;
                let consequence = Consequence::from_code(code).ok_or_else(|| {
                    FsError::Corrupted(format!("unknown consequence code {code}"))
                })?;
                let count = dec.get_u64()?;
                Ok(DaemonReply::Event(FleetEvent {
                    job,
                    skeleton,
                    consequence,
                    count,
                }))
            }
            tag => Err(FsError::Corrupted(format!(
                "unknown daemon reply tag {tag:#x}"
            ))),
        }
    }
}

/// Fleet daemon configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Directory holding the queue journal and per-job checkpoints. Created
    /// if missing.
    pub dir: PathBuf,
    /// Coordinator settings every scheduled job runs with (worker count,
    /// batch sizing, respawn budget). `checkpoint_path` is overridden per
    /// job.
    pub distrib: DistribConfig,
    /// Shared secret non-loopback TCP workers must answer the HMAC
    /// challenge with (see [`super::auth`]). The embedding binary passes it
    /// to [`super::TcpTransport::with_secret`]; the coordinator itself
    /// stores it only so `b3-sweep-fleet serve` has one place to configure.
    pub secret: Option<String>,
}

impl FleetConfig {
    /// A fleet rooted at `dir` with default coordinator settings.
    pub fn new(dir: impl Into<PathBuf>) -> FleetConfig {
        FleetConfig {
            dir: dir.into(),
            distrib: DistribConfig::default(),
            secret: None,
        }
    }
}

/// One job's in-memory record.
#[derive(Debug, Clone)]
struct JobRecord {
    job: SweepJob,
    state: JobState,
    error: String,
}

/// The queue under the coordinator's mutex: job table plus the journal's
/// append handle.
struct FleetState {
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    journal: std::fs::File,
}

impl FleetState {
    /// Durably appends one journal record (fsync'd, like the `B3SG` delta
    /// appends — the journal must survive the same kills the checkpoints
    /// do).
    fn append(&mut self, record: &[u8]) -> FsResult<()> {
        use std::io::Write;
        self.journal
            .write_all(record)
            .and_then(|()| self.journal.sync_data())
            .map_err(|e| FsError::Device(format!("append fleet queue journal: {e}")))
    }

    fn append_state(&mut self, id: u64, state: JobState, error: &str) -> FsResult<()> {
        let record = state_record(id, state, error);
        self.append(&record)
    }

    fn status_row(id: u64, record: &JobRecord) -> JobStatus {
        JobStatus {
            id,
            fs: record.job.fs.paper_name().to_string(),
            era: record.job.era.as_str().to_string(),
            num_shards: record.job.num_shards,
            state: record.state,
            error: record.error.clone(),
        }
    }
}

fn job_record(id: u64, job: &SweepJob) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(id);
    job.encode(&mut enc);
    segment_record(REC_JOB, &enc.finish())
}

fn state_record(id: u64, state: JobState, error: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(id);
    enc.put_u8(state.code());
    enc.put_str(error);
    segment_record(REC_STATE, &enc.finish())
}

/// Replays a queue journal: jobs in id order, each at its latest recorded
/// state. A truncated trailing record (the signature a killed daemon
/// leaves) is ignored; corruption anywhere else is an error.
fn replay_queue(bytes: &[u8], path: &Path) -> FsResult<BTreeMap<u64, JobRecord>> {
    let corrupt =
        |what: String| FsError::Corrupted(format!("fleet queue {}: {what}", path.display()));
    if bytes.len() < 4 || bytes[0..4] != QUEUE_MAGIC {
        return Err(corrupt("missing B3FQ magic".into()));
    }
    let mut jobs: BTreeMap<u64, JobRecord> = BTreeMap::new();
    let mut pos = QUEUE_MAGIC.len();
    while bytes.len() - pos >= 5 {
        let tag = bytes[pos];
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let end = pos + 5 + len;
        if end > bytes.len() {
            // Torn tail: the daemon died mid-append. The lost record is at
            // most one enqueue (the client sees the write fail and retries)
            // or one state transition (the reload rules below re-derive a
            // safe state); everything before it is intact.
            break;
        }
        let mut dec = Decoder::new(&bytes[pos + 5..end]);
        match tag {
            REC_JOB => {
                let id = dec.get_u64()?;
                let job = SweepJob::decode(&mut dec)?;
                if jobs
                    .insert(
                        id,
                        JobRecord {
                            job,
                            state: JobState::Queued,
                            error: String::new(),
                        },
                    )
                    .is_some()
                {
                    return Err(corrupt(format!("duplicate record for job {id}")));
                }
            }
            REC_STATE => {
                let id = dec.get_u64()?;
                let code = dec.get_u8()?;
                let state = JobState::from_code(code)
                    .ok_or_else(|| corrupt(format!("unknown job state code {code}")))?;
                let error = dec.get_str()?;
                let record = jobs
                    .get_mut(&id)
                    .ok_or_else(|| corrupt(format!("state record for unknown job {id}")))?;
                record.state = state;
                record.error = error;
            }
            other => return Err(corrupt(format!("unknown record tag {other:#x}"))),
        }
        pos = end;
    }
    Ok(jobs)
}

/// The compacted journal image: one job record plus (when it has left
/// `Queued`) one state record per job, id-ordered.
fn compacted_queue_bytes(jobs: &BTreeMap<u64, JobRecord>) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&QUEUE_MAGIC);
    for (&id, record) in jobs {
        bytes.extend_from_slice(&job_record(id, &record.job));
        if record.state != JobState::Queued || !record.error.is_empty() {
            bytes.extend_from_slice(&state_record(id, record.state, &record.error));
        }
    }
    bytes
}

/// Reads a fleet directory's queue journal without a running daemon —
/// offline inspection for `b3-sweep-fleet status --dir`. States are
/// reported exactly as recorded (a job the daemon died with mid-flight
/// shows `Running`; [`FleetCoordinator::open`] is what re-queues it).
pub fn inspect_queue(dir: &Path) -> FsResult<Vec<JobStatus>> {
    let path = dir.join(QUEUE_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(FsError::Device(format!(
                "read fleet queue {}: {e}",
                path.display()
            )))
        }
    };
    let jobs = replay_queue(&bytes, &path)?;
    Ok(jobs
        .iter()
        .map(|(&id, record)| FleetState::status_row(id, record))
        .collect())
}

/// The long-lived multi-tenant coordinator daemon: owns the persistent job
/// queue, schedules queued jobs onto the worker pool one at a time (jobs
/// share the pool serially; shards within a job run in parallel), serves
/// client requests over a control listener, and streams bug-group
/// discoveries to subscribers.
pub struct FleetCoordinator {
    config: FleetConfig,
    state: Mutex<FleetState>,
    /// Notified when the queue changes or a stop is requested.
    wake: Condvar,
    /// Cooperative shutdown flag: checked between jobs and — through the
    /// [`DistribHooks::should_stop`] hook — at every claim inside a running
    /// job, so a stop mid-sweep winds down to a resumable checkpoint.
    stop: AtomicBool,
    subscribers: Mutex<Vec<mpsc::Sender<FleetEvent>>>,
}

impl FleetCoordinator {
    /// Opens (or creates) the fleet directory: replays the queue journal
    /// (tolerating a torn trailing record), re-queues jobs that were
    /// `Running` when the previous daemon died, and compacts the journal
    /// atomically before opening it for appends.
    pub fn open(config: FleetConfig) -> FsResult<FleetCoordinator> {
        config.distrib.validate()?;
        std::fs::create_dir_all(&config.dir).map_err(|e| {
            FsError::Device(format!("create fleet dir {}: {e}", config.dir.display()))
        })?;
        let path = config.dir.join(QUEUE_FILE);
        let mut jobs = match std::fs::read(&path) {
            Ok(bytes) => replay_queue(&bytes, &path)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => {
                return Err(FsError::Device(format!(
                    "read fleet queue {}: {e}",
                    path.display()
                )))
            }
        };
        // A job recorded `Running` was mid-flight when the daemon died; its
        // checkpoint holds every shard that was merged, so re-queueing it
        // resumes rather than restarts the sweep.
        for record in jobs.values_mut() {
            if record.state == JobState::Running {
                record.state = JobState::Queued;
            }
        }
        write_atomic(&path, &compacted_queue_bytes(&jobs))?;
        let journal = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| FsError::Device(format!("open fleet queue {}: {e}", path.display())))?;
        let next_id = jobs.keys().next_back().map_or(1, |&id| id + 1);
        Ok(FleetCoordinator {
            config,
            state: Mutex::new(FleetState {
                jobs,
                next_id,
                journal,
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            subscribers: Mutex::new(Vec::new()),
        })
    }

    /// The fleet directory this daemon owns.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The segment-log checkpoint file of one job's sweep.
    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.config.dir.join(format!("job-{id}.ck"))
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, FleetState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds a job to the queue (journaled before the id is returned).
    pub fn enqueue(&self, job: SweepJob) -> FsResult<u64> {
        let mut state = self.locked();
        let id = state.next_id;
        let record = job_record(id, &job);
        state.append(&record)?;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobRecord {
                job,
                state: JobState::Queued,
                error: String::new(),
            },
        );
        drop(state);
        self.wake.notify_all();
        Ok(id)
    }

    /// Every job's status row, id-ordered.
    pub fn status(&self) -> Vec<JobStatus> {
        let state = self.locked();
        state
            .jobs
            .iter()
            .map(|(&id, record)| FleetState::status_row(id, record))
            .collect()
    }

    /// One job's status row plus its merged bug groups so far (read from
    /// the job's checkpoint file; empty before the first shard merges).
    pub fn results(&self, id: u64) -> FsResult<(JobStatus, GroupTable)> {
        let status = {
            let state = self.locked();
            let record = state
                .jobs
                .get(&id)
                .ok_or_else(|| FsError::InvalidArgument(format!("no such job {id}")))?;
            FleetState::status_row(id, record)
        };
        let groups = match load_checkpoint(&self.checkpoint_path(id))? {
            Some(checkpoint) => checkpoint.grouped(),
            None => GroupTable::new(),
        };
        Ok((status, groups))
    }

    /// Cancels a still-queued job. Running jobs cannot be cancelled (the
    /// sweep holds the worker pool; stop the daemon to interrupt it) and
    /// terminal jobs have nothing to cancel — both are refused with an
    /// error naming the state.
    pub fn cancel(&self, id: u64) -> FsResult<()> {
        let mut state = self.locked();
        let record = state
            .jobs
            .get(&id)
            .ok_or_else(|| FsError::InvalidArgument(format!("no such job {id}")))?;
        if record.state != JobState::Queued {
            return Err(FsError::InvalidArgument(format!(
                "job {id} is {}; only queued jobs can be cancelled",
                record.state.as_str()
            )));
        }
        state.append_state(id, JobState::Cancelled, "")?;
        if let Some(record) = state.jobs.get_mut(&id) {
            record.state = JobState::Cancelled;
        }
        Ok(())
    }

    /// Registers a live discovery stream: every bug group first merged by
    /// any job's sweep from now on is delivered to the returned receiver.
    /// Dropped receivers are unregistered lazily on the next broadcast.
    pub fn subscribe(&self) -> mpsc::Receiver<FleetEvent> {
        let (tx, rx) = mpsc::channel();
        self.subscribers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(tx);
        rx
    }

    fn broadcast(&self, job: u64, group: &BugGroup) {
        let event = FleetEvent {
            job,
            skeleton: group.skeleton.clone(),
            consequence: group.consequence,
            count: group.count as u64,
        };
        let mut subscribers = self
            .subscribers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        subscribers.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Asks the daemon to stop: the scheduler starts no new job, a running
    /// job stops claiming shards (in-flight shards still merge and
    /// persist, leaving a resumable checkpoint), and the client listener
    /// winds down.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }

    /// True once [`request_stop`](FleetCoordinator::request_stop) was
    /// called.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Runs the lowest-id queued job to its end state over `transport`.
    /// Returns the job id, or `None` when the queue has no runnable job. A
    /// failed *sweep* is recorded on the job (`Failed`) and is not an
    /// error of the daemon; an `Err` here means the queue journal itself
    /// could not be written.
    pub fn run_next_job(&self, transport: &dyn Transport) -> FsResult<Option<u64>> {
        let (id, job) = {
            let mut state = self.locked();
            let Some((&id, record)) = state
                .jobs
                .iter()
                .find(|(_, record)| record.state == JobState::Queued)
            else {
                return Ok(None);
            };
            let job = record.job.clone();
            state.append_state(id, JobState::Running, "")?;
            if let Some(record) = state.jobs.get_mut(&id) {
                record.state = JobState::Running;
            }
            (id, job)
        };

        let mut distrib = self.config.distrib.clone();
        distrib.checkpoint_path = Some(self.checkpoint_path(id));
        let should_stop = || self.stop.load(Ordering::Relaxed);
        let on_discovery = |group: &BugGroup| self.broadcast(id, group);
        let outcome = run_with_transport_hooked(
            &job,
            &distrib,
            transport,
            DistribHooks {
                progress: None,
                on_discovery: Some(&on_discovery),
                should_stop: Some(&should_stop),
            },
        );
        let (final_state, error) = match &outcome {
            Ok(outcome) if outcome.is_complete() => (JobState::Done, String::new()),
            // Wound down early (graceful stop or a stop budget): the
            // checkpoint keeps the progress, the job keeps its turn.
            Ok(_) => (JobState::Queued, String::new()),
            Err(e) => (JobState::Failed, e.to_string()),
        };

        let mut state = self.locked();
        state.append_state(id, final_state, &error)?;
        if let Some(record) = state.jobs.get_mut(&id) {
            record.state = final_state;
            record.error = error;
        }
        drop(state);
        self.wake.notify_all();
        Ok(Some(id))
    }

    /// Runs queued jobs until the queue has none left (or a stop is
    /// requested). Returns how many job runs completed (a job re-queued by
    /// a graceful stop counts once per run).
    pub fn run_until_idle(&self, transport: &dyn Transport) -> FsResult<usize> {
        let mut ran = 0;
        while !self.stopping() {
            match self.run_next_job(transport)? {
                Some(_) => ran += 1,
                None => break,
            }
        }
        Ok(ran)
    }

    /// The daemon's scheduler loop: runs queued jobs as they arrive,
    /// sleeping on the queue condvar while idle, until
    /// [`request_stop`](FleetCoordinator::request_stop). Returns how many
    /// job runs completed.
    pub fn run_forever(&self, transport: &dyn Transport) -> FsResult<usize> {
        let mut ran = 0;
        loop {
            if self.stopping() {
                return Ok(ran);
            }
            match self.run_next_job(transport)? {
                Some(_) => ran += 1,
                None => {
                    let state = self.locked();
                    if self.stopping() {
                        return Ok(ran);
                    }
                    let _ = self
                        .wake
                        .wait_timeout(state, Duration::from_millis(200))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// Serves client connections on `listener` until a stop is requested.
    /// Each connection gets its own thread; `Subscribe` turns a connection
    /// into a one-way event stream. Runs on its own thread next to the
    /// scheduler loop (see `b3-sweep-fleet serve`).
    pub fn serve_clients(&self, listener: TcpListener) -> FsResult<()> {
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err("set control listener non-blocking", e))?;
        std::thread::scope(|scope| {
            while !self.stopping() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || {
                            let _ = self.handle_client(stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
        });
        Ok(())
    }

    /// One client connection: request/reply frames until the client hangs
    /// up (or a `Subscribe` upgrades the connection to an event stream).
    fn handle_client(&self, stream: TcpStream) -> FsResult<()> {
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(|e| transport_err("set client read timeout", e))?;
        let mut reader = stream
            .try_clone()
            .map_err(|e| transport_err("clone client stream", e))?;
        let mut writer = stream;
        loop {
            let Some(frame) = read_client_frame(&mut reader, &self.stop)? else {
                return Ok(()); // client hung up, or the daemon is stopping
            };
            let reply = match ClientRequest::from_frame(&frame) {
                Ok(ClientRequest::Enqueue(job)) => match self.enqueue(job) {
                    Ok(id) => DaemonReply::Ack { id },
                    Err(e) => DaemonReply::Error {
                        reason: e.to_string(),
                    },
                },
                Ok(ClientRequest::Status) => DaemonReply::Status(self.status()),
                Ok(ClientRequest::Results { id }) => match self.results(id) {
                    Ok((status, groups)) => DaemonReply::Results { status, groups },
                    Err(e) => DaemonReply::Error {
                        reason: e.to_string(),
                    },
                },
                Ok(ClientRequest::Cancel { id }) => match self.cancel(id) {
                    Ok(()) => DaemonReply::Ack { id },
                    Err(e) => DaemonReply::Error {
                        reason: e.to_string(),
                    },
                },
                Ok(ClientRequest::Subscribe) => {
                    // Register before acking: a client that has seen the
                    // Ack is guaranteed every discovery broadcast after it.
                    let events = self.subscribe();
                    write_frame(&mut writer, &DaemonReply::Ack { id: 0 }.to_frame())?;
                    return self.stream_events(&mut writer, events);
                }
                Err(e) => DaemonReply::Error {
                    reason: e.to_string(),
                },
            };
            write_frame(&mut writer, &reply.to_frame())?;
        }
    }

    /// The subscription stream: forwards broadcast events to the client as
    /// `Event` frames until the client hangs up or the daemon stops.
    fn stream_events(
        &self,
        writer: &mut TcpStream,
        events: mpsc::Receiver<FleetEvent>,
    ) -> FsResult<()> {
        loop {
            match events.recv_timeout(Duration::from_millis(100)) {
                Ok(event) => {
                    write_frame(writer, &DaemonReply::Event(event).to_frame())?;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.stopping() {
                        return Ok(());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

/// Reads one client frame from a stream with a read timeout set: polls the
/// first length byte (so an idle connection notices a daemon stop), then
/// blocks until the frame completes. `Ok(None)` means the client hung up
/// cleanly, or the daemon is stopping and the connection was idle.
fn read_client_frame(stream: &mut TcpStream, stop: &AtomicBool) -> FsResult<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut have = 0usize;
    while have < len.len() {
        match stream.read(&mut len[have..]) {
            Ok(0) => return Ok(None),
            Ok(n) => have += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle between frames: a stopping daemon may drop the
                // connection. Mid-length (have > 0) the frame is already on
                // the wire, so finish reading it first.
                if have == 0 && stop.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(transport_err("read client frame length", e)),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FsError::Corrupted(format!(
            "client frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte protocol limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut have = 0usize;
    while have < payload.len() {
        match stream.read(&mut payload[have..]) {
            Ok(0) => {
                return Err(FsError::Device(
                    "worker transport: client hung up mid-frame".into(),
                ))
            }
            Ok(n) => have += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(transport_err("read client frame payload", e)),
        }
    }
    Ok(Some(payload))
}

/// A blocking client of a fleet daemon's control listener — what
/// `b3-sweep-fleet enqueue/status/results/cancel/watch` and the
/// integration tests use.
pub struct FleetClient {
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
}

impl FleetClient {
    /// Dials a daemon's control address (e.g. `127.0.0.1:7734`).
    pub fn connect(addr: &str) -> FsResult<FleetClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| transport_err(&format!("connect to fleet daemon {addr}"), e))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| transport_err("clone client stream", e))?;
        Ok(FleetClient {
            reader: std::io::BufReader::new(reader),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, request: &ClientRequest) -> FsResult<DaemonReply> {
        write_frame(&mut self.writer, &request.to_frame())?;
        let reply = DaemonReply::from_frame(&read_frame(&mut self.reader)?)?;
        if let DaemonReply::Error { reason } = &reply {
            return Err(FsError::InvalidArgument(format!(
                "fleet daemon refused the request: {reason}"
            )));
        }
        Ok(reply)
    }

    /// Enqueues a job; returns its queue id.
    pub fn enqueue(&mut self, job: &SweepJob) -> FsResult<u64> {
        match self.roundtrip(&ClientRequest::Enqueue(job.clone()))? {
            DaemonReply::Ack { id } => Ok(id),
            other => Err(unexpected_reply("Ack", &other)),
        }
    }

    /// Fetches every job's status row.
    pub fn status(&mut self) -> FsResult<Vec<JobStatus>> {
        match self.roundtrip(&ClientRequest::Status)? {
            DaemonReply::Status(rows) => Ok(rows),
            other => Err(unexpected_reply("StatusReport", &other)),
        }
    }

    /// Fetches one job's status and merged bug groups.
    pub fn results(&mut self, id: u64) -> FsResult<(JobStatus, GroupTable)> {
        match self.roundtrip(&ClientRequest::Results { id })? {
            DaemonReply::Results { status, groups } => Ok((status, groups)),
            other => Err(unexpected_reply("ResultsReport", &other)),
        }
    }

    /// Cancels a still-queued job.
    pub fn cancel(&mut self, id: u64) -> FsResult<()> {
        match self.roundtrip(&ClientRequest::Cancel { id })? {
            DaemonReply::Ack { .. } => Ok(()),
            other => Err(unexpected_reply("Ack", &other)),
        }
    }

    /// Upgrades this connection to a live discovery stream. Blocks until
    /// the daemon acknowledges the subscription: once this returns, every
    /// later discovery is guaranteed to arrive via
    /// [`FleetSubscription::next_event`].
    pub fn subscribe(mut self) -> FsResult<FleetSubscription> {
        write_frame(&mut self.writer, &ClientRequest::Subscribe.to_frame())?;
        match read_frame(&mut self.reader).and_then(|f| DaemonReply::from_frame(&f))? {
            DaemonReply::Ack { .. } => Ok(FleetSubscription {
                reader: self.reader,
            }),
            other => Err(unexpected_reply("Ack", &other)),
        }
    }
}

fn unexpected_reply(wanted: &str, got: &DaemonReply) -> FsError {
    FsError::Corrupted(format!(
        "fleet daemon replied out of protocol: wanted {wanted}, got {got:?}"
    ))
}

/// The receiving end of a `Subscribe`d connection.
pub struct FleetSubscription {
    reader: std::io::BufReader<TcpStream>,
}

impl FleetSubscription {
    /// Blocks for the next discovery event. `None` once the daemon closes
    /// the stream (stop or restart).
    pub fn next_event(&mut self) -> Option<FleetEvent> {
        match read_frame(&mut self.reader).and_then(|f| DaemonReply::from_frame(&f)) {
            Ok(DaemonReply::Event(event)) => Some(event),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_ace::Bounds;

    fn fleet_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("b3-fleet-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_job() -> SweepJob {
        SweepJob::new(Bounds::tiny(), 4)
    }

    #[test]
    fn job_state_codes_round_trip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_code(state.code()), Some(state));
        }
        assert_eq!(JobState::from_code(9), None);
    }

    #[test]
    fn client_frames_round_trip() {
        let job = tiny_job();
        let frame = ClientRequest::Enqueue(job.clone()).to_frame();
        match ClientRequest::from_frame(&frame).unwrap() {
            ClientRequest::Enqueue(decoded) => assert_eq!(decoded.scope(), job.scope()),
            other => panic!("expected Enqueue, got {other:?}"),
        }
        let frame = ClientRequest::Results { id: 7 }.to_frame();
        assert!(matches!(
            ClientRequest::from_frame(&frame).unwrap(),
            ClientRequest::Results { id: 7 }
        ));
        let status = JobStatus {
            id: 3,
            fs: "btrfs".into(),
            era: "4.16".into(),
            num_shards: 12,
            state: JobState::Failed,
            error: "boom".into(),
        };
        let frame = DaemonReply::Status(vec![status.clone()]).to_frame();
        match DaemonReply::from_frame(&frame).unwrap() {
            DaemonReply::Status(rows) => assert_eq!(rows, vec![status]),
            other => panic!("expected Status, got {other:?}"),
        }
        let event = FleetEvent {
            job: 3,
            skeleton: "link;fsync".into(),
            consequence: Consequence::FileMissing,
            count: 2,
        };
        let frame = DaemonReply::Event(event.clone()).to_frame();
        match DaemonReply::from_frame(&frame).unwrap() {
            DaemonReply::Event(decoded) => assert_eq!(decoded, event),
            other => panic!("expected Event, got {other:?}"),
        }
    }

    /// Satellite: the queue journal must survive a daemon killed between
    /// job-state transitions — jobs reload at their last durable state, a
    /// `Running` job re-queues, and nothing is lost or duplicated.
    #[test]
    fn queue_journal_survives_restart_between_transitions() {
        let dir = fleet_dir("restart");
        let (first, second) = {
            let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet opens");
            let first = fleet.enqueue(tiny_job()).expect("job 1 enqueues");
            let second = fleet.enqueue(tiny_job()).expect("job 2 enqueues");
            (first, second)
            // Dropped without any job running: the "kill" leaves two
            // queued jobs in the journal.
        };
        assert_eq!(first + 1, second);

        // Simulate dying mid-job: append the Running transition by hand,
        // exactly as run_next_job journals it before the sweep starts.
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(QUEUE_FILE))
                .expect("journal opens");
            file.write_all(&state_record(first, JobState::Running, ""))
                .expect("running record appends");
        }
        let offline = inspect_queue(&dir).expect("offline inspection reads the journal");
        assert_eq!(offline.len(), 2, "no job lost or duplicated");
        assert_eq!(offline[0].state, JobState::Running);
        assert_eq!(offline[1].state, JobState::Queued);

        // Reload: the mid-flight job goes back to Queued (its checkpoint
        // keeps the progress), ids are stable, and new ids don't collide.
        let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet reopens");
        let rows = fleet.status();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, first);
        assert_eq!(
            rows[0].state,
            JobState::Queued,
            "Running re-queues on reload"
        );
        assert_eq!(rows[1].id, second);
        assert_eq!(rows[1].state, JobState::Queued);
        let third = fleet.enqueue(tiny_job()).expect("job 3 enqueues");
        assert_eq!(third, second + 1, "ids keep counting across restarts");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a kill mid-append leaves a torn trailing record; the
    /// reload must ignore exactly that record — the job's previous durable
    /// state survives and the journal stays loadable.
    #[test]
    fn torn_trailing_record_preserves_the_prior_state() {
        let dir = fleet_dir("torn");
        let id = {
            let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet opens");
            let id = fleet.enqueue(tiny_job()).expect("job enqueues");
            fleet.cancel(id).expect("queued job cancels");
            id
        };

        // A state transition cut off mid-payload: tag + length promised,
        // payload truncated — the B3SG torn-tail signature.
        let path = dir.join(QUEUE_FILE);
        {
            use std::io::Write;
            let full = state_record(id, JobState::Done, "");
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("journal opens");
            file.write_all(&full[..full.len() - 3])
                .expect("torn record appends");
        }
        let rows = inspect_queue(&dir).expect("a torn tail must not make the queue unreadable");
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].state,
            JobState::Cancelled,
            "the torn record contributes nothing; the prior state survives"
        );

        // Reopening compacts the torn tail away; the journal replays clean.
        let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet reopens");
        assert_eq!(fleet.status()[0].state, JobState::Cancelled);
        let bytes = std::fs::read(&path).expect("journal reads");
        let jobs = replay_queue(&bytes, &path).expect("compacted journal replays");
        assert_eq!(jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Mid-journal corruption (not a torn tail) must refuse to load rather
    /// than silently dropping jobs, and unknown/duplicate records are
    /// errors too.
    #[test]
    fn corrupt_journal_bodies_are_rejected() {
        let path = PathBuf::from("queue.b3fq");
        // State record for a job that was never enqueued.
        let mut bytes = QUEUE_MAGIC.to_vec();
        bytes.extend_from_slice(&state_record(9, JobState::Done, ""));
        let error = replay_queue(&bytes, &path).unwrap_err();
        assert!(error.to_string().contains("unknown job"), "{error}");

        // Duplicate job record.
        let mut bytes = QUEUE_MAGIC.to_vec();
        bytes.extend_from_slice(&job_record(1, &tiny_job()));
        bytes.extend_from_slice(&job_record(1, &tiny_job()));
        let error = replay_queue(&bytes, &path).unwrap_err();
        assert!(error.to_string().contains("duplicate"), "{error}");

        // Unknown record tag.
        let mut bytes = QUEUE_MAGIC.to_vec();
        bytes.extend_from_slice(&segment_record(7, b"junk"));
        let error = replay_queue(&bytes, &path).unwrap_err();
        assert!(error.to_string().contains("unknown record tag"), "{error}");

        // Wrong magic.
        let error = replay_queue(b"NOPE", &path).unwrap_err();
        assert!(error.to_string().contains("magic"), "{error}");
    }

    #[test]
    fn cancel_refuses_running_and_terminal_jobs() {
        let dir = fleet_dir("cancel");
        let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet opens");
        let id = fleet.enqueue(tiny_job()).expect("job enqueues");
        fleet.cancel(id).expect("queued job cancels");
        let error = fleet.cancel(id).unwrap_err();
        assert!(error.to_string().contains("cancelled"), "{error}");
        let error = fleet.cancel(id + 100).unwrap_err();
        assert!(error.to_string().contains("no such job"), "{error}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction on open collapses the transition history to one job +
    /// one state record per job without changing what replays.
    #[test]
    fn reopen_compacts_the_journal_without_changing_its_content() {
        let dir = fleet_dir("compact");
        {
            let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet opens");
            let id = fleet.enqueue(tiny_job()).expect("job enqueues");
            // A noisy history: many redundant state appends.
            let mut state = fleet.locked();
            for _ in 0..20 {
                state.append_state(id, JobState::Running, "").unwrap();
                state.append_state(id, JobState::Queued, "").unwrap();
            }
        }
        let before = std::fs::metadata(dir.join(QUEUE_FILE)).unwrap().len();
        let fleet = FleetCoordinator::open(FleetConfig::new(&dir)).expect("fleet reopens");
        let after = std::fs::metadata(dir.join(QUEUE_FILE)).unwrap().len();
        assert!(
            after < before,
            "reopen must compact the history ({before} -> {after} bytes)"
        );
        let rows = fleet.status();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, JobState::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
