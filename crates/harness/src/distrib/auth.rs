//! Shared-secret worker authentication: HMAC-SHA-256 over a per-link
//! challenge nonce.
//!
//! Non-loopback TCP workers must prove knowledge of the coordinator's
//! shared secret before they are handed a job (`docs/PROTOCOL.md`,
//! *Authenticated TCP handshake*): the coordinator opens the link with a
//! `Challenge { nonce }` frame, and the worker's `Hello` must carry
//! `auth = hex(HMAC-SHA-256(secret, nonce))`. Loopback links (and the
//! spawned stdio/ssh transports, where the coordinator starts the worker
//! itself) skip the challenge.
//!
//! The workspace vendors no cryptography crate, so SHA-256 (FIPS 180-4)
//! and HMAC (RFC 2104) are implemented here directly and pinned against
//! the published test vectors. The goal is fleet hygiene — keeping a
//! stray or stale worker from joining a listener exposed beyond the
//! machine — not resistance against an active network attacker (frames
//! are neither encrypted nor per-message authenticated).

use std::sync::atomic::{AtomicU64, Ordering};

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padding: 0x80, zeros to 56 mod 64, then the bit length as u64 BE.
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    for block in message.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    let mut digest = [0u8; 32];
    for (chunk, word) in digest.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// HMAC-SHA-256 of `message` under `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut block_key = [0u8; 64];
    if key.len() > 64 {
        block_key[..32].copy_from_slice(&sha256(key));
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + message.len());
    inner.extend(block_key.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(message);
    let inner_digest = sha256(&inner);
    let mut outer = Vec::with_capacity(64 + 32);
    outer.extend(block_key.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The authentication tag a challenged worker puts in its `Hello`:
/// lowercase hex of `HMAC-SHA-256(secret, nonce)`.
pub fn auth_tag(secret: &str, nonce: &str) -> String {
    hex(&hmac_sha256(secret.as_bytes(), nonce.as_bytes()))
}

/// True when `tag` authenticates `nonce` under `secret`. Comparison is
/// over the full fixed-length hex tag; a malformed tag simply fails.
pub fn verify_auth_tag(secret: &str, nonce: &str, tag: &str) -> bool {
    // Constant-time-ish: always compare the whole expected tag.
    let expected = auth_tag(secret, nonce);
    expected.len() == tag.len()
        && expected
            .bytes()
            .zip(tag.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
}

/// A fresh per-link challenge nonce: unpredictable enough that a replayed
/// old `Hello` never matches (process id, wall clock, monotonic counter,
/// and a stack address, hashed together).
pub fn make_nonce() -> String {
    static NONCE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = NONCE_SEQ.fetch_add(1, Ordering::Relaxed);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let stack_probe = 0u8;
    let mut seed = Vec::with_capacity(32);
    seed.extend_from_slice(&(std::process::id() as u64).to_le_bytes());
    seed.extend_from_slice(&clock.to_le_bytes());
    seed.extend_from_slice(&seq.to_le_bytes());
    seed.extend_from_slice(&(&stack_probe as *const u8 as u64).to_le_bytes());
    hex(&sha256(&seed)[..16])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST example vectors.
    #[test]
    fn sha256_matches_the_published_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block with a 55..64-byte tail (padding edge).
        assert_eq!(
            hex(&sha256(&[0x61u8; 64])),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    /// RFC 4231 test cases 1 and 2.
    #[test]
    fn hmac_sha256_matches_rfc_4231() {
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 6: a key longer than the block size is
        // pre-hashed.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn auth_tags_verify_and_reject_wrong_secrets() {
        let nonce = make_nonce();
        let tag = auth_tag("fleet-secret", &nonce);
        assert!(verify_auth_tag("fleet-secret", &nonce, &tag));
        assert!(!verify_auth_tag("other-secret", &nonce, &tag));
        assert!(!verify_auth_tag("fleet-secret", "other-nonce", &tag));
        assert!(!verify_auth_tag("fleet-secret", &nonce, ""));
    }

    #[test]
    fn nonces_are_unique_per_call() {
        let a = make_nonce();
        let b = make_nonce();
        assert_ne!(a, b);
        assert_eq!(a.len(), 32, "nonce is 16 hashed bytes as hex");
    }
}
