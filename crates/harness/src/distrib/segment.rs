//! The checkpoint file: an append-only segment log.
//!
//! This module is the *implementation* of the on-disk format; the
//! authoritative human-readable specification — record grammar, compaction
//! triggers, torn-tail rules, magic history, and a worked hexdump — is
//! `docs/FORMATS.md` at the repository root, cross-checked against this
//! code by the `docs` integration test.
//!
//! Layout: 4 magic bytes ([`SEGMENT_MAGIC`], `"B3SG"`), then records of
//! `tag(u8) | len(u32 LE) | payload`. A [`REC_SNAPSHOT`] record holds a full
//! serialized [`SweepCheckpoint`]; a [`REC_DELTA`] record holds one
//! `shard(u32 LE) | ShardResult` pair belonging to the most recent preceding
//! snapshot. Snapshots are only ever written by an atomic tmp+rename (so
//! they are all-or-nothing); deltas are appended with an fdatasync each, so
//! a crash can leave at most one torn record at the tail, which the loader
//! detects by its length field and ignores — the shard it carried is simply
//! re-run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use b3_vfs::codec::Decoder;
use b3_vfs::error::{FsError, FsResult};

use crate::sweep::{ShardResult, SweepCheckpoint};

/// `"B3SG"`: magic prefix of segment-format checkpoint files, stored as
/// those four ASCII bytes in file order.
pub const SEGMENT_MAGIC: [u8; 4] = *b"B3SG";
/// Record tag: a full serialized [`SweepCheckpoint`] (one per compaction).
pub const REC_SNAPSHOT: u8 = 1;
/// Record tag: one `shard(u32 LE) | ShardResult` merged since the snapshot.
pub const REC_DELTA: u8 = 2;
/// Compaction floor: deltas are allowed to grow to at least this many bytes
/// before a compaction is considered, so tiny sweeps don't thrash rewrites.
pub const MIN_COMPACT_BYTES: u64 = 64 << 10;

/// Frames one record of the segment log.
pub(super) fn segment_record(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(payload.len() + 5);
    record.push(tag);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(payload);
    record
}

/// The bytes of a fresh (compacted) segment file holding one snapshot.
pub(super) fn snapshot_file_bytes(checkpoint: &SweepCheckpoint) -> Vec<u8> {
    let payload = checkpoint.to_bytes();
    let mut bytes = Vec::with_capacity(payload.len() + 9);
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&segment_record(REC_SNAPSHOT, &payload));
    bytes
}

/// Replays a segment file: the latest snapshot, with every subsequent delta
/// merged in. A truncated trailing record (the signature a killed writer
/// leaves) is ignored; corruption anywhere else is an error.
fn replay_segment_file(bytes: &[u8], path: &Path) -> FsResult<SweepCheckpoint> {
    let corrupt =
        |what: String| FsError::Corrupted(format!("segment checkpoint {}: {what}", path.display()));
    let mut pos = SEGMENT_MAGIC.len();
    let mut current: Option<SweepCheckpoint> = None;
    while bytes.len() - pos >= 5 {
        let tag = bytes[pos];
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let end = pos + 5 + len;
        if end > bytes.len() {
            // Torn tail: the writer died mid-append. The record's shard is
            // lost (and will be re-run); everything before it is intact.
            break;
        }
        let payload = &bytes[pos + 5..end];
        match tag {
            REC_SNAPSHOT => current = Some(SweepCheckpoint::from_bytes(payload)?),
            REC_DELTA => {
                let checkpoint = current
                    .as_mut()
                    .ok_or_else(|| corrupt("delta record before any snapshot".into()))?;
                let mut dec = Decoder::new(payload);
                let shard = dec.get_u32()?;
                if shard as usize >= checkpoint.num_shards() {
                    return Err(corrupt(format!(
                        "delta for shard {shard} of a {}-shard sweep",
                        checkpoint.num_shards()
                    )));
                }
                let result = ShardResult::decode(&mut dec)?;
                checkpoint.record(shard, result);
            }
            other => return Err(corrupt(format!("unknown record tag {other:#x}"))),
        }
        pos = end;
    }
    current.ok_or_else(|| corrupt("no snapshot record".into()))
}

/// Per-record statistics of a segment checkpoint file — used by tests and
/// resume diagnostics to see how the file was produced (one snapshot per
/// compaction, one delta per merged shard since).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Snapshot (compaction) records.
    pub snapshots: usize,
    /// Per-shard delta records.
    pub deltas: usize,
    /// Bytes of a torn trailing record, ignored on load (0 for a cleanly
    /// written file).
    pub truncated_tail_bytes: usize,
}

/// Scans the record framing of a segment checkpoint file (payloads are not
/// decoded). Errors on files that are not in the segment format.
pub fn segment_stats(path: &Path) -> FsResult<SegmentStats> {
    let bytes = std::fs::read(path)
        .map_err(|e| FsError::Device(format!("read checkpoint {}: {e}", path.display())))?;
    if bytes.len() < 4 || bytes[0..4] != SEGMENT_MAGIC {
        return Err(FsError::InvalidArgument(format!(
            "{} is not a segment-format checkpoint",
            path.display()
        )));
    }
    let mut stats = SegmentStats {
        snapshots: 0,
        deltas: 0,
        truncated_tail_bytes: 0,
    };
    let mut pos = SEGMENT_MAGIC.len();
    while bytes.len() - pos >= 5 {
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let end = pos + 5 + len;
        if end > bytes.len() {
            break;
        }
        match bytes[pos] {
            REC_SNAPSHOT => stats.snapshots += 1,
            REC_DELTA => stats.deltas += 1,
            other => {
                return Err(FsError::Corrupted(format!(
                    "segment checkpoint {}: unknown record tag {other:#x}",
                    path.display()
                )))
            }
        }
        pos = end;
    }
    stats.truncated_tail_bytes = bytes.len() - pos;
    Ok(stats)
}

/// Loads a checkpoint file written by [`save_checkpoint`] or a coordinator's
/// `Persister`. Accepts both the segment format (replaying deltas onto the
/// latest snapshot, tolerating a torn trailing record) and a bare serialized
/// checkpoint (the pre-segment legacy format). Returns `Ok(None)` when the
/// file does not exist.
pub fn load_checkpoint(path: &Path) -> FsResult<Option<SweepCheckpoint>> {
    match std::fs::read(path) {
        Ok(bytes) => {
            if bytes.len() >= 4 && bytes[0..4] == SEGMENT_MAGIC {
                replay_segment_file(&bytes, path).map(Some)
            } else {
                SweepCheckpoint::from_bytes(&bytes).map(Some)
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(FsError::Device(format!(
            "read checkpoint {}: {e}",
            path.display()
        ))),
    }
}

/// Atomically writes `bytes` to `path`: a uniquely-named sibling temp file
/// (per process *and* per call, so concurrent writers never clobber each
/// other's temp), fsynced before the rename, with the parent directory
/// fsynced after — rename-without-fsync is precisely the bug class this
/// project tests for. A failed attempt removes its temp file.
pub(super) fn write_atomic(path: &Path, bytes: &[u8]) -> FsResult<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fn inner(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = PathBuf::from(tmp);
        let write_and_rename = |tmp: &Path| -> std::io::Result<()> {
            let mut file = std::fs::File::create(tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(tmp, path)
        };
        if let Err(error) = write_and_rename(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            return Err(error);
        }
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    }
    inner(path, bytes)
        .map_err(|e| FsError::Device(format!("persist checkpoint {}: {e}", path.display())))
}

/// Persists a checkpoint as a one-snapshot segment file, atomically (a
/// temp-file write followed by a rename, so a kill mid-write never corrupts
/// the file).
pub fn save_checkpoint(path: &Path, checkpoint: &SweepCheckpoint) -> FsResult<()> {
    write_atomic(path, &snapshot_file_bytes(checkpoint))
}

/// Incremental checkpoint persistence over the segment log.
///
/// Opening the persister compacts the file to a fresh snapshot (one atomic
/// rewrite per *run*); each merged shard then costs one small fdatasync'd
/// delta append instead of a full-file rewrite, and the file is re-compacted
/// only when the appended deltas outgrow the last snapshot. All writes
/// happen *outside* the coordinator mutex (encoding is memory-speed and
/// stays under it); the persister's own mutex serializes the file, and the
/// version check keeps a compaction encoded before a concurrent delta from
/// wiping that delta off disk.
pub(super) struct Persister {
    path: PathBuf,
    state: Mutex<PersisterState>,
}

struct PersisterState {
    /// Append handle to the live segment file (replaced on compaction,
    /// since the rename puts a new inode at the path).
    file: std::fs::File,
    /// Size of the last compacted file (its lone snapshot record).
    snapshot_bytes: u64,
    /// Delta bytes appended since that compaction.
    segment_bytes: u64,
    /// Newest merge version recorded on disk (delta or compaction).
    last_version: u64,
    /// Set when a failed append may have left a torn record that could
    /// *not* be truncated away. Appending anything after such a record
    /// would let its declared length swallow the next record on replay —
    /// breaking the "torn records only ever sit at the tail" invariant —
    /// so further appends are refused until a compaction (an atomic full
    /// rewrite) replaces the file.
    wedged: bool,
}

impl Persister {
    /// Compacts `checkpoint` to `path` (atomically replacing whatever was
    /// there — the caller has already loaded and validated it) and opens
    /// the file for delta appends.
    pub(super) fn open(path: &Path, checkpoint: &SweepCheckpoint) -> FsResult<Persister> {
        let bytes = snapshot_file_bytes(checkpoint);
        write_atomic(path, &bytes)?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| FsError::Device(format!("open checkpoint {}: {e}", path.display())))?;
        Ok(Persister {
            path: path.to_path_buf(),
            state: Mutex::new(PersisterState {
                file,
                snapshot_bytes: bytes.len() as u64,
                segment_bytes: 0,
                last_version: 0,
                wedged: false,
            }),
        })
    }

    /// Durably appends one delta record (`payload` is the encoded
    /// `shard | ShardResult` of merge number `version`). Returns true when
    /// the deltas have outgrown the snapshot and a compaction is due.
    ///
    /// A failed append (ENOSPC, EIO…) may have written a partial record; the
    /// partial bytes are truncated away so the file stays replayable, and if
    /// even the truncation fails the persister refuses further appends
    /// (appending a complete record *after* torn bytes would let the torn
    /// record's declared length swallow it on replay) until a compaction
    /// atomically rewrites the file.
    pub(super) fn append_delta(&self, version: u64, payload: &[u8]) -> FsResult<bool> {
        use std::io::Write;
        let record = segment_record(REC_DELTA, payload);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.wedged {
            return Err(FsError::Device(format!(
                "append checkpoint {}: a previous failed append left a torn \
                 record that could not be truncated",
                self.path.display()
            )));
        }
        let append = state
            .file
            .write_all(&record)
            .and_then(|()| state.file.sync_data());
        if let Err(error) = append {
            // Roll the file back to its last-good length; on success the
            // torn bytes are gone and later appends are safe again.
            let good_len = state.snapshot_bytes + state.segment_bytes;
            if state.file.set_len(good_len).is_err() {
                state.wedged = true;
            }
            return Err(FsError::Device(format!(
                "append checkpoint {}: {error}",
                self.path.display()
            )));
        }
        state.segment_bytes += record.len() as u64;
        state.last_version = state.last_version.max(version);
        Ok(state.segment_bytes > state.snapshot_bytes.max(MIN_COMPACT_BYTES))
    }

    /// Atomically rewrites the file as one snapshot (the checkpoint as of
    /// merge number `version`), dropping the replayed deltas. Skipped when
    /// a newer delta is already on disk — the snapshot would not contain
    /// it, so compacting over it would lose a persisted shard.
    pub(super) fn compact(&self, version: u64, snapshot_payload: &[u8]) -> FsResult<()> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if version < state.last_version {
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(snapshot_payload.len() + 9);
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&segment_record(REC_SNAPSHOT, snapshot_payload));
        write_atomic(&self.path, &bytes)?;
        state.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| {
                FsError::Device(format!("reopen checkpoint {}: {e}", self.path.display()))
            })?;
        state.snapshot_bytes = bytes.len() as u64;
        state.segment_bytes = 0;
        state.last_version = version;
        // The atomic rewrite replaced whatever a failed append left behind.
        state.wedged = false;
        Ok(())
    }
}
