//! The coordinator/worker wire protocol: length-prefixed, codec-serialized
//! frames.
//!
//! This module is the *implementation* of the protocol; the authoritative
//! human-readable specification — frame grammar, handshake sequence, and
//! error behavior — is `docs/PROTOCOL.md` at the repository root, and the
//! [`wire`] constants below are cross-checked against the tag table in that
//! document by the `docs` integration test. Every frame travels over a
//! [`Transport`](super::transport::Transport) link: the same bytes flow
//! whether the link is a child's stdio, a TCP socket, or an ssh pipe.
//!
//! A session is strictly ordered:
//!
//! 1. on a link that requires authentication (a non-loopback TCP worker,
//!    see [`super::auth`]) the coordinator first sends
//!    [`ToWorker::Challenge`] with a fresh nonce,
//! 2. the worker sends [`Hello`] (protocol version + calibrated throughput
//!    + the HMAC answer to the challenge, empty when unchallenged),
//! 3. the coordinator validates the version (and the challenge answer) and
//!    replies with `Job` (the [`SweepJob`] plus the checkpoint fingerprint
//!    it expects) — on unauthenticated links the `Job` is sent eagerly,
//!    crossing the `Hello` on the wire,
//! 4. the worker recomputes the fingerprint from the decoded job and either
//!    [`FromWorker::Reject`]s a mismatch or starts the `Claim` →
//!    `Assign`/`Shutdown` → `ShardDone` loop.
//!
//! The fleet daemon speaks a second frame family over the same envelope —
//! the client frames in [`super::fleet`] (`Enqueue`/`Status`/…, tags
//! `0x10`–`0x14` and `0x90`–`0x94`) — documented alongside the session
//! frames in `docs/PROTOCOL.md`.

use std::io::{Read, Write};

use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};

use super::SweepJob;
use crate::sweep::ShardResult;

/// Version of the frame grammar and handshake. Bumped on any change to
/// frame tags, payload layouts, or the handshake sequence; a coordinator
/// refuses a worker whose [`Hello`] carries a different version (a
/// mismatched binary would desync on the very next frame).
///
/// History: v1 was the PR 3 stdio-only protocol (no handshake); v2 added
/// the `Hello`/`Reject` handshake, the job fingerprint echo, and grouped
/// report frames; v3 added the prune mode to `SweepJob` and the
/// pruned/audited counters + audit-failure list to `ShardResult`
/// (representative sweeps); v4 added the shared-secret `Challenge` frame
/// and the `auth` field in `Hello` (authenticated TCP workers), plus the
/// fleet daemon's client frames (`Enqueue`/`Status`/`Results`/`Cancel`/
/// `Subscribe` and their replies); v5 widened the crash-point policy in
/// `SweepJob` from an `All` bool to a one-byte policy code plus the triage
/// audit budget (`CrashPointPolicy::AllTriaged`, see docs/ANALYSIS.md);
/// v6 added the job-space kind byte ([`wire::SPACE_FS`]/[`wire::SPACE_APP`])
/// to `SweepJob`, so a job can carry either the ACE file-system bounds or
/// the application transaction bounds plus the WAL/KV engine profile
/// (`b3_app`, see docs/APP.md).
pub const PROTOCOL_VERSION: u32 = 6;

/// Frame tag bytes. Coordinator-to-worker tags occupy the low range,
/// worker-to-coordinator tags have the high bit set — so a desynced stream
/// (a frame read in the wrong direction) fails tag dispatch immediately
/// instead of mis-parsing a payload. The fleet daemon's client protocol
/// follows the same convention one range up: client-to-daemon tags sit at
/// `0x10`–`0x14`, daemon-to-client tags at `0x90`–`0x94`.
pub mod wire {
    /// Coordinator → worker: the sweep job + expected checkpoint fingerprint.
    pub const JOB: u8 = 0x01;
    /// Coordinator → worker: a batch of shard indices to run.
    pub const ASSIGN: u8 = 0x02;
    /// Coordinator → worker: no more work; exit cleanly.
    pub const SHUTDOWN: u8 = 0x03;
    /// Coordinator → worker: shared-secret challenge nonce (auth links only).
    pub const CHALLENGE: u8 = 0x04;
    /// Worker → coordinator: version + capability handshake (first frame).
    pub const HELLO: u8 = 0x80;
    /// Worker → coordinator: idle, requesting shards.
    pub const CLAIM: u8 = 0x81;
    /// Worker → coordinator: one assigned shard ran to completion.
    pub const SHARD_DONE: u8 = 0x82;
    /// Worker → coordinator: the job was refused (fingerprint mismatch).
    pub const REJECT: u8 = 0x83;
    /// Client → daemon: add a sweep job to the fleet queue.
    pub const ENQUEUE: u8 = 0x10;
    /// Client → daemon: report every job's state.
    pub const STATUS: u8 = 0x11;
    /// Client → daemon: fetch one job's merged bug groups.
    pub const RESULTS: u8 = 0x12;
    /// Client → daemon: cancel a still-queued job.
    pub const CANCEL: u8 = 0x13;
    /// Client → daemon: stream bug-group discoveries as they are merged.
    pub const SUBSCRIBE: u8 = 0x14;
    /// Daemon → client: a job id acknowledging `Enqueue` or `Cancel`.
    pub const ACK: u8 = 0x90;
    /// Daemon → client: the queue's job states (`Status` reply).
    pub const STATUS_REPORT: u8 = 0x91;
    /// Daemon → client: one job's state + merged bug groups (`Results` reply).
    pub const RESULTS_REPORT: u8 = 0x92;
    /// Daemon → client: the request failed (reason attached).
    pub const CLIENT_ERROR: u8 = 0x93;
    /// Daemon → client: one newly merged bug group (subscription stream).
    pub const EVENT: u8 = 0x94;
    /// Job-space kind inside a `Job` frame: ACE file-system bounds follow.
    pub const SPACE_FS: u8 = 0x00;
    /// Job-space kind inside a `Job` frame: app transaction bounds + one
    /// engine-profile byte follow.
    pub const SPACE_APP: u8 = 0x01;
}

/// Largest frame either side accepts. Real frames are far smaller (a Job
/// is a few KB, a ShardDone carries one shard's grouped reports); the cap
/// exists so a desynced stream — stray bytes on a worker's stdout, say —
/// surfaces as a protocol error instead of a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

pub(super) fn transport_err(context: &str, error: std::io::Error) -> FsError {
    FsError::Device(format!("worker transport: {context}: {error}"))
}

/// Writes one length-prefixed frame: a little-endian `u32` payload length,
/// then the payload, then a flush (frames are the protocol's only unit of
/// buffering).
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> FsResult<()> {
    writer
        .write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| writer.write_all(payload))
        .and_then(|()| writer.flush())
        .map_err(|e| transport_err("write frame", e))
}

/// Reads one length-prefixed frame. A declared length beyond
/// [`MAX_FRAME_BYTES`] is rejected before any allocation; a stream that
/// ends mid-frame (short read) surfaces the underlying IO error.
pub fn read_frame(reader: &mut impl Read) -> FsResult<Vec<u8>> {
    let mut len = [0u8; 4];
    reader
        .read_exact(&mut len)
        .map_err(|e| transport_err("read frame length", e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FsError::Corrupted(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte protocol limit \
             (desynced stream?)"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| transport_err("read frame payload", e))?;
    Ok(payload)
}

/// The worker's opening handshake frame: which protocol it speaks and how
/// fast it measured itself to be.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// The worker binary's [`PROTOCOL_VERSION`]. The coordinator refuses
    /// any other value — and never respawns after a refusal, since the
    /// same binary would fail the same way.
    pub version: u32,
    /// Workloads per second measured by a short calibration burst on the
    /// worker's host, or `0.0` when calibration was disabled. The
    /// coordinator seeds the worker's shard-batch sizing from this until
    /// observed throughput takes over (capability negotiation); it is a
    /// relative capability signal, not a promise of sweep throughput.
    pub calibrated_rate: f64,
    /// Answer to a [`ToWorker::Challenge`]: lowercase hex of
    /// `HMAC-SHA-256(secret, nonce)` (see [`super::auth`]). Empty on links
    /// that were not challenged (spawned stdio/ssh workers, loopback TCP).
    pub auth: String,
}

/// Coordinator-to-worker messages.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// The sweep job, plus the checkpoint fingerprint the coordinator
    /// computed for it. The worker recomputes the fingerprint from the
    /// decoded job; a difference means the two binaries disagree about
    /// what the job *means* (e.g. a changed enumeration order), so the
    /// worker must refuse rather than silently produce unmergeable
    /// results.
    Job {
        /// Everything the worker needs to reproduce its slice of the sweep.
        /// Boxed: the job description dwarfs every other frame, and keeping
        /// it inline would bloat each `ToWorker` value to its size.
        job: Box<SweepJob>,
        /// `job.empty_checkpoint().fingerprint()` as the coordinator sees it.
        fingerprint: String,
    },
    /// Shard indices to run, in order. Sized by the worker's effective
    /// throughput (observed EWMA, seeded by the calibrated `Hello` rate)
    /// when capability-based batching is on.
    Assign(Vec<u32>),
    /// No more work; the worker exits cleanly.
    Shutdown,
    /// Shared-secret challenge, sent *before* the `Job` on links that
    /// require authentication (non-loopback TCP workers). The worker must
    /// answer in its `Hello.auth` field; a worker without the secret can
    /// only `Reject`. Unauthenticated links never see this frame.
    Challenge {
        /// Fresh per-link nonce the worker's HMAC must cover.
        nonce: String,
    },
}

impl ToWorker {
    /// Encodes this message as one frame payload.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ToWorker::Job { job, fingerprint } => {
                enc.put_u8(wire::JOB);
                job.encode(&mut enc);
                enc.put_str(fingerprint);
            }
            ToWorker::Assign(shards) => {
                enc.put_u8(wire::ASSIGN);
                enc.put_u64(shards.len() as u64);
                for shard in shards {
                    enc.put_u32(*shard);
                }
            }
            ToWorker::Shutdown => enc.put_u8(wire::SHUTDOWN),
            ToWorker::Challenge { nonce } => {
                enc.put_u8(wire::CHALLENGE);
                enc.put_str(nonce);
            }
        }
        enc.finish()
    }

    /// Decodes one coordinator-to-worker frame payload.
    pub fn from_frame(frame: &[u8]) -> FsResult<ToWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            wire::JOB => {
                let job = Box::new(SweepJob::decode(&mut dec)?);
                let fingerprint = dec.get_str()?;
                Ok(ToWorker::Job { job, fingerprint })
            }
            wire::ASSIGN => {
                let count = dec.get_u64()? as usize;
                // Validate the declared length against the remaining frame
                // before allocating, so a corrupt frame errors instead of
                // attempting a huge allocation.
                if count > dec.remaining() / 4 {
                    return Err(FsError::Corrupted(format!(
                        "assignment declares {count} shards but only {} bytes remain",
                        dec.remaining()
                    )));
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(dec.get_u32()?);
                }
                Ok(ToWorker::Assign(shards))
            }
            wire::SHUTDOWN => Ok(ToWorker::Shutdown),
            wire::CHALLENGE => Ok(ToWorker::Challenge {
                nonce: dec.get_str()?,
            }),
            tag => Err(FsError::Corrupted(format!(
                "unknown coordinator message tag {tag:#x}"
            ))),
        }
    }
}

/// Worker-to-coordinator messages.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// The opening handshake (must be the worker's first frame, and must
    /// never repeat).
    Hello(Hello),
    /// The worker is idle and wants shards.
    Claim,
    /// One assigned shard ran to completion.
    ShardDone {
        /// The shard index the result belongs to.
        shard: u32,
        /// The shard's grouped (exemplar + count) result.
        result: ShardResult,
    },
    /// The worker refuses the job (fingerprint mismatch) and is about to
    /// exit. Terminal: the coordinator must not respawn, since the same
    /// binary would refuse again.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
}

impl FromWorker {
    /// Encodes this message as one frame payload.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            FromWorker::Hello(hello) => {
                enc.put_u8(wire::HELLO);
                enc.put_u32(hello.version);
                enc.put_u64(hello.calibrated_rate.to_bits());
                enc.put_str(&hello.auth);
            }
            FromWorker::Claim => enc.put_u8(wire::CLAIM),
            FromWorker::ShardDone { shard, result } => {
                enc.put_u8(wire::SHARD_DONE);
                enc.put_u32(*shard);
                result.encode(&mut enc);
            }
            FromWorker::Reject { reason } => {
                enc.put_u8(wire::REJECT);
                enc.put_str(reason);
            }
        }
        enc.finish()
    }

    /// Decodes one worker-to-coordinator frame payload.
    pub fn from_frame(frame: &[u8]) -> FsResult<FromWorker> {
        let mut dec = Decoder::new(frame);
        match dec.get_u8()? {
            wire::HELLO => {
                let version = dec.get_u32()?;
                let calibrated_rate = f64::from_bits(dec.get_u64()?);
                let auth = dec.get_str()?;
                Ok(FromWorker::Hello(Hello {
                    version,
                    calibrated_rate,
                    auth,
                }))
            }
            wire::CLAIM => Ok(FromWorker::Claim),
            wire::SHARD_DONE => Ok(FromWorker::ShardDone {
                shard: dec.get_u32()?,
                result: ShardResult::decode(&mut dec)?,
            }),
            wire::REJECT => Ok(FromWorker::Reject {
                reason: dec.get_str()?,
            }),
            tag => Err(FsError::Corrupted(format!(
                "unknown worker message tag {tag:#x}"
            ))),
        }
    }
}

/// Validates a worker's handshake against this coordinator's protocol
/// version. A mismatch is terminal for the worker slot: respawning the
/// same binary cannot fix it.
pub fn validate_hello(hello: &Hello) -> FsResult<()> {
    if hello.version != PROTOCOL_VERSION {
        return Err(FsError::InvalidArgument(format!(
            "worker speaks protocol version {} but this coordinator speaks {} \
             (mismatched binaries?)",
            hello.version, PROTOCOL_VERSION
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_including_rate_and_auth() {
        let hello = Hello {
            version: PROTOCOL_VERSION,
            calibrated_rate: 1234.5678,
            auth: "0123abcd".into(),
        };
        let frame = FromWorker::Hello(hello.clone()).to_frame();
        match FromWorker::from_frame(&frame).unwrap() {
            FromWorker::Hello(decoded) => assert_eq!(decoded, hello),
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn challenge_round_trips_its_nonce() {
        let frame = ToWorker::Challenge {
            nonce: "feedface".into(),
        }
        .to_frame();
        match ToWorker::from_frame(&frame).unwrap() {
            ToWorker::Challenge { nonce } => assert_eq!(nonce, "feedface"),
            other => panic!("expected Challenge, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected_and_current_version_accepted() {
        assert!(validate_hello(&Hello {
            version: PROTOCOL_VERSION,
            calibrated_rate: 0.0,
            auth: String::new(),
        })
        .is_ok());
        let stale = Hello {
            version: PROTOCOL_VERSION + 1,
            calibrated_rate: 0.0,
            auth: String::new(),
        };
        let error = validate_hello(&stale).unwrap_err();
        assert!(error.to_string().contains("protocol version"));
    }

    #[test]
    fn reject_round_trips_its_reason() {
        let frame = FromWorker::Reject {
            reason: "fingerprint mismatch".into(),
        }
        .to_frame();
        match FromWorker::from_frame(&frame).unwrap() {
            FromWorker::Reject { reason } => assert_eq!(reason, "fingerprint mismatch"),
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_refused_before_allocation() {
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = std::io::Cursor::new(stream);
        let error = read_frame(&mut reader).unwrap_err();
        assert!(error.to_string().contains("protocol limit"));
    }
}
