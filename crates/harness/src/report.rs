//! Plain-text table rendering used by the benches and examples that
//! regenerate the paper's tables.

use crate::postprocess::BugGroup;

/// Renders deduplicated bug groups as the standard four-column table
/// (skeleton, consequence, raw-report count, exemplar workload) the
/// examples print — one place to keep the format consistent between the
/// quickstart pipeline and the sweep coordinator.
pub fn bug_group_table(groups: &[BugGroup]) -> Table {
    let mut table = Table::new(vec![
        "skeleton",
        "consequence",
        "reports",
        "example workload",
    ]);
    for group in groups {
        table.row(vec![
            group.skeleton.clone(),
            group.consequence.to_string(),
            group.count.to_string(),
            group.example.workload_name.clone(),
        ]);
    }
    table
}

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (missing cells render empty, extra cells are kept).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, header) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(header.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new(vec!["name", "count"]);
        table.row(vec!["seq-1".into(), "300".into()]);
        table.row(vec!["seq-2-long-name".into(), "254000".into()]);
        let text = table.render();
        assert!(text.contains("seq-2-long-name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut table = Table::new(vec!["a", "b"]);
        table.row(vec!["only-one".into()]);
        table.row(vec!["x".into(), "y".into(), "extra".into()]);
        let text = table.render();
        assert!(text.contains("extra"));
    }
}
