//! The B3 harness: everything needed to run the paper's evaluation.
//!
//! * [`study`] — the crash-consistency bug study of §3 (Tables 1 and 2) as
//!   data, with the breakdown computations that regenerate the tables.
//! * [`corpus`] — the reproduction corpus: the 26 previously-reported bugs of
//!   Appendix 9.1 and the 11 new bugs of Table 5 / Appendix 9.2, each as an
//!   executable workload plus metadata (file system, kernel era, expected
//!   consequence), and the machinery to replay them under CrashMonkey.
//! * [`runner`] — a multi-threaded runner that drives CrashMonkey over a
//!   stream of ACE-generated workloads (the in-process analogue of the
//!   paper's 65-node / 780-VM Chameleon cluster), pulling chunks from the
//!   stream and reporting progress periodically.
//! * [`sweep`] — sharded, resumable sweeps: workers steal whole generator
//!   shards ([`b3_ace::Bounds::shard`]), completed shards are recorded in a
//!   serializable [`sweep::SweepCheckpoint`], and a killed sweep resumes
//!   where it left off.
//! * [`distrib`] — multi-process *and* multi-host fan-out over the same
//!   shard machinery: a coordinator process owns the shard queue and
//!   checkpoint file, workers claim shards over a framed protocol carried
//!   by a pluggable transport (stdio children, TCP, ssh pipes; see
//!   `docs/PROTOCOL.md`), dead workers are respawned within a budget, and
//!   every returned shard result is merged
//!   ([`sweep::SweepCheckpoint::merge`]) and persisted — the true analogue
//!   of the paper's 780-VM cluster. On top of it sits the fleet daemon
//!   ([`distrib::FleetCoordinator`], the `b3-sweep-fleet` binary): a
//!   long-lived multi-tenant coordinator with a journaled job queue,
//!   client frames over TCP, and live bug-group discovery streams.
//! * [`dedup`] — first-class report deduplication: the grouped
//!   (exemplar + count) [`dedup::GroupTable`] that shard results, checkpoint
//!   aggregation, and post-hoc grouping all share, bounding sweep memory and
//!   checkpoint size by bug diversity instead of bug density.
//! * [`postprocess`] — bug-report de-duplication: grouping by skeleton and
//!   consequence, and filtering against the database of known bugs (§5.3,
//!   Figure 5).
//! * [`baseline`] — the comparison points discussed in §2 and §7: an
//!   xfstests-style handcrafted regression suite and a random (fuzz-style)
//!   workload generator.
//! * [`report`] — plain-text table formatting used by the benches and
//!   examples that regenerate the paper's tables.

pub mod appsweep;
pub mod baseline;
pub mod corpus;
pub mod dedup;
pub mod distrib;
pub mod postprocess;
pub mod report;
pub mod runner;
pub mod study;
pub mod sweep;

pub use appsweep::AppSweep;
pub use corpus::{CorpusEntry, FsKind, ReproStatus};
pub use dedup::{GroupEntry, GroupTable};
pub use distrib::{
    run_distributed, run_with_transport, run_with_transport_hooked, ChildTransport, DistribConfig,
    DistribHooks, DistribOutcome, FleetClient, FleetConfig, FleetCoordinator, FleetEvent, JobState,
    JobStatus, SshTransport, SweepJob, SweepSpace, TcpTransport, Transport, WorkerCommand,
    WorkerLink, WorkerOptions,
};
pub use postprocess::{group_reports, BugGroup, KnownBugDatabase};
pub use report::{bug_group_table, Table};
pub use runner::{run_stream, run_stream_observed, RunConfig, RunSummary};
pub use sweep::{AuditFailure, Progress, PruneMode, Sweep, SweepCheckpoint, WorkerThroughput};
