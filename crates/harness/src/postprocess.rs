//! Bug-report post-processing (§5.3, Figure 5).
//!
//! A single underlying bug typically causes many generated workloads to fail
//! their checks. The paper groups reports by *skeleton* (the sequence of
//! core operations) and *consequence*, inspects one representative per
//! group, and suppresses reports that match an already-known bug recorded in
//! a database of (workload, consequence) pairs.

use std::collections::BTreeMap;

use b3_crashmonkey::{BugReport, Consequence};

use crate::dedup::GroupTable;

/// A group of bug reports believed to stem from the same underlying bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugGroup {
    /// The shared skeleton.
    pub skeleton: String,
    /// The shared consequence.
    pub consequence: Consequence,
    /// Number of reports in the group.
    pub count: usize,
    /// A representative report: the one from the lexicographically-first
    /// workload in the group.
    pub example: BugReport,
}

/// Groups reports by (skeleton, consequence), as in Figure 5.
///
/// Built on the shared [`GroupTable`], so the result — including each
/// group's example report, which is the lexicographically-first workload of
/// the group — is deterministic regardless of the order of `reports`, and
/// identical to what a sweep's source-level deduplication
/// ([`crate::sweep::SweepCheckpoint::grouped`]) produces for the same bugs.
pub fn group_reports(reports: &[BugReport]) -> Vec<BugGroup> {
    GroupTable::from_reports(reports).groups()
}

/// The database of previously found bugs ACE consults before reporting a new
/// one to the user: "it first compares the workload and the consequence with
/// the database of known bugs. If there is a match, ACE does not report the
/// bug to the user."
#[derive(Debug, Default, Clone)]
pub struct KnownBugDatabase {
    entries: BTreeMap<(String, Consequence), String>,
}

impl KnownBugDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        KnownBugDatabase::default()
    }

    /// Records a known bug by its skeleton, consequence, and a label
    /// (e.g. the kernel bugzilla reference).
    pub fn insert(&mut self, skeleton: &str, consequence: Consequence, label: &str) {
        self.entries
            .insert((skeleton.to_string(), consequence), label.to_string());
    }

    /// Number of known bugs recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the label of the known bug a report matches, if any.
    pub fn matches(&self, report: &BugReport) -> Option<&str> {
        self.entries.get(&report.group_key()).map(String::as_str)
    }

    /// Splits groups into (new, already-known) according to the database.
    pub fn partition<'a>(&self, groups: &'a [BugGroup]) -> (Vec<&'a BugGroup>, Vec<&'a BugGroup>) {
        groups
            .iter()
            .partition(|group| self.matches(&group.example).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(skeleton: &str, consequence: Consequence, workload: &str) -> BugReport {
        BugReport {
            workload_name: workload.to_string(),
            skeleton: skeleton.to_string(),
            fs_name: "cowfs".into(),
            crash_point: 1,
            consequence,
            all_consequences: vec![consequence],
            expected: String::new(),
            actual: String::new(),
            diffs: vec![],
            write_check_failures: vec![],
        }
    }

    #[test]
    fn grouping_collapses_same_skeleton_and_consequence() {
        let reports = vec![
            report("link-write", Consequence::DataLoss, "w1"),
            report("link-write", Consequence::DataLoss, "w2"),
            report("link-write", Consequence::FileMissing, "w3"),
            report("rename-creat", Consequence::FileMissing, "w4"),
        ];
        let groups = group_reports(&reports);
        assert_eq!(groups.len(), 3);
        let big = groups
            .iter()
            .find(|g| g.skeleton == "link-write" && g.consequence == Consequence::DataLoss)
            .unwrap();
        assert_eq!(big.count, 2);
    }

    #[test]
    fn known_bug_database_filters_matches() {
        let reports = vec![
            report("link-write", Consequence::DataLoss, "w1"),
            report("rename-creat", Consequence::FileMissing, "w2"),
        ];
        let groups = group_reports(&reports);
        let mut db = KnownBugDatabase::new();
        db.insert("link-write", Consequence::DataLoss, "btrfs-2015-link-fsync");
        assert_eq!(db.len(), 1);
        let (new, known) = db.partition(&groups);
        assert_eq!(new.len(), 1);
        assert_eq!(known.len(), 1);
        assert_eq!(new[0].skeleton, "rename-creat");
        assert_eq!(db.matches(&known[0].example), Some("btrfs-2015-link-fsync"));
    }

    #[test]
    fn empty_reports_give_no_groups() {
        assert!(group_reports(&[]).is_empty());
        assert!(KnownBugDatabase::new().is_empty());
    }
}
