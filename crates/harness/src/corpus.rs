//! The reproduction corpus: every previously-reported crash-consistency bug
//! the paper reproduces (Appendix 9.1) and every new bug CrashMonkey and ACE
//! found (Table 5 / Appendix 9.2), as executable workloads.
//!
//! Each entry records the target file system, the kernel era whose bug set
//! exposes it, the workload in the ACE text format, and the consequences the
//! AutoChecker is expected to classify it as. `ReproStatus::Approximate`
//! marks entries whose workload had to be adapted to the simulation (for
//! example, fsync of an already-unlinked open file descriptor is not
//! expressible through a path-based API); the note explains the adaptation.
//! The two bugs the paper itself could not reproduce within the B3 bounds
//! are included as `NotReproduced` entries for completeness.

use b3_crashmonkey::{Consequence, CrashMonkey, CrashMonkeyConfig, WorkloadOutcome};
use b3_fs_cow::CowFsSpec;
use b3_fs_flash::FlashFsSpec;
use b3_fs_journal::JournalFsSpec;
use b3_fs_veri::VeriFsSpec;
use b3_vfs::error::FsResult;
use b3_vfs::fs::FsSpec;
use b3_vfs::workload::{parse_workload, Workload};
use b3_vfs::KernelEra;

/// Which simulated file system an entry targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// CowFs, the btrfs stand-in.
    Cow,
    /// FlashFs, the F2FS stand-in.
    Flash,
    /// JournalFs, the ext4 stand-in.
    Journal,
    /// VeriFs, the FSCQ stand-in.
    Veri,
}

impl FsKind {
    /// Every simulated file system.
    pub const ALL: [FsKind; 4] = [FsKind::Cow, FsKind::Flash, FsKind::Journal, FsKind::Veri];

    /// Parses a file-system name: the paper name ([`FsKind::paper_name`],
    /// case-insensitive) or the stand-in's own name (`cowfs`, `flashfs`,
    /// `journalfs`, `verifs`, with or without the `fs` suffix).
    pub fn parse(s: &str) -> Option<FsKind> {
        match s.to_ascii_lowercase().as_str() {
            "btrfs" | "cow" | "cowfs" => Some(FsKind::Cow),
            "f2fs" | "flash" | "flashfs" => Some(FsKind::Flash),
            "ext4" | "journal" | "journalfs" => Some(FsKind::Journal),
            "fscq" | "veri" | "verifs" => Some(FsKind::Veri),
            _ => None,
        }
    }

    /// The real file system this kind stands in for.
    pub fn paper_name(&self) -> &'static str {
        match self {
            FsKind::Cow => "btrfs",
            FsKind::Flash => "F2FS",
            FsKind::Journal => "ext4",
            FsKind::Veri => "FSCQ",
        }
    }

    /// Builds the spec for this file system at the given era.
    pub fn spec(&self, era: KernelEra) -> Box<dyn FsSpec + Sync> {
        match self {
            FsKind::Cow => Box::new(CowFsSpec::new(era)),
            FsKind::Flash => Box::new(FlashFsSpec::new(era)),
            FsKind::Journal => Box::new(JournalFsSpec::new(era)),
            FsKind::Veri => Box::new(VeriFsSpec::new(era)),
        }
    }
}

/// How faithfully the entry reproduces the reported bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReproStatus {
    /// The reported workload runs as described and the reported consequence
    /// is observed.
    Reproduced,
    /// The workload or consequence had to be adapted to the simulation; the
    /// note explains how.
    Approximate,
    /// Not reproducible within the B3 bounds (matches the paper, which also
    /// could not reproduce these two).
    NotReproduced,
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable identifier, e.g. `known-16` or `new-07`.
    pub id: &'static str,
    /// Short description of the bug.
    pub title: &'static str,
    /// Target file system.
    pub fs: FsKind,
    /// Kernel era whose bug set exhibits the bug.
    pub era: KernelEra,
    /// Workload in the ACE text format (empty for `NotReproduced` entries).
    pub workload_text: &'static str,
    /// Consequences the AutoChecker may classify this bug as.
    pub expected: &'static [Consequence],
    /// Reproduction status.
    pub status: ReproStatus,
    /// Free-form note (adaptation details, kernel reference).
    pub note: &'static str,
}

/// Result of replaying one corpus entry.
#[derive(Debug)]
pub struct CorpusCheck {
    /// The raw CrashMonkey outcome on the buggy-era file system.
    pub outcome: WorkloadOutcome,
    /// True if a bug was detected with one of the expected consequences.
    pub detected_expected: bool,
    /// The primary consequence observed, if any.
    pub observed: Option<Consequence>,
}

impl CorpusEntry {
    /// Parses the entry's workload.
    pub fn workload(&self) -> Workload {
        parse_workload(self.workload_text, self.id).expect("corpus workload must parse")
    }

    /// Runs the entry on its buggy-era file system and checks the observed
    /// consequence against the expected set.
    pub fn replay(&self) -> FsResult<CorpusCheck> {
        let spec = self.fs.spec(self.era);
        let config = CrashMonkeyConfig::exhaustive_crash_points();
        let monkey = CrashMonkey::with_config(spec.as_ref(), config);
        let outcome = monkey.test_workload(&self.workload())?;
        let observed = outcome.worst_consequence();
        let detected_expected = outcome.bugs.iter().any(|bug| {
            self.expected.contains(&bug.consequence)
                || bug
                    .all_consequences
                    .iter()
                    .any(|c| self.expected.contains(c))
        });
        Ok(CorpusCheck {
            outcome,
            detected_expected,
            observed,
        })
    }

    /// Runs the entry on a fully patched file system; a correct file system
    /// must pass every check.
    pub fn replay_patched(&self) -> FsResult<WorkloadOutcome> {
        let spec = self.fs.spec(KernelEra::Patched);
        let config = CrashMonkeyConfig::exhaustive_crash_points();
        let monkey = CrashMonkey::with_config(spec.as_ref(), config);
        monkey.test_workload(&self.workload())
    }

    /// True if the entry has an executable workload.
    pub fn is_runnable(&self) -> bool {
        self.status != ReproStatus::NotReproduced && !self.workload_text.trim().is_empty()
    }
}

use Consequence::{
    BlocksLost, CannotCreateFiles, DataCorruption, DataLoss, DirectoryMissing,
    DirectoryUnremovable, FileInBothLocations, FileMissing, SymlinkEmpty, Unmountable, WrongSize,
    XattrInconsistent,
};

/// The previously-reported bugs of Appendix 9.1 (24 reproduced workloads, two
/// cross-file-system variants, and the two bugs that are out of reach of the
/// B3 bounds).
pub fn known_bugs() -> Vec<CorpusEntry> {
    let era = KernelEra::V3_13;
    vec![
        CorpusEntry {
            id: "known-01",
            title: "fsync after renaming file loses the renamed file",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nwrite A/foo 0 16384\nsync\nrename A/foo A/bar\ncreat A/foo\nwrite A/foo 0 4096\nfsync A/foo",
            expected: &[FileMissing, Unmountable],
            status: ReproStatus::Reproduced,
            note: "btrfs & F2FS; generic/test for fsync after renaming file",
        },
        CorpusEntry {
            id: "known-02",
            title: "fdatasync after fallocate(KEEP_SIZE) loses blocks beyond EOF",
            fs: FsKind::Journal,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 8192\nfsync foo\nfalloc foo keep_size 8192 8192\nfdatasync foo",
            expected: &[BlocksLost],
            status: ReproStatus::Reproduced,
            note: "ext4 & F2FS; ext4: fix fdatasync(2) after fallocate(2)",
        },
        CorpusEntry {
            id: "known-02-f2fs",
            title: "fdatasync after fallocate(KEEP_SIZE) loses blocks beyond EOF (F2FS)",
            fs: FsKind::Flash,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 8192\nfsync foo\nfalloc foo keep_size 8192 8192\nfdatasync foo",
            expected: &[BlocksLost],
            status: ReproStatus::Reproduced,
            note: "F2FS variant of known-02",
        },
        CorpusEntry {
            id: "known-03",
            title: "log replay failure after linking special file and fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\nmkfifo A/foo\ncreat A/dummy\nsync\nrename A/foo A/bar\nlink A/bar A/foo\nunlink A/dummy\ncreat A/dummy\nfsync A/dummy",
            expected: &[Unmountable],
            status: ReproStatus::Approximate,
            note: "fsync of an unlinked-but-open fd is not expressible path-based; the name-reuse pattern that breaks log replay is preserved",
        },
        CorpusEntry {
            id: "known-04",
            title: "direct write past on-disk size recovers with size 0",
            fs: FsKind::Journal,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nsync\nwrite foo 16384 4096\ndwrite foo 0 4096",
            expected: &[DataLoss, DataCorruption],
            status: ReproStatus::Reproduced,
            note: "ext4: update i_disksize if direct write past ondisk size",
        },
        CorpusEntry {
            id: "known-05",
            title: "unlink of hard link, recreate, fsync makes fs unmountable",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nlink A/foo A/bar\nsync\nunlink A/bar\ncreat A/bar\nfsync A/bar",
            expected: &[Unmountable],
            status: ReproStatus::Reproduced,
            note: "same name-reuse pattern as Figure 1",
        },
        CorpusEntry {
            id: "known-06",
            title: "cannot create files after fsync and crash",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\ncreat A/foo\nfsync A/foo",
            expected: &[CannotCreateFiles],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix unexpected -EEXIST when creating new inode",
        },
        CorpusEntry {
            id: "known-07",
            title: "file lost on log replay after rename and fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\nmkdir C\ncreat A/foo\n[ops]\nlink A/foo B/foo_link\ncreat B/bar\nsync\nunlink B/foo_link\nrename B/bar C/bar\nfsync C/bar",
            expected: &[FileMissing, DirectoryMissing],
            status: ReproStatus::Approximate,
            note: "original fsyncs an unrelated sibling; the reproduction persists the renamed file itself, same consequence",
        },
        CorpusEntry {
            id: "known-08",
            title: "renamed directory and contents missing after fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir A/B\nmkdir A/C\ncreat A/B/foo\ncreat A/B/bar\n[ops]\nsync\nrename A/B A/C\nmkdir A/B\nfsync A/C",
            expected: &[FileMissing, DirectoryMissing, DataLoss, FileInBothLocations],
            status: ReproStatus::Approximate,
            note: "original fsyncs the new A/B; the reproduction persists the renamed directory, same consequence",
        },
        CorpusEntry {
            id: "known-09",
            title: "rename persists files in both directories",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\ncreat A/foo\ncreat B/baz\nmkdir B/C\n[ops]\nsync\nlink A/foo A/bar\nrename B/baz A/baz\nrename B/C A/C\nfsync A/foo",
            expected: &[FileInBothLocations, DirectoryUnremovable],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix for incorrect directory entries after fsync log replay",
        },
        CorpusEntry {
            id: "known-10",
            title: "empty symlink after fsync of parent directory",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\nsync\nsymlink foo A/bar\nfsync A",
            expected: &[SymlinkEmpty],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix empty symlink after creating symlink and fsync parent dir",
        },
        CorpusEntry {
            id: "known-11",
            title: "persisted file missing after fsync of renamed file",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nfsync A\nfsync A/foo\nrename A/foo A/bar\ncreat A/foo\nfsync A/bar",
            expected: &[FileMissing, CannotCreateFiles, DirectoryUnremovable, Unmountable],
            status: ReproStatus::Approximate,
            note: "fstests: generic test for fsync after file rename",
        },
        CorpusEntry {
            id: "known-12",
            title: "hole punch not persisted by fsync (no-holes feature)",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 135168\nsync\nfalloc foo punch_hole 32768 98304\nfsync foo",
            expected: &[DataCorruption, WrongSize],
            status: ReproStatus::Approximate,
            note: "the original relies on data written in the same transaction; the reproduction commits the data first so the stale extents have durable content to resurface",
        },
        CorpusEntry {
            id: "known-13",
            title: "stale directory entries after fsync log replay (sibling links)",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\ncreat A/bar\n[ops]\nsync\nlink A/foo A/foo_link\nlink A/bar A/bar_link\nfsync A/bar",
            expected: &[DirectoryUnremovable],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix stale directory entries after fsync log replay",
        },
        CorpusEntry {
            id: "known-14",
            title: "second mmap write lost after ranged msync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 262144\nsync\nmmap foo 0 262144\nmwrite foo 0 4096\nmwrite foo 258048 4096\nmsync foo 0 65536\nmsync foo 196608 65536",
            expected: &[DataCorruption, DataLoss],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix fsync data loss after a ranged fsync",
        },
        CorpusEntry {
            id: "known-15",
            title: "directory un-removable after removing hard link and fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\nsync\ncreat A/foo\nlink A/foo A/bar\nsync\nunlink A/bar\nfsync A/foo",
            expected: &[DirectoryUnremovable],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix metadata inconsistencies after directory fsync",
        },
        CorpusEntry {
            id: "known-16",
            title: "fsync data loss after adding hard link",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nsync\nwrite A/foo 0 16384\nlink A/foo A/bar\nfsync A/foo",
            expected: &[DataLoss],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix fsync data loss after adding hard link to inode",
        },
        CorpusEntry {
            id: "known-17",
            title: "punch hole of partial page not persisted",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 16384\nsync\nfalloc foo punch_hole 8000 4096\nfsync foo",
            expected: &[DataCorruption, WrongSize],
            status: ReproStatus::Approximate,
            note: "as known-12: data is committed before the punch so stale content can resurface",
        },
        CorpusEntry {
            id: "known-18",
            title: "removed xattr reappears after fsync log replay",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nsetxattr foo user.u1 val1\nsetxattr foo user.u2 val2\nsetxattr foo user.u3 val3\nsync\nremovexattr foo user.u2\nfsync foo",
            expected: &[XattrInconsistent],
            status: ReproStatus::Reproduced,
            note: "btrfs: remove deleted xattrs on fsync log replay",
        },
        CorpusEntry {
            id: "known-19",
            title: "directory un-removable after unlinking one of multiple links",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nsync\nlink A/foo A/bar1\nlink A/foo A/bar2\nsync\nunlink A/bar2\nfsync A/foo",
            expected: &[DirectoryUnremovable],
            status: ReproStatus::Reproduced,
            note: "fstests: generic test for fsync of file with multiple links",
        },
        CorpusEntry {
            id: "known-20",
            title: "renamed file missing after directory fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir A/B\nmkdir C\ncreat A/B/foo\n[ops]\nsync\nrename A/B/foo C/foo\ncreat A/bar\nfsync C/foo",
            expected: &[FileMissing],
            status: ReproStatus::Approximate,
            note: "original fsyncs directory A; the reproduction persists the moved file, same consequence",
        },
        CorpusEntry {
            id: "known-21",
            title: "directory un-removable after fsync log recovery",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nsync\ncreat A/bar\nfsync A\nfsync A/bar",
            expected: &[DirectoryUnremovable],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix directory recovery from fsync log",
        },
        CorpusEntry {
            id: "known-22",
            title: "persisted file missing after rename and fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\ncreat A/foo\n[ops]\nwrite A/foo 0 4096\nsync\nrename A/foo A/bar\nfsync A/bar",
            expected: &[FileMissing],
            status: ReproStatus::Reproduced,
            note: "xfstests: add a rename fsync test",
        },
        CorpusEntry {
            id: "known-23",
            title: "fsync data loss after append write to multi-link file",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 32768\nsync\nlink foo bar\nsync\nwrite foo 32768 32768\nfsync foo",
            expected: &[DataLoss],
            status: ReproStatus::Reproduced,
            note: "btrfs: fix fsync data loss after append write",
        },
        CorpusEntry {
            id: "known-24",
            title: "directory un-removable after fsync of directory and renamed file",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\nmkdir A\n[ops]\nfsync foo\nsync\nrename foo A/bar\nfsync A\nfsync A/bar",
            expected: &[DirectoryUnremovable, FileInBothLocations],
            status: ReproStatus::Reproduced,
            note: "xfstests: add generic/321 to test fsync() on directories",
        },
        CorpusEntry {
            id: "known-25",
            title: "bug requiring dropcaches during the workload",
            fs: FsKind::Cow,
            era,
            workload_text: "",
            expected: &[],
            status: ReproStatus::NotReproduced,
            note: "needs a dropcaches command mid-workload; outside the B3 bounds (also not reproduced by the paper)",
        },
        CorpusEntry {
            id: "known-26",
            title: "bug requiring 3000 pre-existing hard links",
            fs: FsKind::Cow,
            era,
            workload_text: "",
            expected: &[],
            status: ReproStatus::NotReproduced,
            note: "needs thousands of pre-existing hard links to force an external reflink; outside the B3 bounds (also not reproduced by the paper)",
        },
    ]
}

/// The new bugs CrashMonkey and ACE found (Table 5 / Appendix 9.2).
pub fn new_bugs() -> Vec<CorpusEntry> {
    let era = KernelEra::V4_16;
    vec![
        CorpusEntry {
            id: "new-01",
            title: "rename atomicity broken: file disappears",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\n[ops]\ncreat A/bar\nfsync A/bar\ncreat B/bar\nrename B/bar A/bar\ncreat A/foo\nfsync A/foo\nfsync A",
            expected: &[FileMissing],
            status: ReproStatus::Reproduced,
            note: "present since 2014",
        },
        CorpusEntry {
            id: "new-02",
            title: "rename atomicity broken: file in both locations",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\ncreat A/bar\n[ops]\nfsync A/bar\nrename A/bar B/bar\nfsync B/bar\nfsync B",
            expected: &[FileInBothLocations, FileMissing],
            status: ReproStatus::Approximate,
            note: "simplified from the reported double-rename sequence; the log-replay mechanism (old dentry not removed) and consequence are the same",
        },
        CorpusEntry {
            id: "new-03",
            title: "directory not persisted by fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\n[ops]\nmkdir A/C\ncreat B/foo\nfsync B/foo\nlink B/foo A/C/foo\nfsync A",
            expected: &[DirectoryMissing, FileMissing],
            status: ReproStatus::Reproduced,
            note: "btrfs: sync log after logging new name",
        },
        CorpusEntry {
            id: "new-04",
            title: "rename not persisted by fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\nsync\nrename A B\ncreat B/foo\nfsync B/foo\nfsync B",
            expected: &[FileInBothLocations, FileMissing, DirectoryMissing],
            status: ReproStatus::Reproduced,
            note: "present since 2014",
        },
        CorpusEntry {
            id: "new-05",
            title: "hard links not persisted by fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir A\nmkdir B\n[ops]\ncreat A/foo\nlink A/foo B/foo\nfsync A/foo\nfsync B/foo",
            expected: &[FileMissing],
            status: ReproStatus::Reproduced,
            note: "present since 2014",
        },
        CorpusEntry {
            id: "new-06",
            title: "directory entry missing after fsync on directory",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\nmkdir test\nmkdir test/A\n[ops]\ncreat test/foo\ncreat test/A/foo\nfsync test/A/foo\nfsync test",
            expected: &[FileMissing],
            status: ReproStatus::Reproduced,
            note: "file missing in spite of persisting parent directory; present since 2014",
        },
        CorpusEntry {
            id: "new-07",
            title: "fsync on file does not persist all its paths",
            fs: FsKind::Cow,
            era,
            workload_text: "[ops]\ncreat foo\nmkdir A\nlink foo A/bar\nfsync foo",
            expected: &[FileMissing],
            status: ReproStatus::Reproduced,
            note: "present since 2014",
        },
        CorpusEntry {
            id: "new-08",
            title: "allocated blocks lost after fsync",
            fs: FsKind::Cow,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 16384\nfsync foo\nfalloc foo keep_size 16384 4096\nfsync foo",
            expected: &[BlocksLost],
            status: ReproStatus::Reproduced,
            note: "btrfs: blocks allocated beyond eof are lost; present since 2014",
        },
        CorpusEntry {
            id: "new-09",
            title: "file recovers to incorrect size after ZERO_RANGE",
            fs: FsKind::Flash,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 16384\nfsync foo\nfalloc foo zero_range_keep_size 16384 4096\nfsync foo",
            expected: &[WrongSize, DataCorruption],
            status: ReproStatus::Reproduced,
            note: "f2fs: fix to set keep size bit in f2fs_zero_range; present since 2015",
        },
        CorpusEntry {
            id: "new-10",
            title: "persisted file ends up in a different directory",
            fs: FsKind::Flash,
            era,
            workload_text: "[setup]\nmkdir A\n[ops]\nsync\nrename A B\ncreat B/foo\nfsync B/foo",
            expected: &[FileMissing, FileInBothLocations],
            status: ReproStatus::Reproduced,
            note: "f2fs: enforce fsync_mode=strict for renamed directory; present since 2016",
        },
        CorpusEntry {
            id: "new-11",
            title: "FSCQ fdatasync loses appended data",
            fs: FsKind::Veri,
            era,
            workload_text: "[setup]\ncreat foo\n[ops]\nwrite foo 0 4096\nsync\nwrite foo 4096 4096\nfdatasync foo",
            expected: &[DataLoss],
            status: ReproStatus::Reproduced,
            note: "bug in the unverified C-Haskell binding; patched by the FSCQ authors",
        },
    ]
}

/// Bugs beyond the paper's tables, found by extending the checker (the
/// ROADMAP's coverage items). Kept separate so the Table 4/5 counts the
/// paper reports stay exact.
pub fn extended_bugs() -> Vec<CorpusEntry> {
    vec![CorpusEntry {
        id: "ext-01",
        title: "durable rename resurrects the old name as a distinct inode",
        fs: FsKind::Cow,
        era: KernelEra::V4_16,
        workload_text: "[setup]\nmkdir A\nmkdir B\ncreat A/foo\n[ops]\nwrite A/foo 0 8192\nsync\nrename A/foo B/foo\nfsync B/foo",
        expected: &[FileInBothLocations],
        status: ReproStatus::Reproduced,
        note: "rename; fsync(new); crash — log replay instantiates a stale back-reference as a fresh inode under the old name; invisible to the same-inode atomicity check, caught by the op-order-aware durable-rename check",
    }]
}

/// All corpus entries (known, new, then extended).
pub fn all_entries() -> Vec<CorpusEntry> {
    let mut entries = known_bugs();
    entries.extend(new_bugs());
    entries.extend(extended_bugs());
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_counts_match_the_paper() {
        let known = known_bugs();
        let runnable = known.iter().filter(|e| e.is_runnable()).count();
        let not_reproduced = known
            .iter()
            .filter(|e| e.status == ReproStatus::NotReproduced)
            .count();
        // 24 unique reproduced workloads + 2 cross-FS variants.
        assert_eq!(runnable, 25);
        assert_eq!(not_reproduced, 2);
        assert_eq!(new_bugs().len(), 11);
    }

    #[test]
    fn corpus_workloads_parse_and_end_with_persistence() {
        for entry in all_entries() {
            if !entry.is_runnable() {
                continue;
            }
            let workload = entry.workload();
            assert!(
                workload.ends_with_persistence_point() || entry.id == "known-04",
                "{} must end with a persistence point",
                entry.id
            );
            assert!(workload.sequence_length() >= 1, "{}", entry.id);
        }
    }

    #[test]
    fn every_runnable_entry_is_detected_on_its_buggy_era() {
        let mut failures = Vec::new();
        for entry in all_entries() {
            if !entry.is_runnable() {
                continue;
            }
            let check = entry
                .replay()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            if !check.detected_expected {
                failures.push(format!(
                    "{}: expected one of {:?}, observed {:?} (skipped: {:?})",
                    entry.id, entry.expected, check.observed, check.outcome.skipped
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "undetected corpus bugs:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn every_runnable_entry_is_clean_on_a_patched_file_system() {
        let mut failures = Vec::new();
        for entry in all_entries() {
            if !entry.is_runnable() {
                continue;
            }
            let outcome = entry
                .replay_patched()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            if outcome.skipped.is_some() {
                failures.push(format!(
                    "{}: workload skipped: {:?}",
                    entry.id, outcome.skipped
                ));
            } else if outcome.found_bug() {
                failures.push(format!(
                    "{}: false positive on patched fs: {:?}",
                    entry.id,
                    outcome
                        .bugs
                        .iter()
                        .map(|b| b.consequence)
                        .collect::<Vec<_>>()
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "patched file systems must pass every corpus workload:\n{}",
            failures.join("\n")
        );
    }
}
