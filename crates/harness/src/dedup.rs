//! First-class bug-report deduplication: the grouped (exemplar + count)
//! table shared by the sweep engine, the distributed protocol, and the
//! post-processing step.
//!
//! The paper deduplicates the flood of raw crash-test failures into a
//! handful of unique bug reports *before* a human looks at them (§5.3,
//! Figure 5). This module applies the same idea to our own data model: a
//! [`GroupTable`] keeps, per `(skeleton, consequence)` group, a running
//! count and one **exemplar** report — the lexicographically-first workload
//! of the group. Workload names are zero-padded enumeration indices, so
//! "lexicographically first" equals "first in enumeration order", and the
//! exemplar a table converges to is independent of the order in which
//! reports (or partial tables) are folded in:
//! [`GroupTable::merge_from`] adds counts and takes the name-minimal
//! exemplar, making it commutative, associative, and idempotent-friendly —
//! exactly what [`crate::sweep::SweepCheckpoint::merge`] needs so that a
//! distributed sweep's grouped results equal post-hoc
//! [`crate::postprocess::group_reports`] over the raw report stream,
//! regardless of shard partition or arrival order.
//!
//! Memory and checkpoint size are therefore bounded by the number of bug
//! *groups* (tens), not raw *reports* (hundreds of thousands on a bug-dense
//! file system).

use std::collections::BTreeMap;

use b3_crashmonkey::{BugReport, Consequence};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};

use crate::postprocess::BugGroup;

/// The grouping key of §5.3: the workload skeleton and the observed
/// consequence (see [`BugReport::group_key`]).
pub type GroupKey = (String, Consequence);

/// One deduplicated bug group: how many raw reports collapsed into it and
/// the exemplar kept to represent them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupEntry {
    /// Number of raw reports folded into this group.
    pub count: u64,
    /// The representative report: the one from the lexicographically-first
    /// workload observed for this group (ties — several same-key reports
    /// from one workload — keep the first observed).
    pub exemplar: BugReport,
}

/// A deduplicated table of bug groups: `(skeleton, consequence)` → count +
/// exemplar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupTable {
    entries: BTreeMap<GroupKey, GroupEntry>,
}

impl GroupTable {
    /// An empty table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Builds a table from raw reports (post-hoc grouping).
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a BugReport>) -> Self {
        let mut table = GroupTable::new();
        for report in reports {
            table.observe(report.clone());
        }
        table
    }

    /// Folds one raw report into the table: its group's count grows by one
    /// and the exemplar moves only if this report comes from a strictly
    /// lexicographically-smaller workload.
    pub fn observe(&mut self, report: BugReport) {
        match self.entries.entry(report.group_key()) {
            std::collections::btree_map::Entry::Occupied(mut occupied) => {
                let entry = occupied.get_mut();
                entry.count += 1;
                if report.workload_name < entry.exemplar.workload_name {
                    entry.exemplar = report;
                }
            }
            std::collections::btree_map::Entry::Vacant(vacant) => {
                vacant.insert(GroupEntry {
                    count: 1,
                    exemplar: report,
                });
            }
        }
    }

    /// Unions another table into this one: counts add, and each group keeps
    /// the name-minimal exemplar of the two sides. Over tables built from
    /// disjoint report sets (e.g. per-shard tables) this is commutative and
    /// associative, so any merge order converges to the same table.
    pub fn merge_from(&mut self, other: &GroupTable) {
        for (key, incoming) in &other.entries {
            match self.entries.entry(key.clone()) {
                std::collections::btree_map::Entry::Occupied(mut occupied) => {
                    let entry = occupied.get_mut();
                    entry.count += incoming.count;
                    if incoming.exemplar.workload_name < entry.exemplar.workload_name {
                        entry.exemplar = incoming.exemplar.clone();
                    }
                }
                std::collections::btree_map::Entry::Vacant(vacant) => {
                    vacant.insert(incoming.clone());
                }
            }
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no report has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total raw reports folded in, across all groups.
    pub fn total_reports(&self) -> u64 {
        self.entries.values().map(|entry| entry.count).sum()
    }

    /// Iterates the groups in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&GroupKey, &GroupEntry)> {
        self.entries.iter()
    }

    /// The exemplar reports, in group-key order.
    pub fn into_exemplars(self) -> Vec<BugReport> {
        self.entries
            .into_values()
            .map(|entry| entry.exemplar)
            .collect()
    }

    /// Renders the table as [`BugGroup`]s (the post-processing view), in
    /// group-key order.
    pub fn groups(&self) -> Vec<BugGroup> {
        self.entries
            .iter()
            .map(|((skeleton, consequence), entry)| BugGroup {
                skeleton: skeleton.clone(),
                consequence: *consequence,
                count: entry.count as usize,
                example: entry.exemplar.clone(),
            })
            .collect()
    }

    /// Serializes the table with the workspace codec. The group key is not
    /// written: it is re-derived from the exemplar on decode (an exemplar's
    /// own `group_key` *is* the key it was filed under).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.entries.len() as u64);
        for entry in self.entries.values() {
            enc.put_u64(entry.count);
            entry.exemplar.encode(enc);
        }
    }

    /// Deserializes a table produced by [`GroupTable::encode`]. The declared
    /// group count is validated against the remaining buffer before any
    /// allocation, so a truncated or corrupt frame yields a decode error
    /// rather than a huge allocation.
    pub fn decode(dec: &mut Decoder<'_>) -> FsResult<GroupTable> {
        let count = dec.get_u64()? as usize;
        // Every entry occupies at least its count (8 bytes) plus a minimal
        // encoded report; 9 bytes is a safe floor per entry.
        if count > dec.remaining() / 9 {
            return Err(FsError::Corrupted(format!(
                "group table declares {count} entries but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let group_count = dec.get_u64()?;
            let exemplar = BugReport::decode(dec)?;
            entries.insert(
                exemplar.group_key(),
                GroupEntry {
                    count: group_count,
                    exemplar,
                },
            );
        }
        Ok(GroupTable { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(skeleton: &str, consequence: Consequence, workload: &str) -> BugReport {
        BugReport {
            workload_name: workload.to_string(),
            skeleton: skeleton.to_string(),
            fs_name: "cowfs".into(),
            crash_point: 1,
            consequence,
            all_consequences: vec![consequence],
            expected: String::new(),
            actual: String::new(),
            diffs: vec![],
            write_check_failures: vec![],
        }
    }

    #[test]
    fn observe_keeps_the_lexicographically_first_exemplar() {
        let mut table = GroupTable::new();
        table.observe(report("link-write", Consequence::DataLoss, "w-0000005"));
        table.observe(report("link-write", Consequence::DataLoss, "w-0000002"));
        table.observe(report("link-write", Consequence::DataLoss, "w-0000009"));
        assert_eq!(table.len(), 1);
        assert_eq!(table.total_reports(), 3);
        let (_, entry) = table.entries().next().unwrap();
        assert_eq!(entry.exemplar.workload_name, "w-0000002");
    }

    #[test]
    fn merge_is_order_independent() {
        let reports: Vec<BugReport> = (0..20)
            .map(|i| {
                report(
                    if i % 3 == 0 { "link-write" } else { "rename" },
                    if i % 2 == 0 {
                        Consequence::DataLoss
                    } else {
                        Consequence::FileMissing
                    },
                    &format!("w-{i:07}"),
                )
            })
            .collect();
        let whole = GroupTable::from_reports(&reports);

        // Split into three slices, merge in a shuffled order.
        let parts: Vec<GroupTable> = reports.chunks(7).map(GroupTable::from_reports).collect();
        for order in [[0, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut merged = GroupTable::new();
            for index in order {
                merged.merge_from(&parts[index]);
            }
            assert_eq!(merged, whole);
        }
    }

    #[test]
    fn codec_round_trips() {
        let mut table = GroupTable::new();
        table.observe(report("link-write", Consequence::DataLoss, "w-0000001"));
        table.observe(report("link-write", Consequence::DataLoss, "w-0000003"));
        table.observe(report("rename", Consequence::FileMissing, "w-0000002"));
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let decoded = GroupTable::decode(&mut dec).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(decoded, table);
    }

    #[test]
    fn decode_rejects_huge_declared_counts() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // absurd group count, no payload
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(GroupTable::decode(&mut dec).is_err());
    }
}
