//! `b3-analyze` — static persistence-order analysis of one workload.
//!
//! Profiles the workload on a simulated file system (no crash states are
//! constructed or checked), feeds the recorded IO log to
//! [`b3_analyze::analyze`], and prints the happens-before report: flush
//! epochs, persistence races mapped back to syscall spans, and the
//! hazard / ordered / quiescent classification of every crash point —
//! the same triage `CrashPointPolicy::AllTriaged` uses to skip redundant
//! dynamic tests (see `docs/ANALYSIS.md`).
//!
//! Input is the ACE workload text format, read from `--file PATH`, from
//! `--corpus ID` (an entry of the built-in bug corpus, which also picks
//! the entry's file system and kernel era), or from stdin:
//!
//! ```text
//! b3-analyze --file workload.txt --fs btrfs --era 4.16
//! b3-analyze --corpus known-01
//! b3-analyze < workload.txt
//! ```
//!
//! Exit code 0 on success (races found or not — the report is
//! informational), 1 when the workload cannot be parsed or executed,
//! 2 on usage errors.

use std::io::Read as _;

use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig};
use b3_harness::corpus::all_entries;
use b3_harness::FsKind;
use b3_vfs::workload::parse_workload;
use b3_vfs::KernelEra;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut file: Option<String> = None;
    let mut corpus_id: Option<String> = None;
    let mut fs_flag: Option<FsKind> = None;
    let mut era_flag: Option<KernelEra> = None;
    let mut name: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = |flag_name: &str| -> String {
            inline.clone().or_else(|| args.next()).unwrap_or_else(|| {
                eprintln!("b3-analyze: {flag_name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--file" => file = Some(value("--file")),
            "--corpus" => corpus_id = Some(value("--corpus")),
            "--name" => name = Some(value("--name")),
            "--fs" => {
                let raw = value("--fs");
                fs_flag = Some(FsKind::parse(&raw).unwrap_or_else(|| {
                    eprintln!("b3-analyze: unknown file system {raw:?} (btrfs/f2fs/ext4/fscq)");
                    std::process::exit(2);
                }));
            }
            "--era" => {
                let raw = value("--era");
                era_flag = Some(KernelEra::parse(&raw).unwrap_or_else(|| {
                    eprintln!("b3-analyze: unknown kernel era {raw:?} (e.g. 4.16, patched)");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("b3-analyze: unknown argument {other:?}");
                eprintln!("usage: b3-analyze [--file PATH | --corpus ID] [--fs NAME] [--era ERA]");
                return 2;
            }
        }
    }

    // Resolve the workload text and the fs/era defaults. A corpus entry
    // carries its own fs and era; explicit flags still win.
    let (text, fallback_name, mut fs, mut era) = match (&file, &corpus_id) {
        (Some(_), Some(_)) => {
            eprintln!("b3-analyze: --file and --corpus are mutually exclusive");
            return 2;
        }
        (Some(path), None) => match std::fs::read_to_string(path) {
            Ok(text) => (text, path.clone(), FsKind::Cow, KernelEra::EVALUATION),
            Err(err) => {
                eprintln!("b3-analyze: cannot read {path}: {err}");
                return 1;
            }
        },
        (None, Some(id)) => {
            let Some(entry) = all_entries().into_iter().find(|e| e.id == id) else {
                eprintln!("b3-analyze: no corpus entry named {id:?} (see `known-*`/`new-*` ids)");
                return 2;
            };
            if !entry.is_runnable() {
                eprintln!("b3-analyze: corpus entry {id:?} has no runnable workload");
                return 1;
            }
            (
                entry.workload_text.to_string(),
                entry.id.to_string(),
                entry.fs,
                entry.era,
            )
        }
        (None, None) => {
            let mut text = String::new();
            if let Err(err) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("b3-analyze: cannot read stdin: {err}");
                return 1;
            }
            (
                text,
                "<stdin>".to_string(),
                FsKind::Cow,
                KernelEra::EVALUATION,
            )
        }
    };
    if let Some(explicit) = fs_flag {
        fs = explicit;
    }
    if let Some(explicit) = era_flag {
        era = explicit;
    }

    let workload_name = name.unwrap_or(fallback_name);
    let workload = match parse_workload(&text, &workload_name) {
        Ok(workload) => workload,
        Err(err) => {
            eprintln!("b3-analyze: cannot parse workload: {err}");
            return 1;
        }
    };

    let spec = fs.spec(era);
    let config = CrashMonkeyConfig::small();
    let direct_write = config.direct_write_is_persistence_point;
    let monkey = CrashMonkey::with_config(spec.as_ref(), config);
    let profile = match monkey.profile_only(&workload) {
        Ok(profile) => profile,
        Err(err) => {
            eprintln!(
                "b3-analyze: profiling failed on {}/{era}: {err}",
                fs.paper_name()
            );
            return 1;
        }
    };
    if let Some(err) = &profile.exec_error {
        eprintln!(
            "b3-analyze: workload did not execute to completion on {}/{era}: {err}",
            fs.paper_name()
        );
        return 1;
    }

    let analysis = b3_analyze::analyze(&profile.log, &workload, direct_write);
    println!("file system: {} (kernel {era})", fs.paper_name());
    print!("{analysis}");

    let reused = analysis.quiescent_windows();
    let total = analysis.windows.len();
    println!(
        "triage: {tested} of {total} crash states need dynamic testing \
         ({reused} provably quiescent, reusable under --crash-points triaged)",
        tested = total - reused,
    );
    0
}
