//! The worker side of the distributed sweep protocol (see
//! `b3_harness::distrib`): reads a job plus shard assignments from stdin,
//! runs each shard through CrashMonkey, and writes per-shard results to
//! stdout — with bug reports deduplicated at the source into per-group
//! exemplars + counts, so a frame stays small no matter how bug-dense the
//! shard is. Spawned by a sweep coordinator; not meant to be run by hand.
//!
//! `--die-after-workloads N` is the chaos-test hook: the process exits
//! abruptly just before its `N+1`-th workload, simulating a worker VM dying
//! mid-shard.

use b3_harness::distrib::{worker_main, WorkerOptions};

fn main() {
    let mut options = WorkerOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--die-after-workloads" {
            args.next()
        } else if let Some(value) = arg.strip_prefix("--die-after-workloads=") {
            Some(value.to_string())
        } else {
            eprintln!("b3-sweep-worker: unknown argument {arg:?}");
            std::process::exit(2);
        };
        let value = value.expect("--die-after-workloads needs a number");
        options.die_after_workloads =
            Some(value.parse().expect("--die-after-workloads needs a number"));
    }
    std::process::exit(worker_main(options));
}
