//! The worker side of the distributed sweep protocol (see
//! `b3_harness::distrib` and `docs/PROTOCOL.md`): announces itself with a
//! `Hello` frame, reads a job plus shard assignments, runs each shard
//! through CrashMonkey, and writes per-shard results back — with bug
//! reports deduplicated at the source into per-group exemplars + counts,
//! so a frame stays small no matter how bug-dense the shard is.
//!
//! Two transports, same protocol:
//!
//! * spawned by a coordinator (stdio child or ssh pipe): frames flow over
//!   this process's stdin/stdout;
//! * `--connect HOST:PORT`: dial a coordinator's TCP listener and speak
//!   frames over the socket — this is how remote machines join a sweep.
//!
//! `--calibrate[=N]` runs a short measured burst before the `Hello` so the
//! coordinator can size this worker's shard batches by its throughput
//! (only the seed: the coordinator re-sizes by observed throughput as
//! shards complete). `--secret S` (or the `B3_SWEEP_SECRET` environment
//! variable) supplies the shared secret for answering a coordinator's
//! HMAC challenge — required when dialing a non-loopback listener.
//! `--die-after-workloads N` is the chaos-test hook: the process exits
//! abruptly just before its `N+1`-th workload, simulating a worker VM dying
//! mid-shard.

use b3_harness::distrib::{
    worker_connect, worker_main, WorkerOptions, DEFAULT_CALIBRATION_WORKLOADS,
};

fn main() {
    let mut options = WorkerOptions::default();
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> String {
            inline.clone().or_else(|| args.next()).unwrap_or_else(|| {
                eprintln!("b3-sweep-worker: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--die-after-workloads" => {
                options.die_after_workloads = Some(
                    value("--die-after-workloads")
                        .parse()
                        .expect("--die-after-workloads needs a number"),
                );
            }
            "--connect" => connect = Some(value("--connect")),
            "--secret" => options.secret = Some(value("--secret")),
            "--calibrate" => {
                options.calibration_workloads = match inline {
                    Some(burst) => burst.parse().expect("--calibrate needs a number"),
                    None => DEFAULT_CALIBRATION_WORKLOADS,
                };
            }
            other => {
                eprintln!("b3-sweep-worker: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if options.secret.is_none() {
        options.secret = std::env::var("B3_SWEEP_SECRET")
            .ok()
            .filter(|s| !s.is_empty());
    }
    let code = match connect {
        Some(addr) => worker_connect(&addr, options),
        None => worker_main(options),
    };
    std::process::exit(code);
}
