//! The sweep fleet daemon and its command-line client (see
//! `b3_harness::distrib::fleet` and `docs/PROTOCOL.md`).
//!
//! `serve` runs the long-lived coordinator: it owns a fleet directory (the
//! journaled job queue `queue.b3fq` plus one segment-log checkpoint per
//! job), schedules queued jobs onto the worker pool, and serves client
//! frames on a control listener. Killing the daemon loses nothing: on
//! restart the queue reloads (a job that was mid-sweep re-queues and
//! resumes from its checkpoint).
//!
//! The remaining subcommands are clients of a running daemon — except
//! `status --dir` and `groups`, which read the fleet directory offline.
//!
//! ```text
//! # terminal 1: the daemon (workers are re-exec'd children of the daemon)
//! b3-sweep-fleet serve --dir /tmp/fleet --control 127.0.0.1:7734 --workers 4
//! # terminal 2: tenants enqueue jobs, watch them run, fetch results
//! b3-sweep-fleet enqueue --control 127.0.0.1:7734 --preset tiny-seq2 --fs btrfs
//! b3-sweep-fleet status  --control 127.0.0.1:7734
//! b3-sweep-fleet watch   --control 127.0.0.1:7734
//! b3-sweep-fleet results --control 127.0.0.1:7734 --job 1
//! ```
//!
//! `serve` flags: `--dir D` (required), `--control ADDR` (default
//! `127.0.0.1:0`, printed once bound), `--workers N`, `--transport
//! stdio|tcp` (how sweep workers attach: stdio children, or a TCP
//! listener + spawned children), `--secret S` / `B3_SWEEP_SECRET` (shared
//! secret for the worker HMAC challenge; with `--transport tcp` loopback
//! workers are exempt unless `--challenge-loopback` is also given),
//! `--respawn N`, `--calibrate`, `--batch-target-ms T`, and
//! `--exit-when-idle` (drain the queue, then exit — instead of waiting
//! for more jobs).
//!
//! `enqueue` takes `--preset` (`tiny`, `tiny-seq2`, a Table 4 name, or an
//! application-transaction preset `app-tiny`/`app-smoke` — see
//! docs/APP.md), `--fs`, `--era`, `--shards`, `--prune`, `--crash-points`
//! (`last`/`all`/`triaged`), `--triage-audit N` (per-workload re-tests
//! of triage-reused crash states; requires `triaged`), and — for `app-*`
//! presets only — `--engine` (`fixed` or a comma-joined seeded-bug list,
//! e.g. `no-data-fsync,torn-commit`). `status` exits
//! non-zero under `--assert-all-done` if any job is not `done` (CI uses
//! this after a drain). `results --out FILE` writes the job's merged
//! group table in its wire encoding — byte-comparable against `groups
//! --single-process --out FILE`, which runs the same space in-process.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use b3_ace::{Bounds, SequencePreset};
use b3_app::{EngineProfile, TxnBounds};
use b3_crashmonkey::CrashPointPolicy;
use b3_harness::distrib::{
    inspect_queue, worker_main, ChildTransport, DistribConfig, FleetClient, FleetConfig,
    FleetCoordinator, JobState, JobStatus, TcpTransport, Transport, WorkerCommand, WorkerOptions,
    DEFAULT_CALIBRATION_WORKLOADS,
};
use b3_harness::{
    bug_group_table, AppSweep, FsKind, GroupTable, PruneMode, RunConfig, Sweep, SweepCheckpoint,
};
use b3_vfs::codec::Encoder;
use b3_vfs::KernelEra;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("b3-sweep-fleet: {message}");
    std::process::exit(1);
}

struct ArgReader {
    args: std::vec::IntoIter<String>,
}

impl ArgReader {
    fn new(args: Vec<String>) -> ArgReader {
        ArgReader {
            args: args.into_iter(),
        }
    }

    /// Next `(flag, inline value)` pair, `--flag=value` style split.
    fn next_flag(&mut self) -> Option<(String, Option<String>)> {
        let arg = self.args.next()?;
        match arg.split_once('=') {
            Some((flag, value)) => Some((flag.to_string(), Some(value.to_string()))),
            None => Some((arg, None)),
        }
    }

    fn value(&mut self, flag: &str, inline: Option<String>) -> String {
        inline
            .or_else(|| self.args.next())
            .unwrap_or_else(|| fail(format!("{flag} needs a value")))
    }
}

/// The job-space flags shared by `enqueue` and `groups --single-process`.
struct JobSpec {
    preset: String,
    fs: FsKind,
    era: KernelEra,
    shards: usize,
    prune: PruneMode,
    crash_points: CrashPointPolicy,
    engine: EngineProfile,
}

impl JobSpec {
    fn new() -> JobSpec {
        JobSpec {
            preset: "tiny-seq2".into(),
            fs: FsKind::Cow,
            era: KernelEra::V4_16,
            shards: 12,
            prune: PruneMode::Off,
            crash_points: CrashPointPolicy::LastOnly,
            engine: EngineProfile::fixed(),
        }
    }

    /// Consumes a flag if it belongs to the job spec.
    fn take(&mut self, flag: &str, inline: Option<String>, reader: &mut ArgReader) -> bool {
        match flag {
            "--preset" => self.preset = reader.value(flag, inline),
            "--fs" => {
                let name = reader.value(flag, inline);
                self.fs = FsKind::parse(&name)
                    .unwrap_or_else(|| fail(format!("unknown file system {name:?}")));
            }
            "--era" => {
                let name = reader.value(flag, inline);
                self.era = KernelEra::parse(&name)
                    .unwrap_or_else(|| fail(format!("unknown kernel era {name:?}")));
            }
            "--shards" => {
                self.shards = reader
                    .value(flag, inline)
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--shards: {e}")));
            }
            "--prune" => {
                let name = reader.value(flag, inline);
                self.prune = PruneMode::parse(&name).unwrap_or_else(|| {
                    fail(format!("unknown prune mode {name:?} (off/rep/audit)"))
                });
            }
            "--crash-points" => {
                self.crash_points = match reader.value(flag, inline).as_str() {
                    "last" => CrashPointPolicy::LastOnly,
                    "all" => CrashPointPolicy::All,
                    "triaged" => CrashPointPolicy::AllTriaged { audit: 0 },
                    other => fail(format!(
                        "unknown crash-point policy {other:?} (last/all/triaged)"
                    )),
                };
            }
            "--triage-audit" => {
                let audit = reader
                    .value(flag, inline)
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--triage-audit: {e}")));
                match &mut self.crash_points {
                    CrashPointPolicy::AllTriaged { audit: slot } => *slot = audit,
                    _ => fail("--triage-audit requires --crash-points triaged"),
                }
            }
            "--engine" => {
                let name = reader.value(flag, inline);
                self.engine =
                    EngineProfile::parse(&name).unwrap_or_else(|e| fail(format!("--engine: {e}")));
            }
            _ => return false,
        }
        true
    }

    fn job(&self) -> b3_harness::SweepJob {
        let mut job = match app_preset_bounds(&self.preset) {
            Some(bounds) => b3_harness::SweepJob::new_app(bounds, self.engine, self.shards),
            None => {
                if !self.engine.is_fixed() {
                    fail("--engine only applies to app-* presets");
                }
                b3_harness::SweepJob::new(preset_bounds(&self.preset), self.shards)
            }
        };
        job.fs = self.fs;
        job.era = self.era;
        job.prune = self.prune;
        job.crashmonkey.crash_points = self.crash_points;
        job
    }
}

/// The application-transaction presets (`None` for file-system presets).
fn app_preset_bounds(name: &str) -> Option<TxnBounds> {
    match name {
        "app-tiny" => Some(TxnBounds::tiny()),
        "app-smoke" => Some(TxnBounds::smoke()),
        _ => None,
    }
}

fn preset_bounds(name: &str) -> Bounds {
    if name == "tiny" {
        return Bounds::tiny();
    }
    if name == "tiny-seq2" {
        // The CI-sized two-operation space (~130 workloads) the distrib
        // tests sweep: big enough to find bugs, small enough for a smoke.
        let mut bounds = Bounds::tiny();
        bounds.seq_len = 2;
        bounds.name_prefix = "tiny-seq2".into();
        return bounds;
    }
    SequencePreset::ALL
        .iter()
        .find(|preset| preset.name() == name)
        .map_or_else(
            || {
                fail(format!(
                    "unknown preset {name:?} (expected tiny, tiny-seq2, or a Table 4 name)"
                ))
            },
            SequencePreset::bounds,
        )
}

fn print_status_rows(rows: &[JobStatus]) {
    if rows.is_empty() {
        println!("queue is empty");
        return;
    }
    for row in rows {
        let error = if row.error.is_empty() {
            String::new()
        } else {
            format!("  ({})", row.error)
        };
        println!(
            "job {:>4}  {:<9}  {} @ {}  {} shards{error}",
            row.id,
            row.state.as_str(),
            row.fs,
            row.era,
            row.num_shards
        );
    }
}

fn write_group_bytes(out: Option<&PathBuf>, groups: &GroupTable) {
    let mut enc = Encoder::new();
    groups.encode(&mut enc);
    let bytes = enc.finish();
    match out {
        Some(path) => {
            std::fs::write(path, &bytes)
                .unwrap_or_else(|e| fail(format!("write {}: {e}", path.display())));
            println!(
                "{} bug group(s), {} bytes written to {}",
                groups.len(),
                bytes.len(),
                path.display()
            );
        }
        None => {
            let table = groups.groups();
            if table.is_empty() {
                println!("no bug groups");
            } else {
                println!("{}", bug_group_table(&table).render());
            }
        }
    }
}

fn cmd_serve(mut reader: ArgReader) {
    let mut dir: Option<PathBuf> = None;
    let mut control = "127.0.0.1:0".to_string();
    let mut workers = 4usize;
    let mut transport_kind = "stdio".to_string();
    let mut secret = std::env::var("B3_SWEEP_SECRET")
        .ok()
        .filter(|s| !s.is_empty());
    let mut challenge_loopback = false;
    let mut respawn = 0usize;
    let mut calibrate = false;
    let mut batch_target_ms: Option<u64> = None;
    let mut exit_when_idle = false;
    while let Some((flag, inline)) = reader.next_flag() {
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(reader.value(&flag, inline))),
            "--control" => control = reader.value(&flag, inline),
            "--workers" => {
                workers = reader
                    .value(&flag, inline)
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--workers: {e}")));
            }
            "--transport" => {
                transport_kind = reader.value(&flag, inline);
                if transport_kind != "stdio" && transport_kind != "tcp" {
                    fail(format!(
                        "unknown transport {transport_kind:?} (expected stdio or tcp)"
                    ));
                }
            }
            "--secret" => secret = Some(reader.value(&flag, inline)),
            "--challenge-loopback" => challenge_loopback = true,
            "--respawn" => {
                respawn = reader
                    .value(&flag, inline)
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--respawn: {e}")));
            }
            "--calibrate" => calibrate = true,
            "--batch-target-ms" => {
                batch_target_ms = Some(
                    reader
                        .value(&flag, inline)
                        .parse()
                        .unwrap_or_else(|e| fail(format!("--batch-target-ms: {e}"))),
                );
            }
            "--exit-when-idle" => exit_when_idle = true,
            other => fail(format!("unknown serve flag {other:?}")),
        }
    }
    let dir = dir.unwrap_or_else(|| fail("serve needs --dir"));

    let config = FleetConfig {
        dir,
        distrib: DistribConfig {
            workers,
            respawn_budget: respawn,
            batch_target: batch_target_ms.map(Duration::from_millis),
            ..DistribConfig::default()
        },
        secret: secret.clone(),
    };
    let fleet = FleetCoordinator::open(config).unwrap_or_else(|e| fail(e));

    // Sweep workers are this same binary re-exec'd with `--worker`.
    let self_exe = std::env::current_exe().expect("daemon knows its own executable");
    let mut worker_cmd = WorkerCommand::new(&self_exe).arg("--worker");
    if calibrate {
        worker_cmd = worker_cmd.arg("--calibrate");
    }
    let transport: Box<dyn Transport> = if transport_kind == "tcp" {
        let mut tcp = TcpTransport::bind("127.0.0.1:0")
            .unwrap_or_else(|e| fail(e))
            .with_launcher(worker_cmd)
            .with_loopback_auth(challenge_loopback);
        if let Some(secret) = &secret {
            tcp = tcp.with_secret(secret.clone());
        }
        println!("worker listener on {}", tcp.local_addr());
        Box::new(tcp)
    } else {
        Box::new(ChildTransport::new(worker_cmd))
    };

    let listener = std::net::TcpListener::bind(&control)
        .unwrap_or_else(|e| fail(format!("bind control listener on {control}: {e}")));
    let control_addr = listener
        .local_addr()
        .expect("control listener has an address");
    println!(
        "fleet daemon: control on {control_addr}, fleet dir {}",
        fleet.dir().display()
    );

    std::thread::scope(|scope| {
        let fleet = &fleet;
        scope.spawn(move || {
            if let Err(error) = fleet.serve_clients(listener) {
                eprintln!("b3-sweep-fleet: control listener failed: {error}");
            }
        });
        let ran = if exit_when_idle {
            let ran = fleet.run_until_idle(transport.as_ref());
            fleet.request_stop();
            ran
        } else {
            fleet.run_forever(transport.as_ref())
        };
        match ran {
            Ok(ran) => println!("fleet daemon stopping after {ran} job run(s)"),
            Err(error) => eprintln!("b3-sweep-fleet: scheduler failed: {error}"),
        }
    });
}

fn cmd_enqueue(mut reader: ArgReader) {
    let mut control: Option<String> = None;
    let mut spec = JobSpec::new();
    while let Some((flag, inline)) = reader.next_flag() {
        if spec.take(&flag, inline.clone(), &mut reader) {
            continue;
        }
        match flag.as_str() {
            "--control" => control = Some(reader.value(&flag, inline)),
            other => fail(format!("unknown enqueue flag {other:?}")),
        }
    }
    let control = control.unwrap_or_else(|| fail("enqueue needs --control"));
    let job = spec.job();
    let mut client = FleetClient::connect(&control).unwrap_or_else(|e| fail(e));
    let id = client.enqueue(&job).unwrap_or_else(|e| fail(e));
    println!(
        "job {id} queued: {} on {} @ {} over {} shards",
        spec.preset,
        job.fs.paper_name(),
        job.era.as_str(),
        job.num_shards
    );
}

fn cmd_status(mut reader: ArgReader) {
    let mut control: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut assert_all_done = false;
    while let Some((flag, inline)) = reader.next_flag() {
        match flag.as_str() {
            "--control" => control = Some(reader.value(&flag, inline)),
            "--dir" => dir = Some(PathBuf::from(reader.value(&flag, inline))),
            "--assert-all-done" => assert_all_done = true,
            other => fail(format!("unknown status flag {other:?}")),
        }
    }
    let rows = match (control, dir) {
        (Some(control), _) => {
            let mut client = FleetClient::connect(&control).unwrap_or_else(|e| fail(e));
            client.status().unwrap_or_else(|e| fail(e))
        }
        (None, Some(dir)) => inspect_queue(&dir).unwrap_or_else(|e| fail(e)),
        (None, None) => fail("status needs --control or --dir"),
    };
    print_status_rows(&rows);
    if assert_all_done {
        let unfinished: Vec<u64> = rows
            .iter()
            .filter(|row| row.state != JobState::Done)
            .map(|row| row.id)
            .collect();
        if rows.is_empty() || !unfinished.is_empty() {
            fail(format!(
                "--assert-all-done: jobs not done: {unfinished:?} ({} total)",
                rows.len()
            ));
        }
    }
}

fn cmd_results(mut reader: ArgReader) {
    let mut control: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    while let Some((flag, inline)) = reader.next_flag() {
        match flag.as_str() {
            "--control" => control = Some(reader.value(&flag, inline)),
            "--job" => {
                job = Some(
                    reader
                        .value(&flag, inline)
                        .parse()
                        .unwrap_or_else(|e| fail(format!("--job: {e}"))),
                );
            }
            "--out" => out = Some(PathBuf::from(reader.value(&flag, inline))),
            other => fail(format!("unknown results flag {other:?}")),
        }
    }
    let control = control.unwrap_or_else(|| fail("results needs --control"));
    let job = job.unwrap_or_else(|| fail("results needs --job"));
    let mut client = FleetClient::connect(&control).unwrap_or_else(|e| fail(e));
    let (status, groups) = client.results(job).unwrap_or_else(|e| fail(e));
    println!(
        "job {} is {} ({} bug group(s), {} raw report(s))",
        status.id,
        status.state.as_str(),
        groups.len(),
        groups.total_reports()
    );
    write_group_bytes(out.as_ref(), &groups);
}

fn cmd_groups(mut reader: ArgReader) {
    let mut checkpoint: Option<PathBuf> = None;
    let mut single_process = false;
    let mut out: Option<PathBuf> = None;
    let mut spec = JobSpec::new();
    while let Some((flag, inline)) = reader.next_flag() {
        if spec.take(&flag, inline.clone(), &mut reader) {
            continue;
        }
        match flag.as_str() {
            "--checkpoint" => checkpoint = Some(PathBuf::from(reader.value(&flag, inline))),
            "--single-process" => single_process = true,
            "--out" => out = Some(PathBuf::from(reader.value(&flag, inline))),
            other => fail(format!("unknown groups flag {other:?}")),
        }
    }
    let groups = match (checkpoint, single_process) {
        (Some(path), false) => {
            let checkpoint = b3_harness::distrib::load_checkpoint(&path)
                .unwrap_or_else(|e| fail(e))
                .unwrap_or_else(|| fail(format!("no checkpoint at {}", path.display())));
            checkpoint.grouped()
        }
        (None, true) => {
            // The in-process reference sweep over the identical space: the
            // grouped table the fleet's distributed runs must byte-match.
            let job = spec.job();
            let fs_spec = job.fs.spec(job.era);
            let config = RunConfig {
                threads: 2,
                crashmonkey: job.crashmonkey,
                ..RunConfig::default()
            };
            match &job.space {
                b3_harness::SweepSpace::Fs(bounds) => {
                    let mut reference = SweepCheckpoint::new(bounds, job.num_shards);
                    let _ = Sweep::new(fs_spec.as_ref(), config)
                        .shards(job.num_shards)
                        .prune(job.prune)
                        .run_resumable(bounds, &mut reference);
                    reference.grouped()
                }
                b3_harness::SweepSpace::App { bounds, engine } => {
                    let sweep =
                        AppSweep::new(fs_spec.as_ref(), config, *engine).shards(job.num_shards);
                    let mut reference = sweep.empty_checkpoint(bounds);
                    let _ = sweep.run_resumable(bounds, &mut reference);
                    reference.grouped()
                }
            }
        }
        _ => fail("groups needs exactly one of --checkpoint FILE or --single-process"),
    };
    write_group_bytes(out.as_ref(), &groups);
}

fn cmd_watch(mut reader: ArgReader) {
    let mut control: Option<String> = None;
    let mut count: Option<usize> = None;
    while let Some((flag, inline)) = reader.next_flag() {
        match flag.as_str() {
            "--control" => control = Some(reader.value(&flag, inline)),
            "--count" => {
                count = Some(
                    reader
                        .value(&flag, inline)
                        .parse()
                        .unwrap_or_else(|e| fail(format!("--count: {e}"))),
                );
            }
            other => fail(format!("unknown watch flag {other:?}")),
        }
    }
    let control = control.unwrap_or_else(|| fail("watch needs --control"));
    let client = FleetClient::connect(&control).unwrap_or_else(|e| fail(e));
    let mut stream = client.subscribe().unwrap_or_else(|e| fail(e));
    let mut seen = 0usize;
    while let Some(event) = stream.next_event() {
        println!(
            "job {}: new bug group {:?} -> {} ({} report(s))",
            event.job,
            event.skeleton,
            event.consequence.describe(),
            event.count
        );
        let _ = std::io::stdout().flush();
        seen += 1;
        if count.is_some_and(|count| seen >= count) {
            return;
        }
    }
    println!("event stream closed by the daemon");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Children the daemon spawns as sweep workers re-enter here.
    if argv.first().is_some_and(|arg| arg == "--worker") {
        let mut options = WorkerOptions::default();
        if argv.iter().any(|arg| arg == "--calibrate") {
            options.calibration_workloads = DEFAULT_CALIBRATION_WORKLOADS;
        }
        std::process::exit(worker_main(options));
    }
    let Some(command) = argv.first().cloned() else {
        fail("usage: b3-sweep-fleet <serve|enqueue|status|results|groups|watch> [flags]");
    };
    let reader = ArgReader::new(argv[1..].to_vec());
    match command.as_str() {
        "serve" => cmd_serve(reader),
        "enqueue" => cmd_enqueue(reader),
        "status" => cmd_status(reader),
        "results" => cmd_results(reader),
        "groups" => cmd_groups(reader),
        "watch" => cmd_watch(reader),
        other => fail(format!("unknown command {other:?}")),
    }
}
