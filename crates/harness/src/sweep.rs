//! Sharded, resumable sweeps over ACE-generated workload spaces.
//!
//! Where [`crate::runner::run_stream`] fans a single workload iterator out
//! to worker threads, a [`Sweep`] splits the bounded space itself into
//! deterministic generator shards ([`Bounds::shard`]) and lets workers
//! *steal whole shards*: claiming a shard is one atomic increment, and
//! inside a shard a worker drives its own `WorkloadGenerator` with no
//! shared state at all — the in-process analogue of the paper copying
//! workload subsets to 780 VMs (§6.1).
//!
//! Because every shard is independently enumerable, a sweep can stop and
//! resume: a [`SweepCheckpoint`] records the per-shard results of every
//! *completed* shard (serialized with the workspace codec), and a resumed
//! sweep re-runs only the shards the checkpoint is missing. A killed sweep
//! therefore converges to exactly the same [`RunSummary`] counts as an
//! uninterrupted one — partially processed shards are simply re-run.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use b3_ace::canon::{Class, Classifier};
use b3_ace::{Bounds, WorkloadGenerator, CANON_VERSION};
use b3_crashmonkey::{CrashMonkey, CrashPointPolicy, WorkloadOutcome};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::FsSpec;
use b3_vfs::snapshot::EntryInterner;
use b3_vfs::workload::Workload;

use crate::dedup::GroupTable;
use crate::postprocess::BugGroup;
use crate::runner::{spawn_progress_monitor, LiveCounters, RunConfig, RunSummary};

/// Live throughput of one remote worker process, as observed by a
/// distributed sweep coordinator (see [`crate::distrib`]).
#[derive(Debug, Clone)]
pub struct WorkerThroughput {
    /// Worker index (0-based, stable for the life of the coordinator).
    pub worker: usize,
    /// Transport endpoint of the worker's current link (`child:<pid>`,
    /// `host:port`, `ssh:<host>#<pid>`), so multi-host progress output is
    /// attributable to a machine rather than a bare index. Empty until the
    /// worker's handshake arrives (and for in-process sweeps).
    pub endpoint: String,
    /// Workloads this worker has tested so far.
    pub tested: u64,
    /// Shards this worker has completed so far.
    pub shards: u64,
    /// Workloads tested per second of wall-clock time, or `None` once the
    /// worker has exited (cleanly or not).
    pub throughput: Option<f64>,
    /// The rate the coordinator currently sizes this worker's batches by:
    /// the observed-throughput EWMA once ShardDone frames have arrived,
    /// else the `Hello` calibration, else `None`. Cleared the moment the
    /// link dies, so a dead slot never keeps a stale rate — `None` whenever
    /// `throughput` is `None`.
    pub rate: Option<f64>,
}

/// A point-in-time view of a running sweep, handed to progress callbacks.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Workloads tested so far (including resumed shards).
    pub tested: usize,
    /// Workloads skipped so far (could not execute at all).
    pub skipped: usize,
    /// Candidates pruned as equivalent to an earlier representative
    /// ([`PruneMode`]) — distinct from `skipped`, so throughput numbers
    /// stay honest about what was actually crash-tested.
    pub pruned: usize,
    /// Workloads that produced at least one bug report.
    pub bugs: usize,
    /// Shards fully completed (including ones restored from a checkpoint).
    pub completed_shards: usize,
    /// Total shards in the sweep (0 when running over a plain stream).
    pub total_shards: usize,
    /// Upper bound on the total workloads of the space, when known.
    pub total_workloads: Option<u64>,
    /// Wall-clock time since the sweep (or this resume) started.
    pub elapsed: Duration,
    /// Estimated time to completion, extrapolated from throughput so far.
    pub eta: Option<Duration>,
    /// Per-worker throughput, populated only by distributed sweeps (one
    /// entry per worker process); empty for in-process sweeps.
    pub per_worker: Vec<WorkerThroughput>,
}

impl Progress {
    /// One-line human-readable rendering (used by the examples).
    pub fn describe(&self) -> String {
        let mut line = format!("tested {} / skipped {}", self.tested, self.skipped);
        if self.pruned > 0 {
            line.push_str(&format!(" / pruned {}", self.pruned));
        }
        line.push_str(&format!(" / bugs {}", self.bugs));
        if self.total_shards > 0 {
            line.push_str(&format!(
                " | shards {}/{}",
                self.completed_shards, self.total_shards
            ));
        }
        if let Some(total) = self.total_workloads {
            line.push_str(&format!(" | ~{total} candidates"));
        }
        line.push_str(&format!(" | {:.1?} elapsed", self.elapsed));
        if let Some(eta) = self.eta {
            line.push_str(&format!(" | ~{eta:.0?} left"));
        }
        if !self.per_worker.is_empty() {
            let workers: Vec<String> = self
                .per_worker
                .iter()
                .map(|w| {
                    let label = if w.endpoint.is_empty() {
                        format!("w{}", w.worker)
                    } else {
                        format!("w{}@{}", w.worker, w.endpoint)
                    };
                    match w.throughput {
                        Some(rate) => format!("{label} {rate:.0}/s"),
                        None => format!("{label} gone"),
                    }
                })
                .collect();
            line.push_str(&format!(" | [{}]", workers.join(" ")));
        }
        line
    }
}

/// How a sweep treats candidates that are crash-behaviorally equivalent to
/// an earlier candidate (see [`b3_ace::canon`]).
///
/// The mode participates in checkpoint fingerprints (via
/// [`PruneMode::scope_component`], which embeds [`CANON_VERSION`]), so a
/// representative checkpoint can never silently resume a full sweep (or
/// vice versa), and a distributed coordinator and worker that disagree on
/// the canonicalization scheme reject each other at the fingerprint echo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Test every candidate (the pre-canonicalization behavior).
    #[default]
    Off,
    /// Test only each equivalence class's representative (its
    /// enumeration-first member); count the rest as `pruned`.
    Representative,
    /// Like `Representative`, but additionally crash-test up to
    /// `samples_per_class` deterministically-sampled non-representative
    /// members per class *per shard* and record an [`AuditFailure`]
    /// whenever a member's outcome diverges from its representative's —
    /// the empirical bound on false pruning.
    Audit {
        /// Extra members audited per class per shard.
        samples_per_class: u32,
    },
}

impl PruneMode {
    /// True for [`PruneMode::Off`].
    pub fn is_off(&self) -> bool {
        matches!(self, PruneMode::Off)
    }

    /// The checkpoint-scope component this mode contributes: empty for
    /// `Off` (so existing full-sweep fingerprints are unchanged), else a
    /// `canon<version>:<mode>` tag.
    pub fn scope_component(&self) -> String {
        match self {
            PruneMode::Off => String::new(),
            PruneMode::Representative => format!("canon{CANON_VERSION}:rep"),
            PruneMode::Audit { samples_per_class } => {
                format!("canon{CANON_VERSION}:audit{samples_per_class}")
            }
        }
    }

    /// Parses the `--prune` CLI spellings.
    pub fn parse(text: &str) -> Option<PruneMode> {
        match text {
            "off" => Some(PruneMode::Off),
            "rep" | "representative" => Some(PruneMode::Representative),
            "audit" => Some(PruneMode::Audit {
                samples_per_class: 2,
            }),
            _ => None,
        }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        match self {
            PruneMode::Off => {
                enc.put_u8(0);
                enc.put_u32(0);
            }
            PruneMode::Representative => {
                enc.put_u8(1);
                enc.put_u32(0);
            }
            PruneMode::Audit { samples_per_class } => {
                enc.put_u8(2);
                enc.put_u32(*samples_per_class);
            }
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> FsResult<PruneMode> {
        let tag = dec.get_u8()?;
        let samples = dec.get_u32()?;
        match tag {
            0 => Ok(PruneMode::Off),
            1 => Ok(PruneMode::Representative),
            2 => Ok(PruneMode::Audit {
                samples_per_class: samples,
            }),
            other => Err(FsError::Corrupted(format!("unknown prune mode {other}"))),
        }
    }
}

/// One divergence found by [`PruneMode::Audit`]: a pruned class member
/// whose crash-test outcome differs from its representative's, i.e. direct
/// evidence the canonicalization is too coarse for this space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// The canonical key of the offending equivalence class.
    pub class: String,
    /// Workload name of the class representative (or a placeholder when
    /// the representative could not even be materialized).
    pub representative: String,
    /// Workload name of the audited member that diverged.
    pub member: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl AuditFailure {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.class);
        enc.put_str(&self.representative);
        enc.put_str(&self.member);
        enc.put_str(&self.detail);
    }

    fn decode(dec: &mut Decoder<'_>) -> FsResult<AuditFailure> {
        Ok(AuditFailure {
            class: dec.get_str()?,
            representative: dec.get_str()?,
            member: dec.get_str()?,
            detail: dec.get_str()?,
        })
    }
}

/// FNV-1a over bytes; seeds audit sampling from a checkpoint fingerprint
/// so the sampled members are deterministic per (sweep, canon version) but
/// differ across unrelated sweeps.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64-style finalizer mixing the sweep seed with a candidate index.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What to do with one generated candidate under the active [`PruneMode`].
pub(crate) enum Decision {
    /// Crash-test it (representative, or pruning is off).
    Test,
    /// Count it as pruned; when `audit` is set, also crash-test it against
    /// its representative and record any divergence.
    Prune { audit: Option<AuditPlan> },
}

/// An audit obligation for one sampled non-representative member.
pub(crate) struct AuditPlan {
    /// The class's canonical key.
    key: String,
    /// The representative's materialized workload; `None` when phase 4
    /// rejected the representative's op sequence — itself a divergence,
    /// since the member *was* materialized.
    rep: Option<Workload>,
}

/// The per-sweep pruning context shared by the in-process shard loop and
/// the distributed worker's [`run_shard`]: the classifier (if any), the
/// audit sampling parameters, and the deterministic sampling seed.
pub(crate) struct PruneContext<'c> {
    classifier: Option<&'c Classifier>,
    samples_per_class: u32,
    seed: u64,
}

impl<'c> PruneContext<'c> {
    /// Builds the context for a mode. `fingerprint` is the sweep's
    /// checkpoint fingerprint (already canon-version-scoped), which seeds
    /// audit sampling.
    pub(crate) fn new(
        mode: PruneMode,
        classifier: Option<&'c Classifier>,
        fingerprint: &str,
    ) -> PruneContext<'c> {
        let samples_per_class = match mode {
            PruneMode::Audit { samples_per_class } => samples_per_class,
            _ => 0,
        };
        PruneContext {
            classifier: match mode {
                PruneMode::Off => None,
                _ => classifier,
            },
            samples_per_class,
            seed: fnv1a64(fingerprint.as_bytes()),
        }
    }

    /// Classifies one candidate. `class_counts` is the caller's per-shard
    /// map of audited members per class (kept per shard so sampling is a
    /// pure function of (fingerprint, shard) and re-runs of a shard agree).
    pub(crate) fn decide(
        &self,
        workload: &Workload,
        class_counts: &mut HashMap<String, u32>,
    ) -> Decision {
        let Some(classifier) = self.classifier else {
            return Decision::Test;
        };
        match classifier.classify(&workload.ops) {
            None | Some(Class::Representative { .. }) => Decision::Test,
            Some(Class::Member {
                key,
                rep_ops,
                rep_index,
            }) => {
                let mut audit = None;
                if self.samples_per_class > 0 {
                    let count = class_counts.entry(key.clone()).or_insert(0);
                    if *count < self.samples_per_class && self.selected(&workload.name) {
                        *count += 1;
                        audit = Some(AuditPlan {
                            key,
                            rep: classifier.representative_workload(&rep_ops, rep_index),
                        });
                    }
                }
                Decision::Prune { audit }
            }
        }
    }

    /// Deterministic coin flip per candidate: the trailing digits of the
    /// workload name are its global enumeration index, mixed with the
    /// sweep seed.
    fn selected(&self, name: &str) -> bool {
        let index = name
            .rsplit('-')
            .next()
            .and_then(|digits| digits.parse::<u64>().ok())
            .unwrap_or(0);
        mix(self.seed, index) & 1 == 0
    }
}

/// The audit-relevant signature of one crash-test outcome: skipped/error
/// status, or the sorted deduplicated set of `(crash point, consequence)`
/// pairs. Deliberately excludes workload names, paths, and free-text
/// reasons, which legitimately differ between a member and its
/// representative.
fn outcome_signature(outcome: &FsResult<WorkloadOutcome>) -> String {
    match outcome {
        Err(_) => "error".into(),
        Ok(outcome) => {
            if outcome.skipped.is_some() {
                return "skipped".into();
            }
            let mut pairs: Vec<(u32, u8)> = outcome
                .bugs
                .iter()
                .map(|bug| (bug.crash_point, bug.consequence.code()))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            format!("{pairs:?}")
        }
    }
}

/// Runs one audit obligation: crash-tests the pruned member and its
/// representative and records a divergence, folding both timings into the
/// shard's workload time (audit work is real work).
pub(crate) fn audit_member(
    monkey: &CrashMonkey<'_>,
    member: &Workload,
    plan: AuditPlan,
    result: &mut ShardResult,
) {
    result.audited += 1;
    let member_outcome = monkey.test_workload(member);
    if let Ok(outcome) = &member_outcome {
        result.workload_time_nanos += outcome.timing.total.as_nanos() as u64;
    }
    let Some(rep) = plan.rep else {
        result.audit_failures.push(AuditFailure {
            class: plan.key,
            representative: "<unmaterializable>".into(),
            member: member.name.clone(),
            detail: "phase 4 rejected the representative's op sequence \
                     but emitted the member's"
                .into(),
        });
        return;
    };
    let rep_outcome = monkey.test_workload(&rep);
    if let Ok(outcome) = &rep_outcome {
        result.workload_time_nanos += outcome.timing.total.as_nanos() as u64;
    }
    let member_signature = outcome_signature(&member_outcome);
    let rep_signature = outcome_signature(&rep_outcome);
    if member_signature != rep_signature {
        result.audit_failures.push(AuditFailure {
            class: plan.key,
            representative: rep.name.clone(),
            member: member.name.clone(),
            detail: format!(
                "member outcome {member_signature} diverges from \
                 representative outcome {rep_signature}"
            ),
        });
    }
}

/// The recorded outcome of one completed shard. Also the unit of work the
/// distributed protocol ([`crate::distrib`]) ships from worker processes
/// back to the coordinator.
///
/// Bug reports are deduplicated *at the source*: instead of every raw
/// [`b3_crashmonkey::BugReport`], a shard records its per-group exemplars
/// and counts in a [`GroupTable`]. A shard of a bug-dense file system can
/// produce tens of thousands of raw reports in a few dozen groups, so this
/// bounds shard frames, coordinator memory, and checkpoint size by bug
/// *diversity* rather than bug *density*.
///
/// Public only because it rides inside the public protocol frames
/// ([`crate::distrib::protocol::FromWorker::ShardDone`]); its fields are an
/// internal detail of the sweep engine and stay crate-private.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardResult {
    pub(crate) tested: u64,
    pub(crate) skipped: u64,
    /// Candidates not tested because they are equivalent to an earlier
    /// class representative ([`PruneMode`]). Disjoint from `skipped`,
    /// which counts candidates that could not execute at all.
    pub(crate) pruned: u64,
    /// Audit work: pruned candidates that were *also* crash-tested by
    /// [`PruneMode::Audit`] (a subset of `pruned`; their outcomes are
    /// compared against the representative but never folded into `tested`
    /// or `groups`), plus — under `CrashPointPolicy::AllTriaged` — reused
    /// crash states the triage audit re-tested dynamically.
    pub(crate) audited: u64,
    /// Workloads that produced at least one bug report.
    pub(crate) buggy: u64,
    pub(crate) workload_time_nanos: u64,
    /// Per-bug-group exemplars + counts for every report of the shard.
    pub(crate) groups: GroupTable,
    /// Divergences Audit mode found in this shard.
    pub(crate) audit_failures: Vec<AuditFailure>,
}

/// What [`ShardResult::absorb`] recorded, so callers can mirror the outcome
/// into live counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Absorbed {
    Tested { buggy: bool },
    Skipped,
}

impl ShardResult {
    /// True when two results describe the same outcome — identical counts
    /// and grouped reports — ignoring `workload_time_nanos`, which is
    /// wall-clock and differs between independent runs of the same shard.
    /// This is the comparison duplicate-shard merges must use: a
    /// legitimately re-run shard reproduces everything *except* its timing.
    pub(crate) fn same_outcome(&self, other: &ShardResult) -> bool {
        self.tested == other.tested
            && self.skipped == other.skipped
            && self.pruned == other.pruned
            && self.audited == other.audited
            && self.buggy == other.buggy
            && self.groups == other.groups
            && self.audit_failures == other.audit_failures
    }

    /// Folds one CrashMonkey outcome into this shard's counters.
    pub(crate) fn absorb(&mut self, outcome: FsResult<WorkloadOutcome>) -> Absorbed {
        match outcome {
            Ok(outcome) => {
                if outcome.skipped.is_some() {
                    self.skipped += 1;
                    Absorbed::Skipped
                } else {
                    self.tested += 1;
                    self.workload_time_nanos += outcome.timing.total.as_nanos() as u64;
                    // Triage audits (AllTriaged re-testing reused crash
                    // states) ride the same audited counter and
                    // audit-failure channel as canonicalization audits, so
                    // distributed sweeps surface them without a wire
                    // format change.
                    self.audited += u64::from(outcome.triage_audited);
                    for divergence in &outcome.triage_divergences {
                        self.audit_failures.push(AuditFailure {
                            class: format!("triage:{}", outcome.skeleton),
                            representative: "<triage-witness>".into(),
                            member: outcome.workload_name.clone(),
                            detail: divergence.clone(),
                        });
                    }
                    let buggy = outcome.found_bug();
                    if buggy {
                        self.buggy += 1;
                    }
                    for bug in outcome.bugs {
                        self.groups.observe(bug);
                    }
                    Absorbed::Tested { buggy }
                }
            }
            Err(_) => {
                self.skipped += 1;
                Absorbed::Skipped
            }
        }
    }

    /// Adds this shard's scalar counters to a running summary (grouped
    /// reports are aggregated separately, via [`GroupTable::merge_from`]).
    pub(crate) fn add_counts(&self, summary: &mut RunSummary) {
        summary.tested += self.tested as usize;
        summary.skipped += self.skipped as usize;
        summary.pruned += self.pruned as usize;
        summary.audited += self.audited as usize;
        summary.raw_reports += self.groups.total_reports() as usize;
        summary.total_workload_time += Duration::from_nanos(self.workload_time_nanos);
        summary
            .audit_failures
            .extend(self.audit_failures.iter().cloned());
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tested);
        enc.put_u64(self.skipped);
        enc.put_u64(self.pruned);
        enc.put_u64(self.audited);
        enc.put_u64(self.buggy);
        enc.put_u64(self.workload_time_nanos);
        self.groups.encode(enc);
        enc.put_u64(self.audit_failures.len() as u64);
        for failure in &self.audit_failures {
            failure.encode(enc);
        }
    }

    /// Decodes one shard result. All length fields are validated against
    /// the remaining buffer (see [`GroupTable::decode`]), so a truncated or
    /// corrupt worker frame yields an error instead of a huge allocation.
    pub(crate) fn decode(dec: &mut Decoder<'_>) -> FsResult<ShardResult> {
        let tested = dec.get_u64()?;
        let skipped = dec.get_u64()?;
        let pruned = dec.get_u64()?;
        let audited = dec.get_u64()?;
        let buggy = dec.get_u64()?;
        let workload_time_nanos = dec.get_u64()?;
        let groups = GroupTable::decode(dec)?;
        let failure_count = dec.get_u64()? as usize;
        // Each failure is at least four string length prefixes (32 bytes).
        if failure_count > dec.remaining() / 32 {
            return Err(FsError::Corrupted(format!(
                "shard result declares {failure_count} audit failures but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut audit_failures = Vec::with_capacity(failure_count);
        for _ in 0..failure_count {
            audit_failures.push(AuditFailure::decode(dec)?);
        }
        Ok(ShardResult {
            tested,
            skipped,
            pruned,
            audited,
            buggy,
            workload_time_nanos,
            groups,
            audit_failures,
        })
    }
}

/// Runs one generator shard to completion on the given CrashMonkey
/// instance. `tick` runs before every *executed* workload (tested or
/// audited; pruned candidates cost no tick) — the distributed worker uses
/// it to implement its crash-injection test hook.
pub(crate) fn run_shard(
    monkey: &CrashMonkey<'_>,
    bounds: &Bounds,
    shard_index: u32,
    num_shards: usize,
    prune: &PruneContext<'_>,
    mut tick: impl FnMut(),
) -> ShardResult {
    let shard = bounds.shard(shard_index as usize, num_shards);
    let generator = WorkloadGenerator::for_shard(bounds.clone(), &shard);
    let mut result = ShardResult::default();
    // Triage witnesses must not leak across shards: a shard's audited
    // counter depends on which crash states hit the cache, and a shard's
    // result must be a pure function of (bounds, scope, shard index).
    monkey.reset_triage();
    let mut class_counts: HashMap<String, u32> = HashMap::new();
    for workload in generator {
        match prune.decide(&workload, &mut class_counts) {
            Decision::Test => {
                tick();
                result.absorb(monkey.test_workload(&workload));
            }
            Decision::Prune { audit: None } => {
                result.pruned += 1;
            }
            Decision::Prune { audit: Some(plan) } => {
                result.pruned += 1;
                tick();
                audit_member(monkey, &workload, plan, &mut result);
            }
        }
    }
    result
}

// "B3S4": bumped from "B3S3" when shard results grew the pruned/audited
// counters and the audit-failure list (representative sweeps). "B3S3"
// itself was the bump from raw report lists to grouped exemplar + count
// tables ("B3S2"). Either older format fails cleanly at decode ("bad sweep
// checkpoint magic") instead of as garbage fields.
const CHECKPOINT_MAGIC: u32 = 0x4233_5334;

/// Persistent record of a sweep's completed shards.
///
/// Serialized with the workspace codec ([`SweepCheckpoint::to_bytes`] /
/// [`SweepCheckpoint::from_bytes`]); the caller decides where the bytes
/// live (a file, for the examples). The fingerprint ties a checkpoint to
/// one (bounds, shard count) pair so a stale checkpoint is rejected instead
/// of silently mis-resuming.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    fingerprint: String,
    num_shards: u32,
    results: BTreeMap<u32, ShardResult>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for sweeping `bounds` split into `num_shards`.
    pub fn new(bounds: &Bounds, num_shards: usize) -> Self {
        Self::scoped(bounds, num_shards, "")
    }

    /// An empty checkpoint additionally scoped by a caller-chosen context
    /// string. The scope participates in the fingerprint, so checkpoints
    /// recorded under different execution contexts — e.g. different file
    /// systems or CrashMonkey configurations in a distributed sweep
    /// ([`crate::distrib`]) — refuse to resume or merge into each other
    /// even over identical bounds.
    pub fn scoped(bounds: &Bounds, num_shards: usize, scope: &str) -> Self {
        SweepCheckpoint {
            fingerprint: Self::fingerprint_for(bounds, num_shards, scope),
            num_shards: num_shards as u32,
            results: BTreeMap::new(),
        }
    }

    /// An empty checkpoint for sweeping the application-level transaction
    /// space `bounds` split into `num_shards`, under `scope`. The `txn/`
    /// grammar is disjoint from the syscall fingerprint grammar by
    /// construction, so an app checkpoint can never resume an fs sweep (or
    /// vice versa) even with colliding scopes.
    pub fn scoped_app(bounds: &b3_app::TxnBounds, num_shards: usize, scope: &str) -> Self {
        SweepCheckpoint {
            fingerprint: format!(
                "{scope}|txn/{}/{}/{}cand/{num_shards}shards",
                bounds.name_prefix,
                bounds.describe(),
                bounds.candidates()
            ),
            num_shards: num_shards as u32,
            results: BTreeMap::new(),
        }
    }

    fn fingerprint_for(bounds: &Bounds, num_shards: usize, scope: &str) -> String {
        // Every knob that affects which workloads the space enumerates (or
        // their order) participates: the op list is order-sensitive on
        // purpose, `describe()` covers the file-set and pattern bounds, and
        // the persistence flags distinguish same-sized phase-3 choices.
        let ops: Vec<String> = bounds.ops.iter().map(|op| format!("{op:?}")).collect();
        let p = &bounds.persistence;
        format!(
            "{scope}|{}/seq{}/[{}]/{}/p{}{}{}{}/{}cand/{}shards",
            bounds.name_prefix,
            bounds.seq_len,
            ops.join(","),
            bounds.describe(),
            u8::from(p.fsync),
            u8::from(p.fdatasync),
            u8::from(p.sync),
            u8::from(p.allow_none),
            WorkloadGenerator::estimate_candidates(bounds),
            num_shards
        )
    }

    /// True when this checkpoint belongs to the given (unscoped) bounds and
    /// shard count.
    pub fn matches(&self, bounds: &Bounds, num_shards: usize) -> bool {
        self.matches_scoped(bounds, num_shards, "")
    }

    /// True when this checkpoint belongs to the given bounds, shard count,
    /// and scope (see [`SweepCheckpoint::scoped`]).
    pub fn matches_scoped(&self, bounds: &Bounds, num_shards: usize, scope: &str) -> bool {
        self.fingerprint == Self::fingerprint_for(bounds, num_shards, scope)
            && self.num_shards as usize == num_shards
    }

    /// The fingerprint tying this checkpoint to one (bounds, shard count)
    /// pair.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Merges the completed shards of `other` into `self` (set union of
    /// per-shard grouped results).
    ///
    /// Merging is the coordinator's aggregation primitive: workers (or whole
    /// partial runs) each produce a checkpoint covering a subset of the
    /// shards, and any merge order converges to the same union — the
    /// operation is commutative, associative, and idempotent, which
    /// `tests/checkpoint_merge.rs` pins down property-by-property. The
    /// aggregate group view ([`SweepCheckpoint::grouped`]) unions the
    /// per-shard [`GroupTable`]s — counts add, and each group keeps the
    /// lexicographically-first exemplar — so the grouped result is also
    /// independent of shard partition and merge order, and equals post-hoc
    /// [`crate::postprocess::group_reports`] over the raw report stream.
    ///
    /// Checkpoints with different fingerprints (different bounds, shard
    /// counts, or scopes) describe different sweeps; merging them is
    /// rejected rather than silently combined. When both sides recorded the
    /// same shard the incoming result wins (last-writer-wins) — a shard's
    /// *outcome* (counts and grouped reports) is a pure function of
    /// (bounds, scope, shard index), so duplicates must agree on everything
    /// except the wall-clock per-shard timing, and debug builds assert
    /// exactly that via the timing-ignoring `ShardResult::same_outcome`
    /// (full `ShardResult` equality would spuriously panic on a
    /// legitimately re-run shard). The union is therefore commutative,
    /// associative, and idempotent up to that timing field.
    pub fn merge(&mut self, other: &SweepCheckpoint) -> FsResult<()> {
        if self.fingerprint != other.fingerprint || self.num_shards != other.num_shards {
            return Err(FsError::InvalidArgument(format!(
                "cannot merge sweep checkpoints of different sweeps \
                 (ours {:?}, theirs {:?})",
                self.fingerprint, other.fingerprint
            )));
        }
        for (&shard, result) in &other.results {
            if let Some(existing) = self.results.get(&shard) {
                debug_assert!(
                    existing.same_outcome(result),
                    "shard {shard} was re-run with a different outcome; a shard's \
                     counts and reports must be a pure function of \
                     (bounds, scope, shard index)"
                );
            }
            self.results.insert(shard, result.clone());
        }
        Ok(())
    }

    /// A copy of this checkpoint restricted to the given shards (shards the
    /// checkpoint has no result for are ignored). `subset` and [`merge`]
    /// together let a coordinator split a checkpoint across workers and
    /// reassemble it.
    ///
    /// [`merge`]: SweepCheckpoint::merge
    pub fn subset(&self, shards: impl IntoIterator<Item = u32>) -> SweepCheckpoint {
        let mut results = BTreeMap::new();
        for shard in shards {
            if let Some(result) = self.results.get(&shard) {
                results.insert(shard, result.clone());
            }
        }
        SweepCheckpoint {
            fingerprint: self.fingerprint.clone(),
            num_shards: self.num_shards,
            results,
        }
    }

    /// Shards not yet recorded, in ascending order — the work remaining.
    pub fn missing_shards(&self) -> Vec<u32> {
        (0..self.num_shards)
            .filter(|shard| !self.results.contains_key(shard))
            .collect()
    }

    /// True when the given shard's result is recorded.
    pub fn has_shard(&self, shard: u32) -> bool {
        self.results.contains_key(&shard)
    }

    /// Total workloads that produced at least one bug report, across all
    /// recorded shards.
    pub fn total_buggy(&self) -> u64 {
        self.results.values().map(|r| r.buggy).sum()
    }

    /// Number of shards the sweep is split into.
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// Shards whose results are recorded.
    pub fn completed_shards(&self) -> usize {
        self.results.len()
    }

    /// True once every shard's result is recorded.
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.num_shards as usize
    }

    /// Aggregates all recorded shard results into a summary (elapsed time is
    /// zero — the checkpoint records work, not wall-clock). The summary's
    /// `reports` are the deduplicated group **exemplars** in group-key
    /// order; `raw_reports` counts every underlying report.
    pub fn summary(&self) -> RunSummary {
        let mut summary = RunSummary::default();
        for result in self.results.values() {
            result.add_counts(&mut summary);
        }
        summary.reports = self.grouped().into_exemplars();
        summary
    }

    /// The union of every recorded shard's group table: per bug group, the
    /// total raw-report count and the lexicographically-first exemplar.
    /// Independent of shard partition and merge order.
    pub fn grouped(&self) -> GroupTable {
        let mut table = GroupTable::new();
        for result in self.results.values() {
            table.merge_from(&result.groups);
        }
        table
    }

    /// The deduplicated bug groups of all recorded shards (the
    /// post-processing view of [`SweepCheckpoint::grouped`]).
    pub fn bug_groups(&self) -> Vec<BugGroup> {
        self.grouped().groups()
    }

    pub(crate) fn record(&mut self, shard: u32, result: ShardResult) {
        self.results.insert(shard, result);
    }

    /// Serializes the checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(CHECKPOINT_MAGIC);
        enc.put_str(&self.fingerprint);
        enc.put_u32(self.num_shards);
        enc.put_u64(self.results.len() as u64);
        for (shard, result) in &self.results {
            enc.put_u32(*shard);
            result.encode(&mut enc);
        }
        enc.finish()
    }

    /// Deserializes a checkpoint produced by [`SweepCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> FsResult<SweepCheckpoint> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != CHECKPOINT_MAGIC {
            return Err(FsError::Corrupted("bad sweep checkpoint magic".into()));
        }
        let fingerprint = dec.get_str()?;
        let num_shards = dec.get_u32()?;
        let count = dec.get_u64()? as usize;
        // Each recorded shard needs at least its index, six counters, an
        // (empty) group table, and an (empty) audit-failure list — 68
        // bytes; a declared count beyond what the buffer can hold is
        // corruption, not an allocation request.
        if count > dec.remaining() / 68 {
            return Err(FsError::Corrupted(format!(
                "checkpoint declares {count} shard results but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut results = BTreeMap::new();
        for _ in 0..count {
            let shard = dec.get_u32()?;
            results.insert(shard, ShardResult::decode(&mut dec)?);
        }
        Ok(SweepCheckpoint {
            fingerprint,
            num_shards,
            results,
        })
    }
}

/// A sharded, resumable sweep over one bounded workload space.
pub struct Sweep<'a> {
    spec: &'a (dyn FsSpec + Sync),
    config: RunConfig,
    num_shards: usize,
    prune: PruneMode,
    /// Test-only classifier override (see
    /// [`Sweep::with_classifier_for_tests`]).
    classifier_override: Option<Classifier>,
    progress: Option<&'a (dyn Fn(&Progress) + Sync)>,
    progress_interval: Duration,
}

impl<'a> Sweep<'a> {
    /// Creates a sweep with a default shard count of eight shards per worker
    /// thread (small enough chunks that a killed run loses little work,
    /// large enough that claiming stays negligible).
    pub fn new(spec: &'a (dyn FsSpec + Sync), config: RunConfig) -> Self {
        Sweep {
            spec,
            num_shards: (config.threads.max(1) * 8).max(1),
            config,
            prune: PruneMode::Off,
            classifier_override: None,
            progress: None,
            progress_interval: Duration::from_secs(1),
        }
    }

    /// Overrides the number of generator shards.
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.max(1);
        self
    }

    /// Sets how equivalent candidates are pruned (default
    /// [`PruneMode::Off`]). The mode scopes the sweep's checkpoints, so a
    /// representative run and a full run never share a checkpoint.
    pub fn prune(mut self, mode: PruneMode) -> Self {
        self.prune = mode;
        self
    }

    /// Test-only: substitute the classifier the prune modes consult —
    /// the audit regression tests inject
    /// [`Classifier::unsound_for_tests`] to prove Audit mode catches an
    /// over-coarse equivalence. Ignored when pruning is off.
    #[doc(hidden)]
    pub fn with_classifier_for_tests(mut self, classifier: Classifier) -> Self {
        self.classifier_override = Some(classifier);
        self
    }

    /// Installs a periodic progress callback.
    pub fn on_progress(
        mut self,
        callback: &'a (dyn Fn(&Progress) + Sync),
        interval: Duration,
    ) -> Self {
        self.progress = Some(callback);
        self.progress_interval = interval;
        self
    }

    /// The checkpoint-scope component of this sweep's execution context:
    /// the crash-point policy (empty for the default `LastOnly`, so
    /// pre-existing checkpoints keep their fingerprints) combined with the
    /// prune mode's component. A checkpoint written by an
    /// [`CrashPointPolicy::All`] sweep can therefore never resume under a
    /// `LastOnly` configuration, or vice versa — their per-shard results
    /// are not comparable.
    fn scope_component(&self) -> String {
        let mut scope = String::new();
        match self.config.crashmonkey.crash_points {
            CrashPointPolicy::LastOnly => {}
            CrashPointPolicy::All => scope.push_str("cp:all"),
            CrashPointPolicy::AllTriaged { audit: 0 } => scope.push_str("cp:triaged"),
            CrashPointPolicy::AllTriaged { audit } => {
                scope.push_str(&format!("cp:triaged-audit{audit}"));
            }
        }
        let canon = self.prune.scope_component();
        if !canon.is_empty() {
            if !scope.is_empty() {
                scope.push('/');
            }
            scope.push_str(&canon);
        }
        scope
    }

    /// An empty checkpoint for this sweep's (bounds, shard count, crash
    /// points, prune mode) tuple — the one [`Sweep::run_resumable`]
    /// accepts.
    pub fn empty_checkpoint(&self, bounds: &Bounds) -> SweepCheckpoint {
        SweepCheckpoint::scoped(bounds, self.num_shards, &self.scope_component())
    }

    /// Runs the whole sweep in one go.
    pub fn run(&self, bounds: &Bounds) -> RunSummary {
        let mut checkpoint = self.empty_checkpoint(bounds);
        self.run_resumable(bounds, &mut checkpoint)
    }

    /// Runs (or resumes) the sweep, recording every completed shard into
    /// `checkpoint`. Shards already present in the checkpoint are not
    /// re-run; shards interrupted by a workload budget or bug limit are not
    /// recorded (so the next call re-runs them), but the work done inside
    /// them still counts toward the *returned* summary — a sweep stopped by
    /// `stop_after_bugs` reports the bugs that stopped it. Once
    /// [`SweepCheckpoint::is_complete`], [`SweepCheckpoint::summary`] equals
    /// an uninterrupted run's counts.
    ///
    /// # Panics
    /// Panics when the checkpoint does not [`SweepCheckpoint::matches`] the
    /// bounds and shard count of this sweep.
    pub fn run_resumable(&self, bounds: &Bounds, checkpoint: &mut SweepCheckpoint) -> RunSummary {
        assert!(
            checkpoint.matches_scoped(bounds, self.num_shards, &self.scope_component()),
            "sweep checkpoint belongs to a different bounds/shard/crash-point/prune configuration"
        );
        let start = Instant::now();
        let total_workloads = WorkloadGenerator::estimate_candidates(bounds);
        // Build the classifier once per sweep (it is read-only and shared
        // by reference across the worker threads).
        let built_classifier: Option<Classifier> = match (&self.classifier_override, self.prune) {
            (_, PruneMode::Off) | (Some(_), _) => None,
            (None, _) => Some(Classifier::new(bounds)),
        };
        let prune_ctx = PruneContext::new(
            self.prune,
            self.classifier_override
                .as_ref()
                .or(built_classifier.as_ref()),
            checkpoint.fingerprint(),
        );
        let pending: Vec<u32> = (0..self.num_shards as u32)
            .filter(|shard| !checkpoint.results.contains_key(shard))
            .collect();

        let counters = LiveCounters::new();
        // Seed the live counters with the checkpointed work so progress
        // reports are global, not per-resume.
        let seeded = checkpoint.summary();
        let seeded_buggy = checkpoint.total_buggy();
        counters.tested.store(seeded.tested, Ordering::Relaxed);
        counters.skipped.store(seeded.skipped, Ordering::Relaxed);
        counters.pruned.store(seeded.pruned, Ordering::Relaxed);
        counters
            .bugs
            .store(seeded_buggy as usize, Ordering::Relaxed);
        let checkpoint_completed = checkpoint.completed_shards();
        counters
            .completed_shards
            .store(checkpoint_completed, Ordering::Relaxed);

        // One bounded oracle interner shared by every worker thread:
        // content-equal oracle/expectation entries produced by different
        // workloads (and different shards) collapse to one allocation.
        let interner = Arc::new(EntryInterner::new());
        let next_pending = AtomicUsize::new(0);
        let budget = AtomicUsize::new(self.config.stop_after_workloads.unwrap_or(usize::MAX));
        let done = AtomicBool::new(false);
        let threads = self.config.threads.max(1);
        let active_workers = AtomicUsize::new(threads);
        let recorded: Mutex<&mut SweepCheckpoint> = Mutex::new(checkpoint);
        // Work from shards a budget or bug limit interrupted: not recorded
        // in the checkpoint (the resume re-runs those shards), but included
        // in this call's summary so the stopping bug is reported.
        let abandoned: Mutex<Vec<ShardResult>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            if let Some(callback) = self.progress {
                spawn_progress_monitor(
                    scope,
                    callback,
                    &counters,
                    &done,
                    start,
                    self.progress_interval,
                    Some(total_workloads),
                    self.num_shards,
                    checkpoint_completed,
                );
            }
            for _ in 0..threads {
                scope.spawn(|| {
                    let _guard = crate::runner::WorkerGuard::new(&active_workers, &done);
                    let monkey = CrashMonkey::with_interner(
                        self.spec,
                        self.config.crashmonkey,
                        interner.clone(),
                    );
                    'steal: loop {
                        let slot = next_pending.fetch_add(1, Ordering::Relaxed);
                        let Some(&shard_index) = pending.get(slot) else {
                            break 'steal;
                        };
                        let shard = bounds.shard(shard_index as usize, self.num_shards);
                        let generator = WorkloadGenerator::for_shard(bounds.clone(), &shard);
                        let mut result = ShardResult::default();
                        // Audit sampling state is per shard so the sampled
                        // members are a pure function of (fingerprint,
                        // shard) and a re-run shard reproduces its result.
                        // Triage witnesses reset for the same reason (see
                        // `run_shard`).
                        monkey.reset_triage();
                        let mut class_counts: HashMap<String, u32> = HashMap::new();
                        for workload in generator {
                            let decision = prune_ctx.decide(&workload, &mut class_counts);
                            if let Decision::Prune { audit: None } = decision {
                                // Pruned candidates cost no crash test, so
                                // they consume no workload budget either —
                                // a budgeted representative sweep covers
                                // proportionally more of the space.
                                result.pruned += 1;
                                counters.pruned.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let bug_limit_hit = self.config.stop_after_bugs.is_some_and(|limit| {
                                counters.bugs.load(Ordering::Relaxed) >= limit
                            });
                            if bug_limit_hit || !take_budget(&budget) {
                                // Interrupted mid-shard: keep the partial
                                // work for this call's summary, but leave
                                // the shard unrecorded so a resume re-runs
                                // it in full.
                                abandoned
                                    .lock()
                                    .expect("abandoned results poisoned")
                                    .push(result);
                                break 'steal;
                            }
                            match decision {
                                Decision::Test => {
                                    match result.absorb(monkey.test_workload(&workload)) {
                                        Absorbed::Tested { buggy } => {
                                            counters.tested.fetch_add(1, Ordering::Relaxed);
                                            if buggy {
                                                counters.bugs.fetch_add(1, Ordering::Relaxed);
                                            }
                                        }
                                        Absorbed::Skipped => {
                                            counters.skipped.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Decision::Prune { audit: Some(plan) } => {
                                    result.pruned += 1;
                                    counters.pruned.fetch_add(1, Ordering::Relaxed);
                                    audit_member(&monkey, &workload, plan, &mut result);
                                }
                                Decision::Prune { audit: None } => unreachable!(),
                            }
                        }
                        counters.completed_shards.fetch_add(1, Ordering::Relaxed);
                        recorded
                            .lock()
                            .expect("checkpoint poisoned")
                            .record(shard_index, result);
                    }
                });
            }
        });

        let checkpoint = recorded.into_inner().expect("checkpoint poisoned");
        let mut summary = RunSummary::default();
        for result in checkpoint.results.values() {
            result.add_counts(&mut summary);
        }
        // Fold abandoned partial shards into the counts *and* the grouped
        // view, so a sweep stopped by `stop_after_bugs` still reports the
        // bug that stopped it.
        let mut grouped = checkpoint.grouped();
        for partial in abandoned.into_inner().expect("abandoned results poisoned") {
            partial.add_counts(&mut summary);
            grouped.merge_from(&partial.groups);
        }
        summary.reports = grouped.into_exemplars();
        summary.elapsed = start.elapsed();
        summary
    }
}

/// Decrements the shared workload budget; false when it is exhausted.
pub(crate) fn take_budget(budget: &AtomicUsize) -> bool {
    let mut remaining = budget.load(Ordering::Relaxed);
    loop {
        if remaining == 0 {
            return false;
        }
        match budget.compare_exchange_weak(
            remaining,
            remaining - 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(current) => remaining = current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    fn tiny_config() -> RunConfig {
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn sharded_sweep_matches_run_stream_counts() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let streamed = crate::runner::run_stream(
            &spec,
            WorkloadGenerator::new(bounds.clone()),
            &tiny_config(),
        );
        let swept = Sweep::new(&spec, tiny_config()).shards(5).run(&bounds);
        assert_eq!(swept.tested, streamed.tested);
        assert_eq!(swept.skipped, streamed.skipped);
        // The sweep's summary is deduplicated at the source: its raw-report
        // count matches the streamed run's full report list, and its
        // exemplars are exactly the post-hoc grouping of that list.
        assert_eq!(swept.raw_reports, streamed.reports.len());
        let post_hoc = crate::postprocess::group_reports(&streamed.reports);
        assert_eq!(swept.reports.len(), post_hoc.len());
        for (exemplar, group) in swept.reports.iter().zip(&post_hoc) {
            assert_eq!(exemplar, &group.example);
        }
    }

    #[test]
    fn checkpoint_round_trips_through_the_codec() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let mut checkpoint = SweepCheckpoint::new(&bounds, 4);
        let sweep = Sweep::new(&spec, tiny_config()).shards(4);
        let _ = sweep.run_resumable(&bounds, &mut checkpoint);
        assert!(checkpoint.is_complete());
        assert!(!checkpoint.summary().reports.is_empty());

        let bytes = checkpoint.to_bytes();
        let decoded = SweepCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        assert!(decoded.matches(&bounds, 4));
        assert!(!decoded.matches(&bounds, 5));
        assert!(!decoded.matches(&Bounds::paper_seq1(), 4));
    }

    #[test]
    fn killed_sweep_resumes_to_identical_summary() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);

        let uninterrupted = Sweep::new(&spec, tiny_config()).shards(6).run(&bounds);

        // Kill the sweep after a small workload budget, serialize the
        // checkpoint (as a crash would force), resume from the decoded
        // bytes, repeatedly, until the sweep completes. The budget covers a
        // little more than one shard so every round makes progress but no
        // round finishes the sweep.
        let per_shard = WorkloadGenerator::estimate_candidates(&bounds).div_ceil(6);
        let mut checkpoint = SweepCheckpoint::new(&bounds, 6);
        let budgeted = RunConfig {
            stop_after_workloads: Some(per_shard as usize + 1),
            threads: 1,
            ..RunConfig::default()
        };
        let mut rounds = 0;
        while !checkpoint.is_complete() {
            let sweep = Sweep::new(&spec, budgeted).shards(6);
            let _ = sweep.run_resumable(&bounds, &mut checkpoint);
            checkpoint = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
            rounds += 1;
            assert!(rounds < 100, "sweep must converge");
        }
        assert!(rounds > 1, "the budget must actually interrupt the sweep");

        let resumed = checkpoint.summary();
        assert_eq!(resumed.tested, uninterrupted.tested);
        assert_eq!(resumed.skipped, uninterrupted.skipped);
        assert_eq!(resumed.raw_reports, uninterrupted.raw_reports);
        assert_eq!(resumed.reports.len(), uninterrupted.reports.len());
        // Group-keyed aggregation makes even the exemplar order identical.
        let names = |s: &RunSummary| -> Vec<String> {
            s.reports.iter().map(|r| r.workload_name.clone()).collect()
        };
        assert_eq!(names(&resumed), names(&uninterrupted));
    }

    #[test]
    fn crash_point_policy_scopes_the_checkpoint() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let last_only = Sweep::new(&spec, tiny_config()).shards(3);
        let all_points = RunConfig {
            crashmonkey: b3_crashmonkey::CrashMonkeyConfig::exhaustive_crash_points(),
            ..tiny_config()
        };
        let all = Sweep::new(&spec, all_points).shards(3);

        // Same bounds and shard count, different crash-point policies:
        // the checkpoints must not be interchangeable.
        let from_last = last_only.empty_checkpoint(&bounds);
        let from_all = all.empty_checkpoint(&bounds);
        assert_ne!(from_last.fingerprint(), from_all.fingerprint());
        // The default policy contributes an empty scope component, so
        // pre-existing unscoped checkpoints still resume.
        assert_eq!(
            from_last.fingerprint(),
            SweepCheckpoint::new(&bounds, 3).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "different bounds/shard/crash-point/prune")]
    fn resuming_an_all_points_checkpoint_with_last_only_is_rejected() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let all_points = RunConfig {
            crashmonkey: b3_crashmonkey::CrashMonkeyConfig::exhaustive_crash_points(),
            ..tiny_config()
        };
        let mut checkpoint = Sweep::new(&spec, all_points)
            .shards(3)
            .empty_checkpoint(&bounds);
        let _ = Sweep::new(&spec, tiny_config())
            .shards(3)
            .run_resumable(&bounds, &mut checkpoint);
    }

    #[test]
    fn stop_after_bugs_reports_the_stopping_bug() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let config = RunConfig {
            threads: 1,
            stop_after_bugs: Some(1),
            ..RunConfig::default()
        };
        let summary = Sweep::new(&spec, config).shards(2).run(&bounds);
        assert!(
            !summary.reports.is_empty(),
            "the bug that stopped the sweep must be in the summary"
        );
    }

    #[test]
    fn decode_rejects_wire_counts_larger_than_the_frame() {
        // A corrupt/truncated worker frame declaring a huge group count
        // must fail to decode instead of attempting a huge allocation.
        let mut enc = Encoder::new();
        enc.put_u64(1); // tested
        enc.put_u64(0); // skipped
        enc.put_u64(0); // pruned
        enc.put_u64(0); // audited
        enc.put_u64(1); // buggy
        enc.put_u64(42); // workload_time_nanos
        enc.put_u64(u64::MAX); // declared group count, no payload behind it
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(ShardResult::decode(&mut dec).is_err());

        // And a declared audit-failure count with no payload behind it.
        let mut enc = Encoder::new();
        let healthy = ShardResult {
            tested: 1,
            ..ShardResult::default()
        };
        healthy.encode(&mut enc);
        let mut bytes = enc.finish();
        let failure_count_offset = bytes.len() - 8; // trailing empty list count
        bytes[failure_count_offset..].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut dec = Decoder::new(&bytes);
        assert!(ShardResult::decode(&mut dec).is_err());

        // Same for a checkpoint declaring more shard results than fit.
        let bounds = Bounds::tiny();
        let checkpoint = SweepCheckpoint::new(&bounds, 4);
        let mut bytes = checkpoint.to_bytes();
        let shard_count_offset = bytes.len() - 8; // trailing empty map count
        bytes[shard_count_offset..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SweepCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn checkpoint_rejects_reordered_op_sets() {
        use b3_vfs::workload::OpKind;
        let forward = Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::Rename]);
        let reversed = Bounds::paper_seq2().with_ops(vec![OpKind::Rename, OpKind::Link]);
        let checkpoint = SweepCheckpoint::new(&forward, 4);
        assert!(checkpoint.matches(&forward, 4));
        assert!(
            !checkpoint.matches(&reversed, 4),
            "reordered ops permute the enumeration; the fingerprint must differ"
        );
    }

    #[test]
    fn progress_reports_shard_completion() {
        use std::sync::atomic::AtomicUsize;
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::patched();
        let final_shards = AtomicUsize::new(0);
        let callback = |p: &Progress| {
            final_shards.store(p.completed_shards, Ordering::Relaxed);
            let _ = p.describe();
        };
        let summary = Sweep::new(&spec, tiny_config())
            .shards(3)
            .on_progress(&callback, Duration::from_millis(1))
            .run(&bounds);
        assert!(summary.tested > 0);
        assert_eq!(final_shards.load(Ordering::Relaxed), 3);
    }
}
