//! Sharded, resumable sweeps over ACE-generated workload spaces.
//!
//! Where [`crate::runner::run_stream`] fans a single workload iterator out
//! to worker threads, a [`Sweep`] splits the bounded space itself into
//! deterministic generator shards ([`Bounds::shard`]) and lets workers
//! *steal whole shards*: claiming a shard is one atomic increment, and
//! inside a shard a worker drives its own `WorkloadGenerator` with no
//! shared state at all — the in-process analogue of the paper copying
//! workload subsets to 780 VMs (§6.1).
//!
//! Because every shard is independently enumerable, a sweep can stop and
//! resume: a [`SweepCheckpoint`] records the per-shard results of every
//! *completed* shard (serialized with the workspace codec), and a resumed
//! sweep re-runs only the shards the checkpoint is missing. A killed sweep
//! therefore converges to exactly the same [`RunSummary`] counts as an
//! uninterrupted one — partially processed shards are simply re-run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use b3_ace::{Bounds, WorkloadGenerator};
use b3_crashmonkey::{CrashMonkey, WorkloadOutcome};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::FsSpec;

use crate::dedup::GroupTable;
use crate::postprocess::BugGroup;
use crate::runner::{spawn_progress_monitor, LiveCounters, RunConfig, RunSummary};

/// Live throughput of one remote worker process, as observed by a
/// distributed sweep coordinator (see [`crate::distrib`]).
#[derive(Debug, Clone)]
pub struct WorkerThroughput {
    /// Worker index (0-based, stable for the life of the coordinator).
    pub worker: usize,
    /// Transport endpoint of the worker's current link (`child:<pid>`,
    /// `host:port`, `ssh:<host>#<pid>`), so multi-host progress output is
    /// attributable to a machine rather than a bare index. Empty until the
    /// worker's handshake arrives (and for in-process sweeps).
    pub endpoint: String,
    /// Workloads this worker has tested so far.
    pub tested: u64,
    /// Shards this worker has completed so far.
    pub shards: u64,
    /// Workloads tested per second of wall-clock time, or `None` once the
    /// worker has exited (cleanly or not).
    pub throughput: Option<f64>,
}

/// A point-in-time view of a running sweep, handed to progress callbacks.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Workloads tested so far (including resumed shards).
    pub tested: usize,
    /// Workloads skipped so far.
    pub skipped: usize,
    /// Workloads that produced at least one bug report.
    pub bugs: usize,
    /// Shards fully completed (including ones restored from a checkpoint).
    pub completed_shards: usize,
    /// Total shards in the sweep (0 when running over a plain stream).
    pub total_shards: usize,
    /// Upper bound on the total workloads of the space, when known.
    pub total_workloads: Option<u64>,
    /// Wall-clock time since the sweep (or this resume) started.
    pub elapsed: Duration,
    /// Estimated time to completion, extrapolated from throughput so far.
    pub eta: Option<Duration>,
    /// Per-worker throughput, populated only by distributed sweeps (one
    /// entry per worker process); empty for in-process sweeps.
    pub per_worker: Vec<WorkerThroughput>,
}

impl Progress {
    /// One-line human-readable rendering (used by the examples).
    pub fn describe(&self) -> String {
        let mut line = format!(
            "tested {} / skipped {} / bugs {}",
            self.tested, self.skipped, self.bugs
        );
        if self.total_shards > 0 {
            line.push_str(&format!(
                " | shards {}/{}",
                self.completed_shards, self.total_shards
            ));
        }
        if let Some(total) = self.total_workloads {
            line.push_str(&format!(" | ~{total} candidates"));
        }
        line.push_str(&format!(" | {:.1?} elapsed", self.elapsed));
        if let Some(eta) = self.eta {
            line.push_str(&format!(" | ~{:.0?} left", eta));
        }
        if !self.per_worker.is_empty() {
            let workers: Vec<String> = self
                .per_worker
                .iter()
                .map(|w| {
                    let label = if w.endpoint.is_empty() {
                        format!("w{}", w.worker)
                    } else {
                        format!("w{}@{}", w.worker, w.endpoint)
                    };
                    match w.throughput {
                        Some(rate) => format!("{label} {rate:.0}/s"),
                        None => format!("{label} gone"),
                    }
                })
                .collect();
            line.push_str(&format!(" | [{}]", workers.join(" ")));
        }
        line
    }
}

/// The recorded outcome of one completed shard. Also the unit of work the
/// distributed protocol ([`crate::distrib`]) ships from worker processes
/// back to the coordinator.
///
/// Bug reports are deduplicated *at the source*: instead of every raw
/// [`b3_crashmonkey::BugReport`], a shard records its per-group exemplars
/// and counts in a [`GroupTable`]. A shard of a bug-dense file system can
/// produce tens of thousands of raw reports in a few dozen groups, so this
/// bounds shard frames, coordinator memory, and checkpoint size by bug
/// *diversity* rather than bug *density*.
///
/// Public only because it rides inside the public protocol frames
/// ([`crate::distrib::protocol::FromWorker::ShardDone`]); its fields are an
/// internal detail of the sweep engine and stay crate-private.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardResult {
    pub(crate) tested: u64,
    pub(crate) skipped: u64,
    /// Workloads that produced at least one bug report.
    pub(crate) buggy: u64,
    pub(crate) workload_time_nanos: u64,
    /// Per-bug-group exemplars + counts for every report of the shard.
    pub(crate) groups: GroupTable,
}

/// What [`ShardResult::absorb`] recorded, so callers can mirror the outcome
/// into live counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Absorbed {
    Tested { buggy: bool },
    Skipped,
}

impl ShardResult {
    /// True when two results describe the same outcome — identical counts
    /// and grouped reports — ignoring `workload_time_nanos`, which is
    /// wall-clock and differs between independent runs of the same shard.
    /// This is the comparison duplicate-shard merges must use: a
    /// legitimately re-run shard reproduces everything *except* its timing.
    pub(crate) fn same_outcome(&self, other: &ShardResult) -> bool {
        self.tested == other.tested
            && self.skipped == other.skipped
            && self.buggy == other.buggy
            && self.groups == other.groups
    }

    /// Folds one CrashMonkey outcome into this shard's counters.
    pub(crate) fn absorb(&mut self, outcome: FsResult<WorkloadOutcome>) -> Absorbed {
        match outcome {
            Ok(outcome) => {
                if outcome.skipped.is_some() {
                    self.skipped += 1;
                    Absorbed::Skipped
                } else {
                    self.tested += 1;
                    self.workload_time_nanos += outcome.timing.total.as_nanos() as u64;
                    let buggy = outcome.found_bug();
                    if buggy {
                        self.buggy += 1;
                    }
                    for bug in outcome.bugs {
                        self.groups.observe(bug);
                    }
                    Absorbed::Tested { buggy }
                }
            }
            Err(_) => {
                self.skipped += 1;
                Absorbed::Skipped
            }
        }
    }

    /// Adds this shard's scalar counters to a running summary (grouped
    /// reports are aggregated separately, via [`GroupTable::merge_from`]).
    pub(crate) fn add_counts(&self, summary: &mut RunSummary) {
        summary.tested += self.tested as usize;
        summary.skipped += self.skipped as usize;
        summary.raw_reports += self.groups.total_reports() as usize;
        summary.total_workload_time += Duration::from_nanos(self.workload_time_nanos);
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tested);
        enc.put_u64(self.skipped);
        enc.put_u64(self.buggy);
        enc.put_u64(self.workload_time_nanos);
        self.groups.encode(enc);
    }

    /// Decodes one shard result. All length fields are validated against
    /// the remaining buffer (see [`GroupTable::decode`]), so a truncated or
    /// corrupt worker frame yields an error instead of a huge allocation.
    pub(crate) fn decode(dec: &mut Decoder<'_>) -> FsResult<ShardResult> {
        let tested = dec.get_u64()?;
        let skipped = dec.get_u64()?;
        let buggy = dec.get_u64()?;
        let workload_time_nanos = dec.get_u64()?;
        let groups = GroupTable::decode(dec)?;
        Ok(ShardResult {
            tested,
            skipped,
            buggy,
            workload_time_nanos,
            groups,
        })
    }
}

/// Runs one generator shard to completion on the given CrashMonkey
/// instance. `tick` runs before every workload — the distributed worker
/// uses it to implement its crash-injection test hook.
pub(crate) fn run_shard(
    monkey: &CrashMonkey<'_>,
    bounds: &Bounds,
    shard_index: u32,
    num_shards: usize,
    mut tick: impl FnMut(),
) -> ShardResult {
    let shard = bounds.shard(shard_index as usize, num_shards);
    let generator = WorkloadGenerator::for_shard(bounds.clone(), &shard);
    let mut result = ShardResult::default();
    for workload in generator {
        tick();
        result.absorb(monkey.test_workload(&workload));
    }
    result
}

// "B3S3": bumped from "B3S2" when shard results switched from raw report
// lists to grouped exemplar + count tables, so checkpoints persisted by the
// raw-report format fail cleanly at decode ("bad sweep checkpoint magic")
// instead of as garbage group tables.
const CHECKPOINT_MAGIC: u32 = 0x4233_5333;

/// Persistent record of a sweep's completed shards.
///
/// Serialized with the workspace codec ([`SweepCheckpoint::to_bytes`] /
/// [`SweepCheckpoint::from_bytes`]); the caller decides where the bytes
/// live (a file, for the examples). The fingerprint ties a checkpoint to
/// one (bounds, shard count) pair so a stale checkpoint is rejected instead
/// of silently mis-resuming.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    fingerprint: String,
    num_shards: u32,
    results: BTreeMap<u32, ShardResult>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for sweeping `bounds` split into `num_shards`.
    pub fn new(bounds: &Bounds, num_shards: usize) -> Self {
        Self::scoped(bounds, num_shards, "")
    }

    /// An empty checkpoint additionally scoped by a caller-chosen context
    /// string. The scope participates in the fingerprint, so checkpoints
    /// recorded under different execution contexts — e.g. different file
    /// systems or CrashMonkey configurations in a distributed sweep
    /// ([`crate::distrib`]) — refuse to resume or merge into each other
    /// even over identical bounds.
    pub fn scoped(bounds: &Bounds, num_shards: usize, scope: &str) -> Self {
        SweepCheckpoint {
            fingerprint: Self::fingerprint_for(bounds, num_shards, scope),
            num_shards: num_shards as u32,
            results: BTreeMap::new(),
        }
    }

    fn fingerprint_for(bounds: &Bounds, num_shards: usize, scope: &str) -> String {
        // Every knob that affects which workloads the space enumerates (or
        // their order) participates: the op list is order-sensitive on
        // purpose, `describe()` covers the file-set and pattern bounds, and
        // the persistence flags distinguish same-sized phase-3 choices.
        let ops: Vec<String> = bounds.ops.iter().map(|op| format!("{op:?}")).collect();
        let p = &bounds.persistence;
        format!(
            "{scope}|{}/seq{}/[{}]/{}/p{}{}{}{}/{}cand/{}shards",
            bounds.name_prefix,
            bounds.seq_len,
            ops.join(","),
            bounds.describe(),
            u8::from(p.fsync),
            u8::from(p.fdatasync),
            u8::from(p.sync),
            u8::from(p.allow_none),
            WorkloadGenerator::estimate_candidates(bounds),
            num_shards
        )
    }

    /// True when this checkpoint belongs to the given (unscoped) bounds and
    /// shard count.
    pub fn matches(&self, bounds: &Bounds, num_shards: usize) -> bool {
        self.matches_scoped(bounds, num_shards, "")
    }

    /// True when this checkpoint belongs to the given bounds, shard count,
    /// and scope (see [`SweepCheckpoint::scoped`]).
    pub fn matches_scoped(&self, bounds: &Bounds, num_shards: usize, scope: &str) -> bool {
        self.fingerprint == Self::fingerprint_for(bounds, num_shards, scope)
            && self.num_shards as usize == num_shards
    }

    /// The fingerprint tying this checkpoint to one (bounds, shard count)
    /// pair.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Merges the completed shards of `other` into `self` (set union of
    /// per-shard grouped results).
    ///
    /// Merging is the coordinator's aggregation primitive: workers (or whole
    /// partial runs) each produce a checkpoint covering a subset of the
    /// shards, and any merge order converges to the same union — the
    /// operation is commutative, associative, and idempotent, which
    /// `tests/checkpoint_merge.rs` pins down property-by-property. The
    /// aggregate group view ([`SweepCheckpoint::grouped`]) unions the
    /// per-shard [`GroupTable`]s — counts add, and each group keeps the
    /// lexicographically-first exemplar — so the grouped result is also
    /// independent of shard partition and merge order, and equals post-hoc
    /// [`crate::postprocess::group_reports`] over the raw report stream.
    ///
    /// Checkpoints with different fingerprints (different bounds, shard
    /// counts, or scopes) describe different sweeps; merging them is
    /// rejected rather than silently combined. When both sides recorded the
    /// same shard the incoming result wins (last-writer-wins) — a shard's
    /// *outcome* (counts and grouped reports) is a pure function of
    /// (bounds, scope, shard index), so duplicates must agree on everything
    /// except the wall-clock per-shard timing, and debug builds assert
    /// exactly that via the timing-ignoring `ShardResult::same_outcome`
    /// (full `ShardResult` equality would spuriously panic on a
    /// legitimately re-run shard). The union is therefore commutative,
    /// associative, and idempotent up to that timing field.
    pub fn merge(&mut self, other: &SweepCheckpoint) -> FsResult<()> {
        if self.fingerprint != other.fingerprint || self.num_shards != other.num_shards {
            return Err(FsError::InvalidArgument(format!(
                "cannot merge sweep checkpoints of different sweeps \
                 (ours {:?}, theirs {:?})",
                self.fingerprint, other.fingerprint
            )));
        }
        for (&shard, result) in &other.results {
            if let Some(existing) = self.results.get(&shard) {
                debug_assert!(
                    existing.same_outcome(result),
                    "shard {shard} was re-run with a different outcome; a shard's \
                     counts and reports must be a pure function of \
                     (bounds, scope, shard index)"
                );
            }
            self.results.insert(shard, result.clone());
        }
        Ok(())
    }

    /// A copy of this checkpoint restricted to the given shards (shards the
    /// checkpoint has no result for are ignored). `subset` and [`merge`]
    /// together let a coordinator split a checkpoint across workers and
    /// reassemble it.
    ///
    /// [`merge`]: SweepCheckpoint::merge
    pub fn subset(&self, shards: impl IntoIterator<Item = u32>) -> SweepCheckpoint {
        let mut results = BTreeMap::new();
        for shard in shards {
            if let Some(result) = self.results.get(&shard) {
                results.insert(shard, result.clone());
            }
        }
        SweepCheckpoint {
            fingerprint: self.fingerprint.clone(),
            num_shards: self.num_shards,
            results,
        }
    }

    /// Shards not yet recorded, in ascending order — the work remaining.
    pub fn missing_shards(&self) -> Vec<u32> {
        (0..self.num_shards)
            .filter(|shard| !self.results.contains_key(shard))
            .collect()
    }

    /// True when the given shard's result is recorded.
    pub fn has_shard(&self, shard: u32) -> bool {
        self.results.contains_key(&shard)
    }

    /// Total workloads that produced at least one bug report, across all
    /// recorded shards.
    pub fn total_buggy(&self) -> u64 {
        self.results.values().map(|r| r.buggy).sum()
    }

    /// Number of shards the sweep is split into.
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// Shards whose results are recorded.
    pub fn completed_shards(&self) -> usize {
        self.results.len()
    }

    /// True once every shard's result is recorded.
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.num_shards as usize
    }

    /// Aggregates all recorded shard results into a summary (elapsed time is
    /// zero — the checkpoint records work, not wall-clock). The summary's
    /// `reports` are the deduplicated group **exemplars** in group-key
    /// order; `raw_reports` counts every underlying report.
    pub fn summary(&self) -> RunSummary {
        let mut summary = RunSummary::default();
        for result in self.results.values() {
            result.add_counts(&mut summary);
        }
        summary.reports = self.grouped().into_exemplars();
        summary
    }

    /// The union of every recorded shard's group table: per bug group, the
    /// total raw-report count and the lexicographically-first exemplar.
    /// Independent of shard partition and merge order.
    pub fn grouped(&self) -> GroupTable {
        let mut table = GroupTable::new();
        for result in self.results.values() {
            table.merge_from(&result.groups);
        }
        table
    }

    /// The deduplicated bug groups of all recorded shards (the
    /// post-processing view of [`SweepCheckpoint::grouped`]).
    pub fn bug_groups(&self) -> Vec<BugGroup> {
        self.grouped().groups()
    }

    pub(crate) fn record(&mut self, shard: u32, result: ShardResult) {
        self.results.insert(shard, result);
    }

    /// Serializes the checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(CHECKPOINT_MAGIC);
        enc.put_str(&self.fingerprint);
        enc.put_u32(self.num_shards);
        enc.put_u64(self.results.len() as u64);
        for (shard, result) in &self.results {
            enc.put_u32(*shard);
            result.encode(&mut enc);
        }
        enc.finish()
    }

    /// Deserializes a checkpoint produced by [`SweepCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> FsResult<SweepCheckpoint> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != CHECKPOINT_MAGIC {
            return Err(FsError::Corrupted("bad sweep checkpoint magic".into()));
        }
        let fingerprint = dec.get_str()?;
        let num_shards = dec.get_u32()?;
        let count = dec.get_u64()? as usize;
        // Each recorded shard needs at least its index, four counters, and
        // an (empty) group table — 44 bytes; a declared count beyond what
        // the buffer can hold is corruption, not an allocation request.
        if count > dec.remaining() / 44 {
            return Err(FsError::Corrupted(format!(
                "checkpoint declares {count} shard results but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut results = BTreeMap::new();
        for _ in 0..count {
            let shard = dec.get_u32()?;
            results.insert(shard, ShardResult::decode(&mut dec)?);
        }
        Ok(SweepCheckpoint {
            fingerprint,
            num_shards,
            results,
        })
    }
}

/// A sharded, resumable sweep over one bounded workload space.
pub struct Sweep<'a> {
    spec: &'a (dyn FsSpec + Sync),
    config: RunConfig,
    num_shards: usize,
    progress: Option<&'a (dyn Fn(&Progress) + Sync)>,
    progress_interval: Duration,
}

impl<'a> Sweep<'a> {
    /// Creates a sweep with a default shard count of eight shards per worker
    /// thread (small enough chunks that a killed run loses little work,
    /// large enough that claiming stays negligible).
    pub fn new(spec: &'a (dyn FsSpec + Sync), config: RunConfig) -> Self {
        Sweep {
            spec,
            num_shards: (config.threads.max(1) * 8).max(1),
            config,
            progress: None,
            progress_interval: Duration::from_secs(1),
        }
    }

    /// Overrides the number of generator shards.
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.max(1);
        self
    }

    /// Installs a periodic progress callback.
    pub fn on_progress(
        mut self,
        callback: &'a (dyn Fn(&Progress) + Sync),
        interval: Duration,
    ) -> Self {
        self.progress = Some(callback);
        self.progress_interval = interval;
        self
    }

    /// Runs the whole sweep in one go.
    pub fn run(&self, bounds: &Bounds) -> RunSummary {
        let mut checkpoint = SweepCheckpoint::new(bounds, self.num_shards);
        self.run_resumable(bounds, &mut checkpoint)
    }

    /// Runs (or resumes) the sweep, recording every completed shard into
    /// `checkpoint`. Shards already present in the checkpoint are not
    /// re-run; shards interrupted by a workload budget or bug limit are not
    /// recorded (so the next call re-runs them), but the work done inside
    /// them still counts toward the *returned* summary — a sweep stopped by
    /// `stop_after_bugs` reports the bugs that stopped it. Once
    /// [`SweepCheckpoint::is_complete`], [`SweepCheckpoint::summary`] equals
    /// an uninterrupted run's counts.
    ///
    /// # Panics
    /// Panics when the checkpoint does not [`SweepCheckpoint::matches`] the
    /// bounds and shard count of this sweep.
    pub fn run_resumable(&self, bounds: &Bounds, checkpoint: &mut SweepCheckpoint) -> RunSummary {
        assert!(
            checkpoint.matches(bounds, self.num_shards),
            "sweep checkpoint belongs to a different bounds/shard configuration"
        );
        let start = Instant::now();
        let total_workloads = WorkloadGenerator::estimate_candidates(bounds);
        let pending: Vec<u32> = (0..self.num_shards as u32)
            .filter(|shard| !checkpoint.results.contains_key(shard))
            .collect();

        let counters = LiveCounters::new();
        // Seed the live counters with the checkpointed work so progress
        // reports are global, not per-resume.
        let seeded = checkpoint.summary();
        let seeded_buggy = checkpoint.total_buggy();
        counters.tested.store(seeded.tested, Ordering::Relaxed);
        counters.skipped.store(seeded.skipped, Ordering::Relaxed);
        counters
            .bugs
            .store(seeded_buggy as usize, Ordering::Relaxed);
        let checkpoint_completed = checkpoint.completed_shards();
        counters
            .completed_shards
            .store(checkpoint_completed, Ordering::Relaxed);

        let next_pending = AtomicUsize::new(0);
        let budget = AtomicUsize::new(self.config.stop_after_workloads.unwrap_or(usize::MAX));
        let done = AtomicBool::new(false);
        let threads = self.config.threads.max(1);
        let active_workers = AtomicUsize::new(threads);
        let recorded: Mutex<&mut SweepCheckpoint> = Mutex::new(checkpoint);
        // Work from shards a budget or bug limit interrupted: not recorded
        // in the checkpoint (the resume re-runs those shards), but included
        // in this call's summary so the stopping bug is reported.
        let abandoned: Mutex<Vec<ShardResult>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            if let Some(callback) = self.progress {
                spawn_progress_monitor(
                    scope,
                    callback,
                    &counters,
                    &done,
                    start,
                    self.progress_interval,
                    Some(total_workloads),
                    self.num_shards,
                    checkpoint_completed,
                );
            }
            for _ in 0..threads {
                scope.spawn(|| {
                    let _guard = crate::runner::WorkerGuard::new(&active_workers, &done);
                    let monkey = CrashMonkey::with_config(self.spec, self.config.crashmonkey);
                    'steal: loop {
                        let slot = next_pending.fetch_add(1, Ordering::Relaxed);
                        let Some(&shard_index) = pending.get(slot) else {
                            break 'steal;
                        };
                        let shard = bounds.shard(shard_index as usize, self.num_shards);
                        let generator = WorkloadGenerator::for_shard(bounds.clone(), &shard);
                        let mut result = ShardResult::default();
                        for workload in generator {
                            let bug_limit_hit = self.config.stop_after_bugs.is_some_and(|limit| {
                                counters.bugs.load(Ordering::Relaxed) >= limit
                            });
                            if bug_limit_hit || !take_budget(&budget) {
                                // Interrupted mid-shard: keep the partial
                                // work for this call's summary, but leave
                                // the shard unrecorded so a resume re-runs
                                // it in full.
                                abandoned
                                    .lock()
                                    .expect("abandoned results poisoned")
                                    .push(result);
                                break 'steal;
                            }
                            match result.absorb(monkey.test_workload(&workload)) {
                                Absorbed::Tested { buggy } => {
                                    counters.tested.fetch_add(1, Ordering::Relaxed);
                                    if buggy {
                                        counters.bugs.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Absorbed::Skipped => {
                                    counters.skipped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        counters.completed_shards.fetch_add(1, Ordering::Relaxed);
                        recorded
                            .lock()
                            .expect("checkpoint poisoned")
                            .record(shard_index, result);
                    }
                });
            }
        });

        let checkpoint = recorded.into_inner().expect("checkpoint poisoned");
        let mut summary = RunSummary::default();
        for result in checkpoint.results.values() {
            result.add_counts(&mut summary);
        }
        // Fold abandoned partial shards into the counts *and* the grouped
        // view, so a sweep stopped by `stop_after_bugs` still reports the
        // bug that stopped it.
        let mut grouped = checkpoint.grouped();
        for partial in abandoned.into_inner().expect("abandoned results poisoned") {
            partial.add_counts(&mut summary);
            grouped.merge_from(&partial.groups);
        }
        summary.reports = grouped.into_exemplars();
        summary.elapsed = start.elapsed();
        summary
    }
}

/// Decrements the shared workload budget; false when it is exhausted.
fn take_budget(budget: &AtomicUsize) -> bool {
    let mut remaining = budget.load(Ordering::Relaxed);
    loop {
        if remaining == 0 {
            return false;
        }
        match budget.compare_exchange_weak(
            remaining,
            remaining - 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(current) => remaining = current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    fn tiny_config() -> RunConfig {
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn sharded_sweep_matches_run_stream_counts() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let streamed = crate::runner::run_stream(
            &spec,
            WorkloadGenerator::new(bounds.clone()),
            &tiny_config(),
        );
        let swept = Sweep::new(&spec, tiny_config()).shards(5).run(&bounds);
        assert_eq!(swept.tested, streamed.tested);
        assert_eq!(swept.skipped, streamed.skipped);
        // The sweep's summary is deduplicated at the source: its raw-report
        // count matches the streamed run's full report list, and its
        // exemplars are exactly the post-hoc grouping of that list.
        assert_eq!(swept.raw_reports, streamed.reports.len());
        let post_hoc = crate::postprocess::group_reports(&streamed.reports);
        assert_eq!(swept.reports.len(), post_hoc.len());
        for (exemplar, group) in swept.reports.iter().zip(&post_hoc) {
            assert_eq!(exemplar, &group.example);
        }
    }

    #[test]
    fn checkpoint_round_trips_through_the_codec() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let mut checkpoint = SweepCheckpoint::new(&bounds, 4);
        let sweep = Sweep::new(&spec, tiny_config()).shards(4);
        let _ = sweep.run_resumable(&bounds, &mut checkpoint);
        assert!(checkpoint.is_complete());
        assert!(!checkpoint.summary().reports.is_empty());

        let bytes = checkpoint.to_bytes();
        let decoded = SweepCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        assert!(decoded.matches(&bounds, 4));
        assert!(!decoded.matches(&bounds, 5));
        assert!(!decoded.matches(&Bounds::paper_seq1(), 4));
    }

    #[test]
    fn killed_sweep_resumes_to_identical_summary() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);

        let uninterrupted = Sweep::new(&spec, tiny_config()).shards(6).run(&bounds);

        // Kill the sweep after a small workload budget, serialize the
        // checkpoint (as a crash would force), resume from the decoded
        // bytes, repeatedly, until the sweep completes. The budget covers a
        // little more than one shard so every round makes progress but no
        // round finishes the sweep.
        let per_shard = WorkloadGenerator::estimate_candidates(&bounds).div_ceil(6);
        let mut checkpoint = SweepCheckpoint::new(&bounds, 6);
        let budgeted = RunConfig {
            stop_after_workloads: Some(per_shard as usize + 1),
            threads: 1,
            ..RunConfig::default()
        };
        let mut rounds = 0;
        while !checkpoint.is_complete() {
            let sweep = Sweep::new(&spec, budgeted).shards(6);
            let _ = sweep.run_resumable(&bounds, &mut checkpoint);
            checkpoint = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
            rounds += 1;
            assert!(rounds < 100, "sweep must converge");
        }
        assert!(rounds > 1, "the budget must actually interrupt the sweep");

        let resumed = checkpoint.summary();
        assert_eq!(resumed.tested, uninterrupted.tested);
        assert_eq!(resumed.skipped, uninterrupted.skipped);
        assert_eq!(resumed.raw_reports, uninterrupted.raw_reports);
        assert_eq!(resumed.reports.len(), uninterrupted.reports.len());
        // Group-keyed aggregation makes even the exemplar order identical.
        let names = |s: &RunSummary| -> Vec<String> {
            s.reports.iter().map(|r| r.workload_name.clone()).collect()
        };
        assert_eq!(names(&resumed), names(&uninterrupted));
    }

    #[test]
    fn stop_after_bugs_reports_the_stopping_bug() {
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::new(KernelEra::V4_16);
        let config = RunConfig {
            threads: 1,
            stop_after_bugs: Some(1),
            ..RunConfig::default()
        };
        let summary = Sweep::new(&spec, config).shards(2).run(&bounds);
        assert!(
            !summary.reports.is_empty(),
            "the bug that stopped the sweep must be in the summary"
        );
    }

    #[test]
    fn decode_rejects_wire_counts_larger_than_the_frame() {
        // A corrupt/truncated worker frame declaring a huge group count
        // must fail to decode instead of attempting a huge allocation.
        let mut enc = Encoder::new();
        enc.put_u64(1); // tested
        enc.put_u64(0); // skipped
        enc.put_u64(1); // buggy
        enc.put_u64(42); // workload_time_nanos
        enc.put_u64(u64::MAX); // declared group count, no payload behind it
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(ShardResult::decode(&mut dec).is_err());

        // Same for a checkpoint declaring more shard results than fit.
        let bounds = Bounds::tiny();
        let checkpoint = SweepCheckpoint::new(&bounds, 4);
        let mut bytes = checkpoint.to_bytes();
        let shard_count_offset = bytes.len() - 8; // trailing empty map count
        bytes[shard_count_offset..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SweepCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn checkpoint_rejects_reordered_op_sets() {
        use b3_vfs::workload::OpKind;
        let forward = Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::Rename]);
        let reversed = Bounds::paper_seq2().with_ops(vec![OpKind::Rename, OpKind::Link]);
        let checkpoint = SweepCheckpoint::new(&forward, 4);
        assert!(checkpoint.matches(&forward, 4));
        assert!(
            !checkpoint.matches(&reversed, 4),
            "reordered ops permute the enumeration; the fingerprint must differ"
        );
    }

    #[test]
    fn progress_reports_shard_completion() {
        use std::sync::atomic::AtomicUsize;
        let bounds = Bounds::tiny();
        let spec = CowFsSpec::patched();
        let final_shards = AtomicUsize::new(0);
        let callback = |p: &Progress| {
            final_shards.store(p.completed_shards, Ordering::Relaxed);
            let _ = p.describe();
        };
        let summary = Sweep::new(&spec, tiny_config())
            .shards(3)
            .on_progress(&callback, Duration::from_millis(1))
            .run(&bounds);
        assert!(summary.tested > 0);
        assert_eq!(final_shards.load(Ordering::Relaxed), 3);
    }
}
