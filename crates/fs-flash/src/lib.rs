//! FlashFs: an F2FS-like log-structured file system with checkpoint plus
//! roll-forward fsync recovery, and injectable crash-consistency bugs.
//!
//! F2FS persists a full *checkpoint* on `sync()` and recovers fsynced files
//! through *roll-forward recovery*: each `fsync` appends a node-log record
//! describing the fsynced inode and the directory entry needed to reach it;
//! on recovery, the last checkpoint is loaded and the node log is rolled
//! forward. FlashFs mirrors that structure: the checkpoint is a serialized
//! [`MemTree`], the node log is a list of [`FsyncRecord`]s, and the two F2FS
//! bugs found by the paper (Table 5, bugs 9 and 10) plus the two known F2FS
//! bugs it reproduces live in the record/roll-forward code, exactly where
//! they lived in the kernel.

use std::collections::HashMap;

use b3_block::{BlockDevice, IoFlags, StateDelta};
use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::diskfmt::{read_blob, write_blob, BlobRef, SuperBlock};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::metadata::Metadata;
use b3_vfs::path::split_parent;
use b3_vfs::recover::{CommittedTreeCache, RecoverDelta};
use b3_vfs::tree::{decode_inode, encode_inode, Inode, InodeId, MemTree};
use b3_vfs::workload::FallocMode;
use b3_vfs::KernelEra;

/// FlashFs on-disk magic number.
pub const FLASHFS_MAGIC: u32 = 0x4632_4653; // "F2FS"

/// Which FlashFs crash-consistency bugs are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashBugs {
    /// `fallocate(ZERO_RANGE | KEEP_SIZE)` beyond EOF followed by fsync makes
    /// the file recover to the *allocated* size instead of its logical size.
    /// (New bug 9, the ZERO_RANGE variant of the previously patched
    /// KEEP_SIZE bug.)
    pub zero_range_keep_size_wrong_size: bool,
    /// A file fsynced inside a directory that was renamed in the same
    /// transaction is recovered under the directory's *old* name.
    /// (New bug 10, `fsync_mode=strict` not enforced for renamed dirs.)
    pub renamed_dir_recovers_old_name: bool,
    /// Roll-forward recovery of a file created at a name that previously
    /// belonged to a renamed-away file loses the renamed file entirely.
    /// (Known bug: workload 1 / Table 2 bug #4, "persisted file disappears".)
    pub roll_forward_loses_renamed_file: bool,
    /// `fdatasync` after `fallocate(KEEP_SIZE)` beyond EOF does not persist
    /// the extra allocation; the blocks disappear after a crash.
    /// (Known bug: workload 2, shared with ext4.)
    pub fdatasync_skips_falloc_beyond_eof: bool,
}

impl FlashBugs {
    /// No injected bugs.
    pub fn none() -> Self {
        FlashBugs::default()
    }

    /// Every bug enabled.
    pub fn all() -> Self {
        FlashBugs {
            zero_range_keep_size_wrong_size: true,
            renamed_dir_recovers_old_name: true,
            roll_forward_loses_renamed_file: true,
            fdatasync_skips_falloc_beyond_eof: true,
        }
    }

    /// Bugs present in the given kernel era. The known bugs were fixed
    /// before the paper's evaluation kernel (4.16); the two new bugs were
    /// present in every era up to and including 4.16 (F2FS was merged in
    /// 3.8, so all studied eras have it).
    pub fn for_era(era: KernelEra) -> Self {
        use KernelEra::*;
        FlashBugs {
            zero_range_keep_size_wrong_size: era.bug_present(V4_1_1, None),
            renamed_dir_recovers_old_name: era.bug_present(V4_4, None),
            roll_forward_loses_renamed_file: era.bug_present(V3_12, Some(V4_15)),
            fdatasync_skips_falloc_beyond_eof: era.bug_present(V3_12, Some(V4_15)),
        }
    }
}

/// One roll-forward record: the fsynced inode plus the directory entries
/// (as full paths) required to reach it after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsyncRecord {
    /// The fsynced inode, including data.
    pub inode: Inode,
    /// Paths (names) under which the inode must be reachable.
    pub paths: Vec<String>,
    /// Parent directory inode numbers corresponding to `paths`, used by the
    /// buggy roll-forward path that attaches entries by inode number rather
    /// than by (possibly renamed) path.
    pub parent_inos: Vec<InodeId>,
}

const NODELOG_MAGIC: u32 = 0x4e4f_4445; // "NODE"

fn encode_records(records: &[FsyncRecord]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(NODELOG_MAGIC);
    enc.put_u64(records.len() as u64);
    for record in records {
        encode_inode(&mut enc, &record.inode);
        enc.put_u64(record.paths.len() as u64);
        for (path, parent) in record.paths.iter().zip(&record.parent_inos) {
            enc.put_str(path);
            enc.put_u64(*parent);
        }
    }
    enc.finish()
}

fn decode_records(bytes: &[u8]) -> FsResult<Vec<FsyncRecord>> {
    let mut dec = Decoder::new(bytes);
    if dec.get_u32()? != NODELOG_MAGIC {
        return Err(FsError::Unmountable("bad node log magic".into()));
    }
    let count = dec.get_u64()?;
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let inode = decode_inode(&mut dec)?;
        let num_paths = dec.get_u64()?;
        let mut paths = Vec::with_capacity(num_paths as usize);
        let mut parent_inos = Vec::with_capacity(num_paths as usize);
        for _ in 0..num_paths {
            paths.push(dec.get_str()?);
            parent_inos.push(dec.get_u64()?);
        }
        records.push(FsyncRecord {
            inode,
            paths,
            parent_inos,
        });
    }
    Ok(records)
}

/// The F2FS-like file system.
pub struct FlashFs {
    dev: Box<dyn BlockDevice>,
    sb: SuperBlock,
    bugs: FlashBugs,
    working: MemTree,
    checkpoint: MemTree,
    records: Vec<FsyncRecord>,
    /// Inodes that received a `ZERO_RANGE|KEEP_SIZE` fallocate since the
    /// last checkpoint, with the end offset of the zeroed range.
    zero_range_keep: HashMap<InodeId, u64>,
}

impl FlashFs {
    /// Formats and mounts a fresh FlashFs for the given kernel era.
    pub fn mkfs(mut dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<FlashFs> {
        Self::format(&mut dev)?;
        Self::mount_with_bugs(dev, FlashBugs::for_era(era))
    }

    fn format(dev: &mut Box<dyn BlockDevice>) -> FsResult<()> {
        let tree = MemTree::new();
        let mut sb = SuperBlock::new(FLASHFS_MAGIC);
        sb.tree = write_blob(dev.as_mut(), &mut sb, &tree.encode(), IoFlags::META)?;
        sb.write_to(dev.as_mut())
    }

    /// Mounts an existing image with the bugs of the given era.
    pub fn mount(dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<FlashFs> {
        Self::mount_with_bugs(dev, FlashBugs::for_era(era))
    }

    /// Mounts an existing image with an explicit bug set, running
    /// roll-forward recovery if a node log is present.
    pub fn mount_with_bugs(dev: Box<dyn BlockDevice>, bugs: FlashBugs) -> FsResult<FlashFs> {
        let sb = SuperBlock::read_from(dev.as_ref(), FLASHFS_MAGIC)?;
        let checkpoint = MemTree::decode(&read_blob(dev.as_ref(), sb.tree)?)
            .map_err(|e| FsError::Unmountable(format!("corrupt checkpoint: {e}")))?;
        let working = if sb.log.is_present() {
            let records = decode_records(&read_blob(dev.as_ref(), sb.log)?)?;
            roll_forward(&checkpoint, &records, &bugs)?
        } else {
            checkpoint.clone()
        };
        let mut fs = FlashFs {
            dev,
            sb,
            bugs,
            working,
            checkpoint,
            records: Vec::new(),
            zero_range_keep: HashMap::new(),
        };
        fs.write_checkpoint()?;
        Ok(fs)
    }

    /// The active bug configuration.
    pub fn bugs(&self) -> &FlashBugs {
        &self.bugs
    }

    fn write_checkpoint(&mut self) -> FsResult<()> {
        let bytes = self.working.encode();
        self.sb.tree = write_blob(self.dev.as_mut(), &mut self.sb, &bytes, IoFlags::META)?;
        self.sb.log = BlobRef::EMPTY;
        self.sb.generation += 1;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        self.checkpoint = self.working.clone();
        self.records.clear();
        self.zero_range_keep.clear();
        Ok(())
    }

    fn append_record(&mut self, path: &str, is_fdatasync: bool) -> FsResult<()> {
        let ino = self.working.resolve(path)?;
        let working_inode = self
            .working
            .inode(ino)
            .ok_or_else(|| FsError::Corrupted(format!("missing inode for {path}")))?
            .clone();
        if working_inode.is_dir() {
            // F2FS directory fsync forces a checkpoint (it has no directory
            // roll-forward), which is also why the paper found no F2FS bugs
            // involving directory fsync alone.
            return self.write_checkpoint();
        }

        let mut logged = working_inode.clone();
        logged.entries.clear();

        if self.bugs.zero_range_keep_size_wrong_size {
            if let Some(&end) = self.zero_range_keep.get(&ino) {
                if end > logged.data.len() as u64 {
                    // The recovered inode claims the zeroed range as part of
                    // its size.
                    logged.data.resize(end as usize, 0);
                }
            }
        }
        if is_fdatasync && self.bugs.fdatasync_skips_falloc_beyond_eof {
            let covered = (logged.data.len() as u64).div_ceil(4096) * 4096;
            if logged.allocated > covered {
                logged.allocated = covered;
            }
        }

        let paths = self.working.paths_of_ino(ino);
        let parent_inos = paths
            .iter()
            .map(|p| {
                split_parent(p)
                    .and_then(|(parent, _)| self.working.resolve(&parent))
                    .unwrap_or(b3_vfs::ROOT_INO)
            })
            .collect();

        // Correct roll-forward recovery also persists the new location of a
        // file whose old name this inode is reusing (the rename+recreate
        // pattern of known workload 1); the buggy kernel skipped it.
        if !self.bugs.roll_forward_loses_renamed_file {
            for path in &paths {
                if let Ok(prev_ino) = self.checkpoint.resolve(path) {
                    if prev_ino != ino {
                        if let Some(prev) = self.working.inode(prev_ino) {
                            let mut prev_logged = prev.clone();
                            prev_logged.entries.clear();
                            let prev_paths = self.working.paths_of_ino(prev_ino);
                            let prev_parents = prev_paths
                                .iter()
                                .map(|p| {
                                    split_parent(p)
                                        .and_then(|(parent, _)| self.working.resolve(&parent))
                                        .unwrap_or(b3_vfs::ROOT_INO)
                                })
                                .collect();
                            self.records.push(FsyncRecord {
                                inode: prev_logged,
                                paths: prev_paths,
                                parent_inos: prev_parents,
                            });
                        }
                    }
                }
            }
        }

        self.records.push(FsyncRecord {
            inode: logged,
            paths,
            parent_inos,
        });

        let bytes = encode_records(&self.records);
        self.sb.log = write_blob(
            self.dev.as_mut(),
            &mut self.sb,
            &bytes,
            IoFlags::META | IoFlags::SYNC,
        )?;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())
    }
}

/// Roll-forward recovery: load the checkpoint and re-apply each fsync record.
fn roll_forward(
    checkpoint: &MemTree,
    records: &[FsyncRecord],
    bugs: &FlashBugs,
) -> FsResult<MemTree> {
    let mut tree = checkpoint.clone();
    // Recovered directories must never be allocated inode numbers that the
    // node log is about to replay, or a later record would overwrite them.
    let max_recorded_ino = records.iter().map(|r| r.inode.ino).max().unwrap_or(0);
    if max_recorded_ino >= tree.next_ino() {
        tree.set_next_ino(max_recorded_ino + 1);
    }
    for record in records {
        tree.insert_inode_raw(record.inode.clone());
        for (path, parent_ino) in record.paths.iter().zip(&record.parent_inos) {
            let Ok((parent_path, name)) = split_parent(path) else {
                continue;
            };
            let dir_ino = if bugs.renamed_dir_recovers_old_name {
                // Buggy path: attach by the recorded parent inode number,
                // wherever that directory currently lives in the checkpoint.
                if tree.inode(*parent_ino).is_some_and(Inode::is_dir) {
                    *parent_ino
                } else {
                    ensure_dirs(&mut tree, &parent_path)?
                }
            } else {
                // Correct path: recover the directory under the path the
                // fsync observed, creating (or effectively renaming) the
                // ancestor chain as needed.
                ensure_dirs_for_ino(&mut tree, &parent_path, *parent_ino)?
            };
            let dir = tree
                .inode_mut(dir_ino)
                .ok_or_else(|| FsError::Unmountable("roll-forward lost a directory".into()))?;
            match dir.entries.get(&name) {
                Some(existing) if *existing == record.inode.ino => {}
                Some(_) => {
                    // Re-pointing an existing name does not change the
                    // directory's size bookkeeping.
                    dir.entries.insert(name.clone(), record.inode.ino);
                }
                None => {
                    dir.entries.insert(name.clone(), record.inode.ino);
                    dir.dir_size += b3_vfs::tree::DIRENT_SIZE;
                }
            }
        }
    }
    Ok(tree)
}

/// Ensures every directory along `path` exists, creating missing ones.
fn ensure_dirs(tree: &mut MemTree, path: &str) -> FsResult<InodeId> {
    let mut prefix = String::new();
    let mut current = b3_vfs::ROOT_INO;
    for comp in b3_vfs::path::components(path) {
        let next_path = b3_vfs::path::join(&prefix, &comp);
        current = match tree.resolve(&next_path) {
            Ok(ino) => ino,
            Err(_) => tree.mkdir(&next_path)?,
        };
        prefix = next_path;
    }
    Ok(current)
}

/// Ensures the directory `path` exists and refers to `ino` when possible:
/// if the checkpoint knows the inode under a different name, the entry is
/// moved (this is the "recover the rename" half of strict fsync mode).
fn ensure_dirs_for_ino(tree: &mut MemTree, path: &str, ino: InodeId) -> FsResult<InodeId> {
    if tree.inode(ino).is_some_and(Inode::is_dir) {
        let existing_paths = tree.paths_of_ino(ino);
        if let Some(old_path) = existing_paths.first() {
            if old_path != &b3_vfs::path::normalize(path) && !old_path.is_empty() {
                // The directory was renamed before the fsync: recover the
                // rename so the fsynced file appears under the new name.
                let _ = tree.rename(old_path, path);
            }
        }
        if let Ok(resolved) = tree.resolve(path) {
            return Ok(resolved);
        }
    }
    ensure_dirs(tree, path)
}

impl FileSystem for FlashFs {
    fn fs_name(&self) -> &'static str {
        "flashfs"
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.working.create_file(path).map(|_| ())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.working.mkdir(path).map(|_| ())
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.working.mkfifo(path).map(|_| ())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.working.symlink(target, linkpath).map(|_| ())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.working.link(existing, new).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.working.unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.working.rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.working.rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], _mode: WriteMode) -> FsResult<()> {
        self.working.write(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.working.truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.working.fallocate(path, mode, offset, len)?;
        if mode == FallocMode::ZeroRangeKeepSize {
            if let Ok(ino) = self.working.resolve(path) {
                let end = offset + len;
                let entry = self.zero_range_keep.entry(ino).or_insert(0);
                *entry = (*entry).max(end);
            }
        }
        Ok(())
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.working.setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.working.removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.working.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.working.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.working.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.working.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.working.readlink(path)
    }

    fn fsync(&mut self, path: &str) -> FsResult<()> {
        self.append_record(path, false)
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        self.append_record(path, true)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.write_checkpoint()
    }

    fn unmount(mut self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.write_checkpoint()?;
        self.sb.dirty = false;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(self.dev)
    }

    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }
}

/// Incremental recovery session for FlashFs (see
/// [`b3_vfs::recover::RecoverDelta`]).
///
/// A FlashFs mount decodes the checkpoint tree, rolls the node log forward
/// over it, and writes a fresh checkpoint. The checkpoint decode dominates
/// and the checkpoint blob only moves when the file system checkpoints, so
/// the session memoizes it in a [`CommittedTreeCache`]; roll-forward still
/// runs per state (the node log is what differs between adjacent states),
/// and the mount-time checkpoint write-back is skipped — it only
/// re-serializes the recovered state, leaving the logical view identical.
struct FlashRecoverySession {
    bugs: FlashBugs,
    cache: CommittedTreeCache,
    /// Base image whose checkpoint tree is pinned in the cache.
    primed: Option<b3_block::DiskImage>,
}

impl RecoverDelta for FlashRecoverySession {
    fn prime(&mut self, _spec: &dyn FsSpec, base: &b3_block::DiskImage) {
        // State from the previous run proves nothing about this one.
        self.cache.start_run();
        if self.primed.as_ref().is_some_and(|p| p.ptr_eq(base)) {
            return;
        }
        // New base: decode its checkpoint tree once and pin it, so the first
        // crash state of every run replayed onto this base (whose delta is
        // relative to the base) can hit the cache too. All errors are
        // swallowed — priming is an optimization, and `recover` reports
        // mount failures of a broken base exactly as `mount` would.
        self.primed = None;
        let dev = b3_block::CowSnapshotDevice::new(base.clone());
        let Ok(sb) = SuperBlock::read_from(&dev, FLASHFS_MAGIC) else {
            return;
        };
        let Ok(tree_bytes) = read_blob(&dev, sb.tree) else {
            return;
        };
        if tree_bytes.is_empty() {
            return;
        }
        let Ok(tree) = MemTree::decode(&tree_bytes) else {
            return;
        };
        self.cache.pin(&sb, tree);
        self.primed = Some(base.clone());
    }

    fn recover(
        &mut self,
        _spec: &dyn FsSpec,
        dev: Box<dyn BlockDevice>,
        delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>> {
        let sb = SuperBlock::read_from(dev.as_ref(), FLASHFS_MAGIC)?;
        let checkpoint = match self.cache.lookup(&sb, delta) {
            Some(tree) => tree.clone(),
            None => {
                // Identical decode (and error) path to `mount_with_bugs` —
                // unless a byte compare proves the cached decode still
                // matches this state's blob.
                let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
                match self.cache.verify(&sb, &tree_bytes) {
                    Some(tree) => tree.clone(),
                    None => {
                        let tree = MemTree::decode(&tree_bytes).map_err(|e| {
                            FsError::Unmountable(format!("corrupt checkpoint: {e}"))
                        })?;
                        self.cache.store(&sb, tree_bytes, tree.clone());
                        tree
                    }
                }
            }
        };
        let working = if sb.log.is_present() {
            let records = decode_records(&read_blob(dev.as_ref(), sb.log)?)?;
            roll_forward(&checkpoint, &records, &self.bugs)?
        } else {
            checkpoint.clone()
        };
        Ok(Box::new(FlashFs {
            dev,
            sb,
            bugs: self.bugs,
            checkpoint: working.clone(),
            working,
            records: Vec::new(),
            zero_range_keep: HashMap::new(),
        }))
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Factory for FlashFs instances.
#[derive(Debug, Clone, Copy)]
pub struct FlashFsSpec {
    bugs: FlashBugs,
}

impl FlashFsSpec {
    /// Spec with the bugs of a kernel era.
    pub fn new(era: KernelEra) -> Self {
        FlashFsSpec {
            bugs: FlashBugs::for_era(era),
        }
    }

    /// Spec with an explicit bug set.
    pub fn with_bugs(bugs: FlashBugs) -> Self {
        FlashFsSpec { bugs }
    }

    /// Fully patched spec.
    pub fn patched() -> Self {
        FlashFsSpec {
            bugs: FlashBugs::none(),
        }
    }
}

impl FsSpec for FlashFsSpec {
    fn name(&self) -> &'static str {
        "flashfs"
    }

    fn mkfs(&self, mut device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        FlashFs::format(&mut device)?;
        Ok(Box::new(FlashFs::mount_with_bugs(device, self.bugs)?))
    }

    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        Ok(Box::new(FlashFs::mount_with_bugs(device, self.bugs)?))
    }

    fn recovery_session(&self) -> Box<dyn RecoverDelta + Send> {
        Box::new(FlashRecoverySession {
            bugs: self.bugs,
            cache: CommittedTreeCache::new(),
            primed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;

    fn fresh(bugs: FlashBugs) -> FlashFs {
        let mut dev: Box<dyn BlockDevice> = Box::new(RamDisk::new(4096));
        FlashFs::format(&mut dev).unwrap();
        FlashFs::mount_with_bugs(dev, bugs).unwrap()
    }

    fn crash_and_remount(fs: FlashFs, bugs: FlashBugs) -> FlashFs {
        FlashFs::mount_with_bugs(fs.dev, bugs).unwrap()
    }

    #[test]
    fn recovery_session_matches_remount_and_caches_the_checkpoint() {
        use b3_vfs::snapshot::LogicalSnapshot;
        fn crashed_device() -> Box<dyn BlockDevice> {
            let mut fs = fresh(FlashBugs::none());
            fs.mkdir("A").unwrap();
            fs.create("A/foo").unwrap();
            fs.write("A/foo", 0, b"payload", WriteMode::Buffered)
                .unwrap();
            fs.fsync("A/foo").unwrap();
            fs.create("A/volatile").unwrap();
            fs.dev // crash: no clean unmount, roll-forward pending
        }
        let spec = FlashFsSpec::patched();
        let baseline = spec.mount(crashed_device()).unwrap();
        let expected = LogicalSnapshot::capture(baseline.as_ref()).unwrap();

        let mut session = spec.recovery_session();
        assert!(session.is_incremental());
        let first = session.recover(&spec, crashed_device(), None).unwrap();
        assert_eq!(LogicalSnapshot::capture(first.as_ref()).unwrap(), expected);
        let empty = StateDelta::from_blocks(Vec::new());
        let second = session
            .recover(&spec, crashed_device(), Some(&empty))
            .unwrap();
        assert_eq!(LogicalSnapshot::capture(second.as_ref()).unwrap(), expected);
    }

    #[test]
    fn checkpoint_persists_and_volatile_state_is_lost() {
        let mut fs = fresh(FlashBugs::none());
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.sync().unwrap();
        fs.create("A/volatile").unwrap();
        let fs = crash_and_remount(fs, FlashBugs::none());
        assert!(fs.exists("A/foo"));
        assert!(!fs.exists("A/volatile"));
    }

    #[test]
    fn roll_forward_recovers_fsynced_file() {
        let mut fs = fresh(FlashBugs::none());
        fs.mkdir("A").unwrap();
        fs.sync().unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[5u8; 6000], WriteMode::Buffered)
            .unwrap();
        fs.fsync("A/foo").unwrap();
        fs.create("A/other").unwrap();
        let fs = crash_and_remount(fs, FlashBugs::none());
        assert_eq!(fs.metadata("A/foo").unwrap().size, 6000);
        assert!(!fs.exists("A/other"));
    }

    #[test]
    fn zero_range_keep_size_bug_recovers_wrong_size() {
        // New bug 9: write 16K; fsync; fzero -k (16-20K); fsync; crash.
        let run = |bugs: FlashBugs| -> u64 {
            let mut fs = fresh(bugs);
            fs.create("foo").unwrap();
            fs.write("foo", 0, &[1u8; 16 * 1024], WriteMode::Buffered)
                .unwrap();
            fs.fsync("foo").unwrap();
            fs.fallocate("foo", FallocMode::ZeroRangeKeepSize, 16 * 1024, 4096)
                .unwrap();
            fs.fsync("foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            fs.metadata("foo").unwrap().size
        };
        assert_eq!(run(FlashBugs::none()), 16 * 1024);
        assert_eq!(
            run(FlashBugs {
                zero_range_keep_size_wrong_size: true,
                ..FlashBugs::none()
            }),
            20 * 1024
        );
    }

    #[test]
    fn renamed_dir_bug_recovers_file_under_old_name() {
        // New bug 10: mkdir A; sync; rename A B; touch B/foo; fsync B/foo.
        let run = |bugs: FlashBugs| -> (bool, bool) {
            let mut fs = fresh(bugs);
            fs.mkdir("A").unwrap();
            fs.sync().unwrap();
            fs.rename("A", "B").unwrap();
            fs.create("B/foo").unwrap();
            fs.fsync("B/foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            (fs.exists("B/foo"), fs.exists("A/foo"))
        };
        assert_eq!(run(FlashBugs::none()), (true, false));
        assert_eq!(
            run(FlashBugs {
                renamed_dir_recovers_old_name: true,
                ..FlashBugs::none()
            }),
            (false, true)
        );
    }

    #[test]
    fn rename_and_recreate_bug_loses_old_file() {
        // Known workload 1 (F2FS flavour): write A/foo 16K; sync; rename to
        // A/bar; create new A/foo 4K; fsync A/foo.
        let run = |bugs: FlashBugs| -> (bool, u64) {
            let mut fs = fresh(bugs);
            fs.mkdir("A").unwrap();
            fs.create("A/foo").unwrap();
            fs.write("A/foo", 0, &[2u8; 16 * 1024], WriteMode::Buffered)
                .unwrap();
            fs.sync().unwrap();
            fs.rename("A/foo", "A/bar").unwrap();
            fs.create("A/foo").unwrap();
            fs.write("A/foo", 0, &[3u8; 4096], WriteMode::Buffered)
                .unwrap();
            fs.fsync("A/foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            let bar = fs.exists("A/bar");
            let foo_size = fs.metadata("A/foo").unwrap().size;
            (bar, foo_size)
        };
        assert_eq!(run(FlashBugs::none()), (true, 4096));
        assert_eq!(
            run(FlashBugs {
                roll_forward_loses_renamed_file: true,
                ..FlashBugs::none()
            }),
            (false, 4096)
        );
    }

    #[test]
    fn fdatasync_falloc_bug_loses_blocks() {
        // Known workload 2: write 8K; fsync; falloc -k (8-16K); fdatasync.
        let run = |bugs: FlashBugs| -> u64 {
            let mut fs = fresh(bugs);
            fs.create("foo").unwrap();
            fs.write("foo", 0, &[1u8; 8192], WriteMode::Buffered)
                .unwrap();
            fs.fsync("foo").unwrap();
            fs.fallocate("foo", FallocMode::KeepSize, 8192, 8192)
                .unwrap();
            fs.fdatasync("foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            fs.metadata("foo").unwrap().blocks
        };
        assert_eq!(run(FlashBugs::none()), 32);
        assert_eq!(
            run(FlashBugs {
                fdatasync_skips_falloc_beyond_eof: true,
                ..FlashBugs::none()
            }),
            16
        );
    }

    #[test]
    fn era_table_matches_paper() {
        let eval = FlashBugs::for_era(KernelEra::V4_16);
        assert!(eval.zero_range_keep_size_wrong_size);
        assert!(eval.renamed_dir_recovers_old_name);
        assert!(!eval.roll_forward_loses_renamed_file);
        assert!(!eval.fdatasync_skips_falloc_beyond_eof);
        assert_eq!(FlashBugs::for_era(KernelEra::Patched), FlashBugs::none());
    }

    #[test]
    fn directory_fsync_forces_checkpoint() {
        let mut fs = fresh(FlashBugs::all());
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.fsync("A").unwrap();
        let fs = crash_and_remount(fs, FlashBugs::all());
        assert!(fs.exists("A/foo"));
    }
}
