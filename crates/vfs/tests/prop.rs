//! Property-based tests for the VFS layer: the workload text format and the
//! in-memory tree's serialization and namespace invariants.

use proptest::prelude::*;

use b3_vfs::fs::WriteMode;
use b3_vfs::tree::MemTree;
use b3_vfs::workload::{parse_workload, FallocMode, Op, Workload, WritePattern, WriteSpec};

/// Strategy for a path from the bounded file set (plus a nested variant).
fn path_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "foo".to_string(),
        "bar".to_string(),
        "A".to_string(),
        "B".to_string(),
        "A/foo".to_string(),
        "A/bar".to_string(),
        "B/foo".to_string(),
        "B/bar".to_string(),
        "A/C/foo".to_string(),
    ])
}

/// Strategy for one workload operation.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        path_strategy().prop_map(|path| Op::Creat { path }),
        path_strategy().prop_map(|path| Op::Mkdir { path }),
        (path_strategy(), path_strategy()).prop_map(|(existing, new)| Op::Link { existing, new }),
        (path_strategy(), path_strategy()).prop_map(|(from, to)| Op::Rename { from, to }),
        path_strategy().prop_map(|path| Op::Unlink { path }),
        (path_strategy(), 0u64..200_000, 1u64..65_536).prop_map(|(path, offset, len)| Op::Write {
            path,
            mode: WriteMode::Buffered,
            spec: WriteSpec::Range { offset, len },
        }),
        (
            path_strategy(),
            prop::sample::select(WritePattern::ALL.to_vec())
        )
            .prop_map(|(path, pattern)| Op::Write {
                path,
                mode: WriteMode::Direct,
                spec: WriteSpec::Pattern(pattern),
            }),
        (
            path_strategy(),
            prop::sample::select(FallocMode::ALL.to_vec()),
            0u64..100_000,
            1u64..65_536
        )
            .prop_map(|(path, mode, offset, len)| Op::Falloc {
                path,
                mode,
                offset,
                len
            }),
        (path_strategy(), 0u64..100_000).prop_map(|(path, size)| Op::Truncate { path, size }),
        path_strategy().prop_map(|path| Op::Fsync { path }),
        path_strategy().prop_map(|path| Op::Fdatasync { path }),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every workload the strategy can produce survives a
    /// serialize-then-parse round trip unchanged.
    #[test]
    fn workload_text_round_trips(
        setup in prop::collection::vec(op_strategy(), 0..4),
        ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let workload = Workload::with_setup("prop", setup, ops);
        let text = workload.to_string();
        let parsed = parse_workload(&text, "fallback").expect("round trip parses");
        prop_assert_eq!(parsed, workload);
    }

    /// Applying a random operation sequence to the in-memory tree never
    /// breaks its internal invariants, and the tree always survives an
    /// encode/decode round trip exactly.
    #[test]
    fn memtree_serialization_round_trips(ops in prop::collection::vec(op_strategy(), 0..24)) {
        let mut tree = MemTree::new();
        for op in &ops {
            // Errors (missing files, existing targets, …) are expected for
            // random sequences; the property is about the surviving state.
            let _ = apply(&mut tree, op);
        }
        let decoded = MemTree::decode(&tree.encode()).expect("decodes");
        prop_assert_eq!(&decoded, &tree);

        // Invariant: every directory entry resolves to a live inode and the
        // directory size bookkeeping matches the number of entries.
        for inode in tree.inodes() {
            if inode.is_dir() {
                prop_assert_eq!(
                    inode.dir_size,
                    inode.entries.len() as u64 * b3_vfs::tree::DIRENT_SIZE
                );
                for child in inode.entries.values() {
                    prop_assert!(tree.inode(*child).is_some());
                }
            }
        }
    }
}

fn apply(tree: &mut MemTree, op: &Op) -> Result<(), b3_vfs::FsError> {
    match op {
        Op::Creat { path } => tree.create_file(path).map(|_| ()),
        Op::Mkdir { path } => tree.mkdir(path).map(|_| ()),
        Op::Link { existing, new } => tree.link(existing, new).map(|_| ()),
        Op::Rename { from, to } => tree.rename(from, to),
        Op::Unlink { path } => tree.unlink(path),
        Op::Write {
            path,
            spec: WriteSpec::Range { offset, len },
            ..
        } => tree.write(path, *offset, &vec![7u8; (*len as usize).min(65_536)]),
        Op::Write { path, .. } => tree.write(path, 0, &[7u8; 512]),
        Op::Falloc {
            path,
            mode,
            offset,
            len,
        } => tree.fallocate(path, *mode, *offset, *len),
        Op::Truncate { path, size } => tree.truncate(path, *size),
        _ => Ok(()),
    }
}
