//! File metadata types used by the `FileSystem` trait and the AutoChecker.

use std::collections::BTreeMap;

/// The type of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
    /// Named pipe (`mkfifo` in the paper's Workload 3).
    Fifo,
}

impl FileType {
    /// Short human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            FileType::Regular => "file",
            FileType::Directory => "dir",
            FileType::Symlink => "symlink",
            FileType::Fifo => "fifo",
        }
    }
}

/// Metadata of one file or directory, as reported by `stat`.
///
/// The AutoChecker compares exactly the fields the paper calls out (§4.1):
/// "B3 checks for both data and metadata (size, link count, and block count)
/// consistency for files and directories."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number (stable while mounted; not compared across remounts).
    pub ino: u64,
    /// Entry type.
    pub file_type: FileType,
    /// Logical size in bytes (`st_size`).
    pub size: u64,
    /// Number of hard links (`st_nlink`).
    pub nlink: u32,
    /// Number of 512-byte sectors allocated (`st_blocks`), which is how the
    /// paper reports the "blocks allocated beyond EOF are lost" bugs
    /// (e.g. known bug workload 2: "expected 32 sectors, actual 16").
    pub blocks: u64,
    /// Extended attributes, sorted by name.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

impl Metadata {
    /// Creates metadata for a new empty entry of the given type.
    pub fn new(ino: u64, file_type: FileType) -> Self {
        Metadata {
            ino,
            file_type,
            size: 0,
            nlink: if file_type == FileType::Directory {
                2
            } else {
                1
            },
            blocks: 0,
            xattrs: BTreeMap::new(),
        }
    }

    /// Number of 512-byte sectors corresponding to `bytes` of allocation.
    pub fn sectors_for(bytes: u64) -> u64 {
        bytes.div_ceil(512)
    }

    /// True if this entry is a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type == FileType::Directory
    }

    /// True if this entry is a regular file.
    pub fn is_file(&self) -> bool {
        self.file_type == FileType::Regular
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_directory_has_two_links() {
        let meta = Metadata::new(1, FileType::Directory);
        assert_eq!(meta.nlink, 2);
        assert!(meta.is_dir());
        assert!(!meta.is_file());
    }

    #[test]
    fn new_file_has_one_link() {
        let meta = Metadata::new(2, FileType::Regular);
        assert_eq!(meta.nlink, 1);
        assert_eq!(meta.size, 0);
        assert!(meta.is_file());
    }

    #[test]
    fn sector_rounding() {
        assert_eq!(Metadata::sectors_for(0), 0);
        assert_eq!(Metadata::sectors_for(1), 1);
        assert_eq!(Metadata::sectors_for(512), 1);
        assert_eq!(Metadata::sectors_for(513), 2);
        assert_eq!(Metadata::sectors_for(16 * 1024), 32);
    }

    #[test]
    fn file_type_names() {
        assert_eq!(FileType::Regular.as_str(), "file");
        assert_eq!(FileType::Directory.as_str(), "dir");
        assert_eq!(FileType::Symlink.as_str(), "symlink");
        assert_eq!(FileType::Fifo.as_str(), "fifo");
    }
}
