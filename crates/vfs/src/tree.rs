//! An in-memory POSIX namespace tree shared by all simulated file systems.
//!
//! Real file systems split their logic between the kernel VFS layer (path
//! resolution, permission and namespace semantics) and the file-system
//! specific persistence machinery (journals, log trees, checkpoints). The
//! simulated file systems in this workspace follow the same split:
//! [`MemTree`] provides the namespace semantics — inodes, directory entries,
//! hard links, data pages, extended attributes, with POSIX error behaviour —
//! while each file-system crate layers its own persistence and recovery
//! logic (and injected bugs) on top.
//!
//! A `MemTree` is purely in-memory. File systems hold one as their *working*
//! (volatile, page-cache-like) state, and serialize all or part of it to the
//! block device at persistence points using [`MemTree::encode`] /
//! [`MemTree::decode`].

use std::collections::BTreeMap;

use crate::codec::{Decoder, Encoder};
use crate::error::{FsError, FsResult};
use crate::metadata::{FileType, Metadata};
use crate::path::{components, is_root, join, normalize, split_parent, validate};
use crate::workload::FallocMode;

/// Inode number.
pub type InodeId = u64;

/// The root directory's inode number.
pub const ROOT_INO: InodeId = 1;

/// On-disk size accounted to a directory per entry (matches the granularity
/// btrfs uses for its `i_size` bookkeeping of directories, which is the
/// field the "directory un-removable" log-replay bugs corrupt).
pub const DIRENT_SIZE: u64 = 32;

/// Block granularity used for allocation accounting.
const ALLOC_UNIT: u64 = 4096;

fn round_up_alloc(bytes: u64) -> u64 {
    bytes.div_ceil(ALLOC_UNIT) * ALLOC_UNIT
}

/// One inode: file, directory, symlink, or fifo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: InodeId,
    /// Entry type.
    pub kind: FileType,
    /// Hard-link count (for directories: 2 + number of subdirectories).
    pub nlink: u32,
    /// File contents; `data.len()` is the file's logical size.
    pub data: Vec<u8>,
    /// Bytes of allocated space (can exceed the size after
    /// `fallocate(KEEP_SIZE)`; reported through `st_blocks`).
    pub allocated: u64,
    /// Directory size bookkeeping (`DIRENT_SIZE` per entry). Kept separate
    /// from `entries` because buggy log replay can corrupt one but not the
    /// other — the mechanism behind the "directory un-removable" bugs.
    pub dir_size: u64,
    /// Directory entries: name → child inode.
    pub entries: BTreeMap<String, InodeId>,
    /// Symlink target.
    pub symlink_target: String,
    /// Extended attributes.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

impl Inode {
    /// Creates a fresh inode of the given type.
    pub fn new(ino: InodeId, kind: FileType) -> Self {
        Inode {
            ino,
            kind,
            nlink: if kind == FileType::Directory { 2 } else { 1 },
            data: Vec::new(),
            allocated: 0,
            dir_size: 0,
            entries: BTreeMap::new(),
            symlink_target: String::new(),
            xattrs: BTreeMap::new(),
        }
    }

    /// Logical size in bytes, as reported by `stat`.
    pub fn size(&self) -> u64 {
        match self.kind {
            FileType::Regular => self.data.len() as u64,
            FileType::Directory => self.dir_size,
            FileType::Symlink => self.symlink_target.len() as u64,
            FileType::Fifo => 0,
        }
    }

    /// Allocated sectors (512-byte units), as reported by `st_blocks`.
    pub fn blocks(&self) -> u64 {
        Metadata::sectors_for(self.allocated)
    }

    /// Converts the inode into the [`Metadata`] view used by the VFS API.
    pub fn metadata(&self) -> Metadata {
        Metadata {
            ino: self.ino,
            file_type: self.kind,
            size: self.size(),
            nlink: self.nlink,
            blocks: self.blocks(),
            xattrs: self.xattrs.clone(),
        }
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.kind == FileType::Directory
    }
}

/// A full in-memory namespace: the working state of a simulated file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTree {
    inodes: BTreeMap<InodeId, Inode>,
    next_ino: InodeId,
}

impl Default for MemTree {
    fn default() -> Self {
        MemTree::new()
    }
}

impl MemTree {
    /// Creates a tree containing only an empty root directory.
    pub fn new() -> Self {
        let mut inodes = BTreeMap::new();
        inodes.insert(ROOT_INO, Inode::new(ROOT_INO, FileType::Directory));
        MemTree {
            inodes,
            next_ino: ROOT_INO + 1,
        }
    }

    // --- inode access -----------------------------------------------------------

    /// Immutable access to an inode.
    pub fn inode(&self, ino: InodeId) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Mutable access to an inode.
    pub fn inode_mut(&mut self, ino: InodeId) -> Option<&mut Inode> {
        self.inodes.get_mut(&ino)
    }

    /// Iterates over all inodes in inode-number order.
    pub fn inodes(&self) -> impl Iterator<Item = &Inode> {
        self.inodes.values()
    }

    /// Number of inodes (including the root).
    pub fn num_inodes(&self) -> usize {
        self.inodes.len()
    }

    /// The next inode number that will be allocated.
    pub fn next_ino(&self) -> InodeId {
        self.next_ino
    }

    /// Overrides the inode allocator cursor. Only recovery code uses this;
    /// setting it to a value that collides with live inodes is exactly how
    /// the "cannot create new files after recovery" btrfs bug manifests.
    pub fn set_next_ino(&mut self, next: InodeId) {
        self.next_ino = next;
    }

    /// Inserts or replaces an inode verbatim (recovery/log-replay use only).
    pub fn insert_inode_raw(&mut self, inode: Inode) {
        self.next_ino = self.next_ino.max(inode.ino + 1);
        self.inodes.insert(inode.ino, inode);
    }

    /// Removes an inode verbatim (recovery/log-replay use only).
    pub fn remove_inode_raw(&mut self, ino: InodeId) -> Option<Inode> {
        self.inodes.remove(&ino)
    }

    fn alloc_ino(&mut self) -> FsResult<InodeId> {
        let ino = self.next_ino;
        if self.inodes.contains_key(&ino) {
            // The inode allocator collided with a live inode: the tree was
            // recovered into an inconsistent state.
            return Err(FsError::Corrupted(format!(
                "inode allocator collision at ino {ino}"
            )));
        }
        self.next_ino += 1;
        Ok(ino)
    }

    // --- path resolution ----------------------------------------------------------

    /// Resolves a path to an inode number.
    pub fn resolve(&self, path: &str) -> FsResult<InodeId> {
        validate(path)?;
        let mut current = ROOT_INO;
        for comp in components(path) {
            let inode = self.inodes.get(&current).ok_or_else(|| {
                FsError::Corrupted(format!("dangling inode {current} while resolving {path}"))
            })?;
            if !inode.is_dir() {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            current = *inode
                .entries
                .get(&comp)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        if !self.inodes.contains_key(&current) {
            // A directory entry that references a missing inode (a *dangling*
            // entry, the state buggy log replay can leave behind) behaves as
            // if the file were absent.
            return Err(FsError::NotFound(path.to_string()));
        }
        Ok(current)
    }

    /// Resolves the parent directory of a path, returning `(parent_ino, name)`.
    pub fn resolve_parent(&self, path: &str) -> FsResult<(InodeId, String)> {
        validate(path)?;
        let (parent, name) = split_parent(path)?;
        let parent_ino = self.resolve(&parent)?;
        let parent_inode = &self.inodes[&parent_ino];
        if !parent_inode.is_dir() {
            return Err(FsError::NotADirectory(parent));
        }
        Ok((parent_ino, name))
    }

    /// Does the path exist?
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// All paths that refer to an inode (hard links give several). Paths are
    /// returned in sorted order.
    pub fn paths_of_ino(&self, ino: InodeId) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths(ROOT_INO, "", ino, &mut paths);
        paths.sort();
        paths
    }

    fn collect_paths(&self, dir: InodeId, prefix: &str, target: InodeId, out: &mut Vec<String>) {
        if dir == target && is_root(prefix) {
            out.push(String::new());
        }
        let Some(inode) = self.inodes.get(&dir) else {
            return;
        };
        for (name, child) in &inode.entries {
            let path = join(prefix, name);
            if *child == target {
                out.push(path.clone());
            }
            if self.inodes.get(child).is_some_and(Inode::is_dir) {
                self.collect_paths(*child, &path, target, out);
            }
        }
    }

    // --- namespace operations ---------------------------------------------------

    fn add_entry(&mut self, parent: InodeId, name: &str, child: InodeId) {
        let dir = self.inodes.get_mut(&parent).expect("parent exists");
        dir.entries.insert(name.to_string(), child);
        dir.dir_size += DIRENT_SIZE;
    }

    fn remove_entry(&mut self, parent: InodeId, name: &str) -> Option<InodeId> {
        let dir = self.inodes.get_mut(&parent)?;
        let removed = dir.entries.remove(name);
        if removed.is_some() {
            dir.dir_size = dir.dir_size.saturating_sub(DIRENT_SIZE);
        }
        removed
    }

    fn create_node(&mut self, path: &str, kind: FileType) -> FsResult<InodeId> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.inodes[&parent].entries.contains_key(&name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = self.alloc_ino()?;
        self.inodes.insert(ino, Inode::new(ino, kind));
        self.add_entry(parent, &name, ino);
        if kind == FileType::Directory {
            self.inodes.get_mut(&parent).expect("parent exists").nlink += 1;
        }
        Ok(ino)
    }

    /// Creates an empty regular file.
    pub fn create_file(&mut self, path: &str) -> FsResult<InodeId> {
        self.create_node(path, FileType::Regular)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> FsResult<InodeId> {
        self.create_node(path, FileType::Directory)
    }

    /// Creates a named pipe.
    pub fn mkfifo(&mut self, path: &str) -> FsResult<InodeId> {
        self.create_node(path, FileType::Fifo)
    }

    /// Creates a symbolic link.
    pub fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<InodeId> {
        let ino = self.create_node(linkpath, FileType::Symlink)?;
        self.inodes
            .get_mut(&ino)
            .expect("just created")
            .symlink_target = normalize(target);
        Ok(ino)
    }

    /// Creates a hard link `new` referring to the inode of `existing`.
    pub fn link(&mut self, existing: &str, new: &str) -> FsResult<InodeId> {
        let src_ino = self.resolve(existing)?;
        if self.inodes[&src_ino].is_dir() {
            return Err(FsError::IsADirectory(existing.to_string()));
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.inodes[&parent].entries.contains_key(&name) {
            return Err(FsError::AlreadyExists(new.to_string()));
        }
        self.add_entry(parent, &name, src_ino);
        self.inodes.get_mut(&src_ino).expect("source exists").nlink += 1;
        Ok(src_ino)
    }

    /// Removes a non-directory name; the inode is freed when its last link
    /// goes away.
    pub fn unlink(&mut self, path: &str) -> FsResult<()> {
        let ino = self.resolve(path)?;
        if self.inodes[&ino].is_dir() {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let (parent, name) = self.resolve_parent(path)?;
        self.remove_entry(parent, &name);
        let inode = self.inodes.get_mut(&ino).expect("target exists");
        inode.nlink = inode.nlink.saturating_sub(1);
        if inode.nlink == 0 {
            self.inodes.remove(&ino);
        }
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> FsResult<()> {
        if is_root(path) {
            return Err(FsError::InvalidArgument("cannot remove the root".into()));
        }
        let ino = self.resolve(path)?;
        let inode = &self.inodes[&ino];
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        if !inode.entries.is_empty() {
            return Err(FsError::DirectoryNotEmpty(path.to_string()));
        }
        if inode.dir_size != 0 {
            // The directory claims to still hold entries even though none
            // resolve: its size bookkeeping is corrupt (this is the state
            // buggy fsync-log replay leaves behind in the "directory
            // un-removable" bugs; real btrfs returns ENOTEMPTY here too).
            return Err(FsError::DirectoryNotEmpty(format!(
                "{path} (stale directory size {} after recovery)",
                inode.dir_size
            )));
        }
        let (parent, name) = self.resolve_parent(path)?;
        self.remove_entry(parent, &name);
        self.inodes.get_mut(&parent).expect("parent exists").nlink -= 1;
        self.inodes.remove(&ino);
        Ok(())
    }

    /// Renames `from` to `to` with POSIX semantics (replacing an existing
    /// target file, or an existing empty target directory).
    pub fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let src_ino = self.resolve(from)?;
        let (src_parent, src_name) = self.resolve_parent(from)?;
        let (dst_parent, dst_name) = self.resolve_parent(to)?;
        let src_is_dir = self.inodes[&src_ino].is_dir();

        if normalize(from) == normalize(to) {
            return Ok(());
        }
        if src_is_dir && crate::path::is_ancestor(from, to) {
            return Err(FsError::InvalidArgument(format!(
                "cannot move {from} into its own subtree {to}"
            )));
        }

        // Handle an existing destination.
        if let Some(&dst_ino) = self.inodes[&dst_parent].entries.get(&dst_name) {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = self.inodes[&dst_ino].is_dir();
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(FsError::NotADirectory(to.to_string())),
                (false, true) => return Err(FsError::IsADirectory(to.to_string())),
                (true, true) => {
                    if !self.inodes[&dst_ino].entries.is_empty() {
                        return Err(FsError::DirectoryNotEmpty(to.to_string()));
                    }
                    self.remove_entry(dst_parent, &dst_name);
                    self.inodes.get_mut(&dst_parent).expect("dst parent").nlink -= 1;
                    self.inodes.remove(&dst_ino);
                }
                (false, false) => {
                    self.remove_entry(dst_parent, &dst_name);
                    let dst = self.inodes.get_mut(&dst_ino).expect("dst exists");
                    dst.nlink = dst.nlink.saturating_sub(1);
                    if dst.nlink == 0 {
                        self.inodes.remove(&dst_ino);
                    }
                }
            }
        }

        self.remove_entry(src_parent, &src_name);
        self.add_entry(dst_parent, &dst_name, src_ino);
        if src_is_dir && src_parent != dst_parent {
            self.inodes.get_mut(&src_parent).expect("src parent").nlink -= 1;
            self.inodes.get_mut(&dst_parent).expect("dst parent").nlink += 1;
        }
        Ok(())
    }

    // --- data operations -----------------------------------------------------------

    fn file_mut(&mut self, path: &str) -> FsResult<&mut Inode> {
        let ino = self.resolve(path)?;
        let inode = self.inodes.get_mut(&ino).expect("resolved inode exists");
        match inode.kind {
            FileType::Regular => Ok(inode),
            FileType::Directory => Err(FsError::IsADirectory(path.to_string())),
            _ => Err(FsError::InvalidArgument(format!(
                "{path} is not a regular file"
            ))),
        }
    }

    /// Writes `data` at `offset`, zero-filling any gap and extending the file.
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        let inode = self.file_mut(path)?;
        let end = offset as usize + data.len();
        if inode.data.len() < end {
            inode.data.resize(end, 0);
        }
        inode.data[offset as usize..end].copy_from_slice(data);
        inode.allocated = inode.allocated.max(round_up_alloc(end as u64));
        Ok(())
    }

    /// Truncates or zero-extends the file to `size`.
    pub fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        let inode = self.file_mut(path)?;
        inode.data.resize(size as usize, 0);
        inode.allocated = round_up_alloc(size);
        Ok(())
    }

    /// `fallocate` in any of the supported modes.
    pub fn fallocate(
        &mut self,
        path: &str,
        mode: FallocMode,
        offset: u64,
        len: u64,
    ) -> FsResult<()> {
        if len == 0 {
            return Err(FsError::InvalidArgument(
                "fallocate with zero length".into(),
            ));
        }
        let inode = self.file_mut(path)?;
        let end = offset + len;
        match mode {
            FallocMode::Allocate | FallocMode::ZeroRange => {
                // Extends both allocation and logical size.
                if (inode.data.len() as u64) < end {
                    inode.data.resize(end as usize, 0);
                }
                if mode == FallocMode::ZeroRange {
                    let upto = end.min(inode.data.len() as u64);
                    for byte in &mut inode.data[offset as usize..upto as usize] {
                        *byte = 0;
                    }
                }
                inode.allocated = inode.allocated.max(round_up_alloc(end));
            }
            FallocMode::KeepSize | FallocMode::ZeroRangeKeepSize => {
                // Allocation grows; logical size does not.
                if mode == FallocMode::ZeroRangeKeepSize {
                    let upto = end.min(inode.data.len() as u64);
                    if offset < upto {
                        for byte in &mut inode.data[offset as usize..upto as usize] {
                            *byte = 0;
                        }
                    }
                }
                inode.allocated = inode.allocated.max(round_up_alloc(end));
            }
            FallocMode::PunchHole => {
                // Zero the range within the file; allocation shrinks by the
                // punched-out whole blocks. Size never changes.
                let upto = end.min(inode.data.len() as u64);
                if offset < upto {
                    for byte in &mut inode.data[offset as usize..upto as usize] {
                        *byte = 0;
                    }
                }
                let punched = round_up_alloc(upto.saturating_sub(offset)).min(inode.allocated);
                inode.allocated = inode
                    .allocated
                    .saturating_sub(punched)
                    .max(round_up_alloc(inode.data.len() as u64).saturating_sub(punched));
            }
        }
        Ok(())
    }

    // --- xattrs -----------------------------------------------------------------------

    /// Sets an extended attribute.
    pub fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        let ino = self.resolve(path)?;
        self.inodes
            .get_mut(&ino)
            .expect("resolved")
            .xattrs
            .insert(name.to_string(), value.to_vec());
        Ok(())
    }

    /// Removes an extended attribute.
    pub fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        let ino = self.resolve(path)?;
        let inode = self.inodes.get_mut(&ino).expect("resolved");
        if inode.xattrs.remove(name).is_none() {
            return Err(FsError::NoXattr(name.to_string()));
        }
        Ok(())
    }

    /// Reads an extended attribute.
    pub fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        self.inodes[&ino]
            .xattrs
            .get(name)
            .cloned()
            .ok_or_else(|| FsError::NoXattr(name.to_string()))
    }

    // --- read side ----------------------------------------------------------------------

    /// Reads up to `len` bytes from `offset`.
    pub fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        let inode = &self.inodes[&ino];
        match inode.kind {
            FileType::Regular => {
                let size = inode.data.len() as u64;
                if offset >= size {
                    return Ok(Vec::new());
                }
                let end = (offset + len).min(size);
                Ok(inode.data[offset as usize..end as usize].to_vec())
            }
            FileType::Directory => Err(FsError::IsADirectory(path.to_string())),
            _ => Err(FsError::InvalidArgument(format!(
                "{path} is not a regular file"
            ))),
        }
    }

    /// Lists a directory's entry names (sorted).
    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let ino = self.resolve(path)?;
        let inode = &self.inodes[&ino];
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        Ok(inode.entries.keys().cloned().collect())
    }

    /// Metadata of a path.
    pub fn metadata(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        Ok(self.inodes[&ino].metadata())
    }

    /// Target of a symlink.
    pub fn readlink(&self, path: &str) -> FsResult<String> {
        let ino = self.resolve(path)?;
        let inode = &self.inodes[&ino];
        if inode.kind != FileType::Symlink {
            return Err(FsError::InvalidArgument(format!("{path} is not a symlink")));
        }
        Ok(inode.symlink_target.clone())
    }

    // --- serialization --------------------------------------------------------------------

    const MAGIC: u32 = 0x4d54_5245; // "MTRE"
    const VERSION: u32 = 1;

    /// Serializes the whole tree to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(Self::MAGIC);
        enc.put_u32(Self::VERSION);
        enc.put_u64(self.next_ino);
        enc.put_u64(self.inodes.len() as u64);
        for inode in self.inodes.values() {
            encode_inode(&mut enc, inode);
        }
        enc.finish()
    }

    /// Deserializes a tree previously produced by [`MemTree::encode`].
    pub fn decode(bytes: &[u8]) -> FsResult<MemTree> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != Self::MAGIC {
            return Err(FsError::Corrupted("bad tree magic".into()));
        }
        if dec.get_u32()? != Self::VERSION {
            return Err(FsError::Corrupted("unsupported tree version".into()));
        }
        let next_ino = dec.get_u64()?;
        let count = dec.get_u64()?;
        let mut inodes = BTreeMap::new();
        for _ in 0..count {
            let inode = decode_inode(&mut dec)?;
            inodes.insert(inode.ino, inode);
        }
        if !inodes.contains_key(&ROOT_INO) {
            return Err(FsError::Corrupted("serialized tree has no root".into()));
        }
        Ok(MemTree { inodes, next_ino })
    }
}

/// Serializes one inode (also used by the file systems' log/journal records).
pub fn encode_inode(enc: &mut Encoder, inode: &Inode) {
    enc.put_u64(inode.ino);
    enc.put_u8(match inode.kind {
        FileType::Regular => 0,
        FileType::Directory => 1,
        FileType::Symlink => 2,
        FileType::Fifo => 3,
    });
    enc.put_u32(inode.nlink);
    enc.put_u64(inode.allocated);
    enc.put_u64(inode.dir_size);
    enc.put_bytes(&inode.data);
    enc.put_str(&inode.symlink_target);
    enc.put_u64(inode.xattrs.len() as u64);
    for (name, value) in &inode.xattrs {
        enc.put_str(name);
        enc.put_bytes(value);
    }
    enc.put_u64(inode.entries.len() as u64);
    for (name, child) in &inode.entries {
        enc.put_str(name);
        enc.put_u64(*child);
    }
}

/// Deserializes one inode.
pub fn decode_inode(dec: &mut Decoder<'_>) -> FsResult<Inode> {
    let ino = dec.get_u64()?;
    let kind = match dec.get_u8()? {
        0 => FileType::Regular,
        1 => FileType::Directory,
        2 => FileType::Symlink,
        3 => FileType::Fifo,
        other => {
            return Err(FsError::Corrupted(format!("unknown inode kind {other}")));
        }
    };
    let nlink = dec.get_u32()?;
    let allocated = dec.get_u64()?;
    let dir_size = dec.get_u64()?;
    let data = dec.get_bytes()?;
    let symlink_target = dec.get_str()?;
    let num_xattrs = dec.get_u64()?;
    let mut xattrs = BTreeMap::new();
    for _ in 0..num_xattrs {
        let name = dec.get_str()?;
        let value = dec.get_bytes()?;
        xattrs.insert(name, value);
    }
    let num_entries = dec.get_u64()?;
    let mut entries = BTreeMap::new();
    for _ in 0..num_entries {
        let name = dec.get_str()?;
        let child = dec.get_u64()?;
        entries.insert(name, child);
    }
    Ok(Inode {
        ino,
        kind,
        nlink,
        data,
        allocated,
        dir_size,
        entries,
        symlink_target,
        xattrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_layout() -> MemTree {
        let mut tree = MemTree::new();
        tree.mkdir("A").unwrap();
        tree.mkdir("B").unwrap();
        tree.create_file("foo").unwrap();
        tree.create_file("A/foo").unwrap();
        tree
    }

    #[test]
    fn create_and_resolve() {
        let tree = tree_with_layout();
        assert!(tree.exists("A/foo"));
        assert!(tree.exists("B"));
        assert!(!tree.exists("B/foo"));
        assert_eq!(tree.metadata("A").unwrap().file_type, FileType::Directory);
        assert_eq!(tree.metadata("foo").unwrap().file_type, FileType::Regular);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut tree = tree_with_layout();
        assert!(matches!(
            tree.create_file("foo"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(tree.mkdir("A"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn missing_parent_fails() {
        let mut tree = MemTree::new();
        assert!(matches!(
            tree.create_file("missing/foo"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn write_read_round_trip_and_allocation() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, &[7u8; 5000]).unwrap();
        assert_eq!(tree.metadata("foo").unwrap().size, 5000);
        assert_eq!(tree.metadata("foo").unwrap().blocks, 16); // 8192 bytes allocated
        assert_eq!(tree.read("foo", 0, 5000).unwrap(), vec![7u8; 5000]);
        // Sparse write leaves a zero-filled gap.
        tree.write("foo", 10_000, &[9u8; 10]).unwrap();
        assert_eq!(tree.read("foo", 5000, 5000).unwrap(), vec![0u8; 5000]);
        assert_eq!(tree.read("foo", 10_000, 10).unwrap(), vec![9u8; 10]);
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, &[3u8; 8192]).unwrap();
        tree.truncate("foo", 100).unwrap();
        assert_eq!(tree.metadata("foo").unwrap().size, 100);
        tree.truncate("foo", 4096).unwrap();
        assert_eq!(tree.read("foo", 100, 10).unwrap(), vec![0u8; 10]);
    }

    #[test]
    fn fallocate_keep_size_grows_blocks_not_size() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, &[1u8; 16 * 1024]).unwrap();
        tree.fallocate("foo", FallocMode::KeepSize, 16 * 1024, 4096)
            .unwrap();
        let meta = tree.metadata("foo").unwrap();
        assert_eq!(meta.size, 16 * 1024);
        assert_eq!(meta.blocks, 40); // 20 KiB allocated
        tree.fallocate("foo", FallocMode::Allocate, 0, 32 * 1024)
            .unwrap();
        assert_eq!(tree.metadata("foo").unwrap().size, 32 * 1024);
    }

    #[test]
    fn punch_hole_zeroes_and_keeps_size() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, &[5u8; 16 * 1024]).unwrap();
        tree.fallocate("foo", FallocMode::PunchHole, 4096, 4096)
            .unwrap();
        let meta = tree.metadata("foo").unwrap();
        assert_eq!(meta.size, 16 * 1024);
        assert_eq!(tree.read("foo", 4096, 4096).unwrap(), vec![0u8; 4096]);
        assert_eq!(tree.read("foo", 8192, 10).unwrap(), vec![5u8; 10]);
    }

    #[test]
    fn link_unlink_nlink_accounting() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, b"data").unwrap();
        tree.link("foo", "bar").unwrap();
        assert_eq!(tree.metadata("foo").unwrap().nlink, 2);
        assert_eq!(tree.read("bar", 0, 4).unwrap(), b"data");
        tree.unlink("foo").unwrap();
        assert!(!tree.exists("foo"));
        assert_eq!(tree.metadata("bar").unwrap().nlink, 1);
        assert_eq!(tree.read("bar", 0, 4).unwrap(), b"data");
        tree.unlink("bar").unwrap();
        assert!(!tree.exists("bar"));
    }

    #[test]
    fn link_to_directory_fails() {
        let mut tree = tree_with_layout();
        assert!(matches!(tree.link("A", "C"), Err(FsError::IsADirectory(_))));
    }

    #[test]
    fn rmdir_semantics() {
        let mut tree = tree_with_layout();
        assert!(matches!(
            tree.rmdir("A"),
            Err(FsError::DirectoryNotEmpty(_))
        ));
        tree.unlink("A/foo").unwrap();
        tree.rmdir("A").unwrap();
        assert!(!tree.exists("A"));
        assert!(matches!(tree.rmdir("foo"), Err(FsError::NotADirectory(_))));
        assert!(matches!(tree.rmdir("/"), Err(FsError::InvalidArgument(_))));
    }

    #[test]
    fn rmdir_with_stale_dir_size_fails() {
        let mut tree = tree_with_layout();
        tree.unlink("A/foo").unwrap();
        let ino = tree.resolve("A").unwrap();
        tree.inode_mut(ino).unwrap().dir_size = DIRENT_SIZE;
        let err = tree.rmdir("A").unwrap_err();
        assert!(matches!(err, FsError::DirectoryNotEmpty(_)));
    }

    #[test]
    fn directory_nlink_counts_subdirectories() {
        let mut tree = MemTree::new();
        tree.mkdir("A").unwrap();
        tree.mkdir("A/B").unwrap();
        tree.mkdir("A/C").unwrap();
        assert_eq!(tree.metadata("A").unwrap().nlink, 4);
        tree.rmdir("A/C").unwrap();
        assert_eq!(tree.metadata("A").unwrap().nlink, 3);
    }

    #[test]
    fn rename_file_replaces_target() {
        let mut tree = tree_with_layout();
        tree.write("foo", 0, b"source").unwrap();
        tree.create_file("B/bar").unwrap();
        tree.write("B/bar", 0, b"target").unwrap();
        tree.rename("foo", "B/bar").unwrap();
        assert!(!tree.exists("foo"));
        assert_eq!(tree.read("B/bar", 0, 6).unwrap(), b"source");
    }

    #[test]
    fn rename_directory_moves_subtree_and_links() {
        let mut tree = MemTree::new();
        tree.mkdir("A").unwrap();
        tree.mkdir("A/B").unwrap();
        tree.create_file("A/B/foo").unwrap();
        tree.mkdir("C").unwrap();
        tree.rename("A/B", "C/B").unwrap();
        assert!(tree.exists("C/B/foo"));
        assert!(!tree.exists("A/B"));
        assert_eq!(tree.metadata("A").unwrap().nlink, 2);
        assert_eq!(tree.metadata("C").unwrap().nlink, 3);
    }

    #[test]
    fn rename_into_own_subtree_fails() {
        let mut tree = MemTree::new();
        tree.mkdir("A").unwrap();
        tree.mkdir("A/B").unwrap();
        assert!(matches!(
            tree.rename("A", "A/B/A"),
            Err(FsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn rename_onto_nonempty_directory_fails() {
        let mut tree = MemTree::new();
        tree.mkdir("A").unwrap();
        tree.mkdir("B").unwrap();
        tree.create_file("B/x").unwrap();
        assert!(matches!(
            tree.rename("A", "B"),
            Err(FsError::DirectoryNotEmpty(_))
        ));
        tree.unlink("B/x").unwrap();
        tree.rename("A", "B").unwrap();
        assert!(tree.exists("B"));
        assert!(!tree.exists("A"));
    }

    #[test]
    fn symlink_and_readlink() {
        let mut tree = tree_with_layout();
        tree.symlink("foo", "A/bar").unwrap();
        assert_eq!(tree.readlink("A/bar").unwrap(), "foo");
        assert_eq!(tree.metadata("A/bar").unwrap().file_type, FileType::Symlink);
        assert!(matches!(
            tree.readlink("foo"),
            Err(FsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn xattr_round_trip() {
        let mut tree = tree_with_layout();
        tree.setxattr("foo", "user.one", b"1").unwrap();
        tree.setxattr("foo", "user.two", b"2").unwrap();
        assert_eq!(tree.getxattr("foo", "user.one").unwrap(), b"1");
        tree.removexattr("foo", "user.one").unwrap();
        assert!(matches!(
            tree.getxattr("foo", "user.one"),
            Err(FsError::NoXattr(_))
        ));
        assert!(matches!(
            tree.removexattr("foo", "user.absent"),
            Err(FsError::NoXattr(_))
        ));
    }

    #[test]
    fn paths_of_ino_reports_all_hard_links() {
        let mut tree = tree_with_layout();
        tree.link("foo", "A/link1").unwrap();
        tree.link("foo", "B/link2").unwrap();
        let ino = tree.resolve("foo").unwrap();
        assert_eq!(tree.paths_of_ino(ino), vec!["A/link1", "B/link2", "foo"]);
    }

    #[test]
    fn readdir_is_sorted() {
        let mut tree = MemTree::new();
        tree.create_file("zeta").unwrap();
        tree.create_file("alpha").unwrap();
        tree.mkdir("middle").unwrap();
        assert_eq!(tree.readdir("").unwrap(), vec!["alpha", "middle", "zeta"]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut tree = tree_with_layout();
        tree.write("A/foo", 0, &[0xabu8; 6000]).unwrap();
        tree.setxattr("A/foo", "user.k", b"v").unwrap();
        tree.symlink("A/foo", "B/ln").unwrap();
        tree.link("foo", "B/hard").unwrap();
        let bytes = tree.encode();
        let decoded = MemTree::decode(&bytes).unwrap();
        assert_eq!(decoded, tree);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MemTree::decode(&[0u8; 16]).is_err());
        assert!(MemTree::decode(b"short").is_err());
    }

    #[test]
    fn inode_allocator_collision_is_detected() {
        let mut tree = MemTree::new();
        tree.create_file("a").unwrap();
        // Simulate a recovery bug resetting the allocator cursor.
        tree.set_next_ino(2);
        let err = tree.create_file("b").unwrap_err();
        assert!(matches!(err, FsError::Corrupted(_)));
    }
}
