//! A tiny hand-rolled binary codec.
//!
//! The simulated file systems serialize their on-disk structures (committed
//! trees, fsync logs, journal records, checkpoints) with this codec rather
//! than pulling in a serialization framework; the format is
//! length-prefixed, little-endian, and versioned by each caller.

use crate::error::{FsError, FsResult};

/// An append-only byte buffer writer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length of the encoded output.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_u64(value.len() as u64);
        self.buf.extend_from_slice(value);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }
}

/// A cursor-based reader over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> FsResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(FsError::Corrupted(format!(
                "truncated structure: needed {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> FsResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> FsResult<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> FsResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> FsResult<Vec<u8>> {
        let len = self.get_u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> FsResult<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes)
            .map_err(|_| FsError::Corrupted("invalid UTF-8 in serialized string".to_string()))
    }

    /// Reads a boolean.
    pub fn get_bool(&mut self) -> FsResult<bool> {
        Ok(self.get_u8()? != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX - 1);
        enc.put_str("A/foo");
        enc.put_bytes(&[1, 2, 3]);
        enc.put_bool(true);
        enc.put_bool(false);
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.get_str().unwrap(), "A/foo");
        assert_eq!(dec.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut enc = Encoder::new();
        enc.put_u64(99);
        let mut bytes = enc.finish();
        bytes.truncate(3);
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_u64(), Err(FsError::Corrupted(_))));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_str(), Err(FsError::Corrupted(_))));
    }
}
