//! Logical snapshots of a file system and the differences between them.
//!
//! CrashMonkey's *oracle* is "a reference file-system image … captured by
//! safely unmounting it so the file system completes any pending operations"
//! (§5.1). In this reproduction an oracle is a [`LogicalSnapshot`]: the
//! complete logical state (names, types, sizes, link counts, block counts,
//! data, xattrs) of the file system at a persistence point. The AutoChecker
//! compares an oracle against the recovered crash state using
//! [`LogicalSnapshot::diff_path`] and reports any [`SnapshotDiff`]s for
//! explicitly-persisted files.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{FsError, FsResult};
use crate::fs::FileSystem;
use crate::metadata::FileType;
use crate::path::join;

/// The captured state of a single file, directory, symlink, or fifo.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EntrySnapshot {
    /// Entry type.
    pub file_type: FileType,
    /// Logical size in bytes.
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// Allocated 512-byte sectors.
    pub blocks: u64,
    /// File contents (regular files only).
    pub data: Option<Vec<u8>>,
    /// Symlink target (symlinks only).
    pub symlink_target: Option<String>,
    /// Sorted child names (directories only).
    pub children: Option<Vec<String>>,
    /// Extended attributes.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

/// A full logical capture of a file system.
///
/// Entries are reference-counted so snapshots can be cloned per checkpoint
/// in O(entries) pointer bumps, with unchanged entries structurally shared
/// between adjacent checkpoints — the representation behind the profiler's
/// incremental oracle maintenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalSnapshot {
    entries: BTreeMap<String, Arc<EntrySnapshot>>,
}

impl LogicalSnapshot {
    /// Captures the complete state of `fs` by walking it from the root.
    pub fn capture(fs: &dyn FileSystem) -> FsResult<LogicalSnapshot> {
        let mut snapshot = LogicalSnapshot::default();
        snapshot.walk(fs, "")?;
        Ok(snapshot)
    }

    /// Captures only the given paths (plus the root directory), without
    /// recursing into directories or reading any other file's data.
    ///
    /// This is the crash-state capture the AutoChecker uses: it only ever
    /// compares explicitly persisted paths, so reading every file in the
    /// recovered image per crash state is wasted work. Paths that do not
    /// exist are simply absent from the result; any error other than
    /// `NotFound` (an unreadable recovered file system) is propagated.
    pub fn capture_paths<'p>(
        fs: &dyn FileSystem,
        paths: impl IntoIterator<Item = &'p str>,
    ) -> FsResult<LogicalSnapshot> {
        let mut snapshot = LogicalSnapshot::default();
        snapshot.refresh_entry(fs, "")?;
        for path in paths {
            snapshot.refresh_entry(fs, path)?;
        }
        Ok(snapshot)
    }

    /// Captures the state of a single path without recursing into
    /// directories. Returns `Ok(None)` when the path does not exist.
    pub fn capture_entry(fs: &dyn FileSystem, path: &str) -> FsResult<Option<EntrySnapshot>> {
        let meta = match fs.metadata(path) {
            Ok(meta) => meta,
            Err(FsError::NotFound(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut entry = EntrySnapshot {
            file_type: meta.file_type,
            size: meta.size,
            nlink: meta.nlink,
            blocks: meta.blocks,
            data: None,
            symlink_target: None,
            children: None,
            xattrs: meta.xattrs.clone(),
        };
        match meta.file_type {
            FileType::Regular => entry.data = Some(fs.read(path, 0, meta.size)?),
            FileType::Symlink => entry.symlink_target = Some(fs.readlink(path)?),
            FileType::Directory => {
                let mut names = fs.readdir(path)?;
                names.sort();
                entry.children = Some(names);
            }
            FileType::Fifo => {}
        }
        Ok(Some(entry))
    }

    /// Re-captures a single path: replaces the stored entry with the file
    /// system's current state, or removes it when the path no longer exists.
    /// Directories are refreshed shallowly (metadata and child names only).
    pub fn refresh_entry(&mut self, fs: &dyn FileSystem, path: &str) -> FsResult<()> {
        let path = crate::path::normalize(path);
        match Self::capture_entry(fs, &path)? {
            Some(entry) => {
                self.entries.insert(path, Arc::new(entry));
            }
            None => {
                self.entries.remove(&path);
            }
        }
        Ok(())
    }

    /// Re-captures a whole subtree: removes every stored entry at or below
    /// `path`, then re-walks the subtree if it still exists. Used when a
    /// rename moves a subtree so stale descendant paths do not linger.
    pub fn refresh_subtree(&mut self, fs: &dyn FileSystem, path: &str) -> FsResult<()> {
        let path = crate::path::normalize(path);
        self.entries
            .retain(|p, _| p != &path && !crate::path::is_ancestor(&path, p));
        match fs.metadata(&path) {
            Ok(_) => self.walk(fs, &path),
            Err(FsError::NotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Inserts or replaces an entry verbatim (test and tooling use).
    pub fn insert(&mut self, path: impl Into<String>, entry: EntrySnapshot) {
        self.entries
            .insert(crate::path::normalize(&path.into()), Arc::new(entry));
    }

    fn walk(&mut self, fs: &dyn FileSystem, path: &str) -> FsResult<()> {
        let meta = fs.metadata(path)?;
        let mut entry = EntrySnapshot {
            file_type: meta.file_type,
            size: meta.size,
            nlink: meta.nlink,
            blocks: meta.blocks,
            data: None,
            symlink_target: None,
            children: None,
            xattrs: meta.xattrs.clone(),
        };
        match meta.file_type {
            FileType::Regular => {
                entry.data = Some(fs.read(path, 0, meta.size)?);
            }
            FileType::Symlink => {
                entry.symlink_target = Some(fs.readlink(path)?);
            }
            FileType::Directory => {
                let mut names = fs.readdir(path)?;
                names.sort();
                entry.children = Some(names.clone());
                self.entries.insert(path.to_string(), Arc::new(entry));
                for name in names {
                    match self.walk(fs, &join(path, &name)) {
                        Ok(()) => {}
                        // Dangling directory entries (left behind by buggy
                        // log replay) are treated as absent files.
                        Err(FsError::NotFound(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                return Ok(());
            }
            FileType::Fifo => {}
        }
        self.entries.insert(path.to_string(), Arc::new(entry));
        Ok(())
    }

    /// Number of captured entries (including the root directory).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot contains no entries (never the case for a
    /// successfully captured file system, which always has a root).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one entry by normalized path.
    pub fn get(&self, path: &str) -> Option<&EntrySnapshot> {
        self.entries
            .get(&crate::path::normalize(path))
            .map(Arc::as_ref)
    }

    /// Looks up one entry as a shared handle (zero-copy: the profiler's
    /// persisted-set expectations alias oracle entries this way).
    pub fn get_shared(&self, path: &str) -> Option<Arc<EntrySnapshot>> {
        self.entries.get(&crate::path::normalize(path)).cloned()
    }

    /// Returns true if a path exists in the snapshot.
    pub fn contains(&self, path: &str) -> bool {
        self.get(path).is_some()
    }

    /// Iterates over `(path, entry)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &EntrySnapshot)> {
        self.entries
            .iter()
            .map(|(path, entry)| (path, entry.as_ref()))
    }

    /// Iterates over `(path, shared entry)` pairs in path order.
    pub fn iter_shared(&self) -> impl Iterator<Item = (&String, &Arc<EntrySnapshot>)> {
        self.entries.iter()
    }

    /// All captured paths.
    pub fn paths(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Replaces the entry at `path` (if any) with the interner's canonical
    /// `Arc` for its content, deduplicating storage across snapshots.
    pub fn intern_entry(&mut self, path: &str, interner: &EntryInterner) {
        if let Some(entry) = self.entries.get_mut(&crate::path::normalize(path)) {
            *entry = interner.intern(entry.clone());
        }
    }

    /// Interns every entry of the snapshot. Content equality is preserved —
    /// only the `Arc` identities change.
    pub fn intern_all(&mut self, interner: &EntryInterner) {
        for entry in self.entries.values_mut() {
            *entry = interner.intern(entry.clone());
        }
    }

    /// Compares a single path between `self` (the oracle) and `other` (the
    /// recovered crash state), returning every observed difference.
    pub fn diff_path(&self, other: &LogicalSnapshot, path: &str) -> Vec<SnapshotDiff> {
        let path = crate::path::normalize(path);
        let mut diffs = Vec::new();
        match (self.entries.get(&path), other.entries.get(&path)) {
            (None, None) => {}
            (Some(_), None) => diffs.push(SnapshotDiff::Missing { path }),
            (None, Some(_)) => diffs.push(SnapshotDiff::Unexpected { path }),
            (Some(expected), Some(actual)) => {
                diff_entry(&path, expected, actual, &mut diffs);
            }
        }
        diffs
    }

    /// Compares every path present in either snapshot.
    pub fn diff_all(&self, other: &LogicalSnapshot) -> Vec<SnapshotDiff> {
        let mut paths: Vec<&String> = self.entries.keys().collect();
        for path in other.entries.keys() {
            if !self.entries.contains_key(path) {
                paths.push(path);
            }
        }
        paths
            .into_iter()
            .flat_map(|p| self.diff_path(other, p))
            .collect()
    }
}

/// A bounded, thread-safe content-addressed pool of [`EntrySnapshot`]s.
///
/// The profiler's incremental oracles already share unchanged entries
/// *within* one workload via `Arc`; across workloads each profile re-captures
/// near-identical entries (adjacent generated workloads touch the same small
/// file set). The interner extends the sharing across workloads: callers
/// exchange a freshly captured `Arc<EntrySnapshot>` for the canonical `Arc`
/// of any content-equal entry seen before, so a sweep's resident oracle data
/// collapses to one copy per distinct entry content.
///
/// Entries are keyed by content hash with full-equality verification on
/// collision, so interning never changes observable values — only `Arc`
/// identities. The pool's approximate retained size is bounded; exceeding
/// the bound clears the pool (already-handed-out `Arc`s stay alive with
/// their owners) rather than evicting piecemeal.
#[derive(Debug)]
pub struct EntryInterner {
    max_bytes: usize,
    inner: std::sync::Mutex<InternerPool>,
}

#[derive(Debug, Default)]
struct InternerPool {
    entries: std::collections::HashMap<u64, Vec<Arc<EntrySnapshot>>>,
    approx_bytes: usize,
}

impl EntryInterner {
    /// Default retained-size bound: 32 MiB of approximate entry content.
    pub const DEFAULT_MAX_BYTES: usize = 32 << 20;

    /// An interner with the [default](Self::DEFAULT_MAX_BYTES) size bound.
    pub fn new() -> Self {
        Self::with_max_bytes(Self::DEFAULT_MAX_BYTES)
    }

    /// An interner that clears itself when its approximate retained size
    /// exceeds `max_bytes`.
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        EntryInterner {
            max_bytes,
            inner: std::sync::Mutex::new(InternerPool::default()),
        }
    }

    /// Returns the canonical `Arc` for `entry`'s content: the previously
    /// interned content-equal entry if one exists, otherwise `entry` itself
    /// (which becomes canonical).
    pub fn intern(&self, entry: Arc<EntrySnapshot>) -> Arc<EntrySnapshot> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        entry.hash(&mut hasher);
        let key = hasher.finish();

        let mut pool = self.inner.lock().unwrap();
        let candidates = pool.entries.entry(key).or_default();
        for candidate in candidates.iter() {
            if **candidate == *entry {
                return Arc::clone(candidate);
            }
        }
        candidates.push(Arc::clone(&entry));
        pool.approx_bytes += approx_entry_bytes(&entry);
        if pool.approx_bytes > self.max_bytes {
            pool.entries.clear();
            pool.approx_bytes = 0;
        }
        entry
    }

    /// Number of distinct entry contents currently pooled.
    pub fn len(&self) -> usize {
        let pool = self.inner.lock().unwrap();
        pool.entries.values().map(Vec::len).sum()
    }

    /// True when the pool holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of entry content currently retained.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().unwrap().approx_bytes
    }
}

impl Default for EntryInterner {
    fn default() -> Self {
        Self::new()
    }
}

/// Approximate heap footprint of one entry's content (used only for the
/// interner's size bound, so constants need not be exact).
fn approx_entry_bytes(entry: &EntrySnapshot) -> usize {
    let mut bytes = std::mem::size_of::<EntrySnapshot>();
    bytes += entry.data.as_ref().map_or(0, Vec::len);
    bytes += entry.symlink_target.as_ref().map_or(0, String::len);
    bytes += entry
        .children
        .as_ref()
        .map_or(0, |c| c.iter().map(|n| n.len() + 24).sum());
    bytes += entry
        .xattrs
        .iter()
        .map(|(k, v)| k.len() + v.len() + 48)
        .sum::<usize>();
    bytes
}

fn diff_entry(
    path: &str,
    expected: &EntrySnapshot,
    actual: &EntrySnapshot,
    diffs: &mut Vec<SnapshotDiff>,
) {
    if expected.file_type != actual.file_type {
        diffs.push(SnapshotDiff::TypeMismatch {
            path: path.to_string(),
            expected: expected.file_type,
            actual: actual.file_type,
        });
        return;
    }
    if expected.size != actual.size {
        diffs.push(SnapshotDiff::SizeMismatch {
            path: path.to_string(),
            expected: expected.size,
            actual: actual.size,
        });
    }
    if expected.nlink != actual.nlink {
        diffs.push(SnapshotDiff::NlinkMismatch {
            path: path.to_string(),
            expected: expected.nlink,
            actual: actual.nlink,
        });
    }
    if expected.blocks != actual.blocks {
        diffs.push(SnapshotDiff::BlocksMismatch {
            path: path.to_string(),
            expected: expected.blocks,
            actual: actual.blocks,
        });
    }
    if expected.data != actual.data {
        let first_diff = match (&expected.data, &actual.data) {
            (Some(e), Some(a)) => e
                .iter()
                .zip(a.iter())
                .position(|(x, y)| x != y)
                .map(|i| i as u64)
                .or(Some(e.len().min(a.len()) as u64)),
            _ => None,
        };
        diffs.push(SnapshotDiff::DataMismatch {
            path: path.to_string(),
            first_difference: first_diff,
        });
    }
    if expected.symlink_target != actual.symlink_target {
        diffs.push(SnapshotDiff::SymlinkMismatch {
            path: path.to_string(),
            expected: expected.symlink_target.clone(),
            actual: actual.symlink_target.clone(),
        });
    }
    if expected.xattrs != actual.xattrs {
        diffs.push(SnapshotDiff::XattrMismatch {
            path: path.to_string(),
            expected: expected.xattrs.keys().cloned().collect(),
            actual: actual.xattrs.keys().cloned().collect(),
        });
    }
}

/// A single difference between an oracle and a recovered crash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDiff {
    /// The path exists in the oracle but not in the crash state.
    Missing { path: String },
    /// The path exists in the crash state but not in the oracle.
    Unexpected { path: String },
    /// The entry type changed.
    TypeMismatch {
        path: String,
        expected: FileType,
        actual: FileType,
    },
    /// `st_size` differs.
    SizeMismatch {
        path: String,
        expected: u64,
        actual: u64,
    },
    /// `st_nlink` differs.
    NlinkMismatch {
        path: String,
        expected: u32,
        actual: u32,
    },
    /// `st_blocks` differs.
    BlocksMismatch {
        path: String,
        expected: u64,
        actual: u64,
    },
    /// File contents differ.
    DataMismatch {
        path: String,
        /// Offset of the first differing byte, when both sides have data.
        first_difference: Option<u64>,
    },
    /// Symlink target differs.
    SymlinkMismatch {
        path: String,
        expected: Option<String>,
        actual: Option<String>,
    },
    /// Extended-attribute sets differ.
    XattrMismatch {
        path: String,
        expected: Vec<String>,
        actual: Vec<String>,
    },
}

impl SnapshotDiff {
    /// The path the difference is about.
    pub fn path(&self) -> &str {
        match self {
            SnapshotDiff::Missing { path }
            | SnapshotDiff::Unexpected { path }
            | SnapshotDiff::TypeMismatch { path, .. }
            | SnapshotDiff::SizeMismatch { path, .. }
            | SnapshotDiff::NlinkMismatch { path, .. }
            | SnapshotDiff::BlocksMismatch { path, .. }
            | SnapshotDiff::DataMismatch { path, .. }
            | SnapshotDiff::SymlinkMismatch { path, .. }
            | SnapshotDiff::XattrMismatch { path, .. } => path,
        }
    }

    /// Serializes the difference with the workspace codec (used by sweep
    /// checkpoints to persist bug reports across runs).
    pub fn encode(&self, enc: &mut crate::codec::Encoder) {
        fn put_file_type(enc: &mut crate::codec::Encoder, t: FileType) {
            enc.put_u8(match t {
                FileType::Regular => 0,
                FileType::Directory => 1,
                FileType::Symlink => 2,
                FileType::Fifo => 3,
            });
        }
        fn put_opt_str(enc: &mut crate::codec::Encoder, s: &Option<String>) {
            enc.put_bool(s.is_some());
            if let Some(s) = s {
                enc.put_str(s);
            }
        }
        match self {
            SnapshotDiff::Missing { path } => {
                enc.put_u8(0);
                enc.put_str(path);
            }
            SnapshotDiff::Unexpected { path } => {
                enc.put_u8(1);
                enc.put_str(path);
            }
            SnapshotDiff::TypeMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(2);
                enc.put_str(path);
                put_file_type(enc, *expected);
                put_file_type(enc, *actual);
            }
            SnapshotDiff::SizeMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(3);
                enc.put_str(path);
                enc.put_u64(*expected);
                enc.put_u64(*actual);
            }
            SnapshotDiff::NlinkMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(4);
                enc.put_str(path);
                enc.put_u32(*expected);
                enc.put_u32(*actual);
            }
            SnapshotDiff::BlocksMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(5);
                enc.put_str(path);
                enc.put_u64(*expected);
                enc.put_u64(*actual);
            }
            SnapshotDiff::DataMismatch {
                path,
                first_difference,
            } => {
                enc.put_u8(6);
                enc.put_str(path);
                enc.put_bool(first_difference.is_some());
                enc.put_u64(first_difference.unwrap_or(0));
            }
            SnapshotDiff::SymlinkMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(7);
                enc.put_str(path);
                put_opt_str(enc, expected);
                put_opt_str(enc, actual);
            }
            SnapshotDiff::XattrMismatch {
                path,
                expected,
                actual,
            } => {
                enc.put_u8(8);
                enc.put_str(path);
                enc.put_u64(expected.len() as u64);
                for name in expected {
                    enc.put_str(name);
                }
                enc.put_u64(actual.len() as u64);
                for name in actual {
                    enc.put_str(name);
                }
            }
        }
    }

    /// Deserializes a difference produced by [`SnapshotDiff::encode`].
    pub fn decode(dec: &mut crate::codec::Decoder<'_>) -> FsResult<SnapshotDiff> {
        fn get_file_type(dec: &mut crate::codec::Decoder<'_>) -> FsResult<FileType> {
            Ok(match dec.get_u8()? {
                0 => FileType::Regular,
                1 => FileType::Directory,
                2 => FileType::Symlink,
                3 => FileType::Fifo,
                other => {
                    return Err(FsError::Corrupted(format!(
                        "unknown file type code {other}"
                    )))
                }
            })
        }
        fn get_opt_str(dec: &mut crate::codec::Decoder<'_>) -> FsResult<Option<String>> {
            Ok(if dec.get_bool()? {
                Some(dec.get_str()?)
            } else {
                None
            })
        }
        fn get_strings(dec: &mut crate::codec::Decoder<'_>) -> FsResult<Vec<String>> {
            let count = dec.get_u64()? as usize;
            let mut out = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                out.push(dec.get_str()?);
            }
            Ok(out)
        }
        let tag = dec.get_u8()?;
        let path = dec.get_str()?;
        Ok(match tag {
            0 => SnapshotDiff::Missing { path },
            1 => SnapshotDiff::Unexpected { path },
            2 => SnapshotDiff::TypeMismatch {
                path,
                expected: get_file_type(dec)?,
                actual: get_file_type(dec)?,
            },
            3 => SnapshotDiff::SizeMismatch {
                path,
                expected: dec.get_u64()?,
                actual: dec.get_u64()?,
            },
            4 => SnapshotDiff::NlinkMismatch {
                path,
                expected: dec.get_u32()?,
                actual: dec.get_u32()?,
            },
            5 => SnapshotDiff::BlocksMismatch {
                path,
                expected: dec.get_u64()?,
                actual: dec.get_u64()?,
            },
            6 => {
                let has = dec.get_bool()?;
                let offset = dec.get_u64()?;
                SnapshotDiff::DataMismatch {
                    path,
                    first_difference: has.then_some(offset),
                }
            }
            7 => SnapshotDiff::SymlinkMismatch {
                path,
                expected: get_opt_str(dec)?,
                actual: get_opt_str(dec)?,
            },
            8 => SnapshotDiff::XattrMismatch {
                path,
                expected: get_strings(dec)?,
                actual: get_strings(dec)?,
            },
            other => {
                return Err(FsError::Corrupted(format!(
                    "unknown snapshot diff tag {other}"
                )))
            }
        })
    }

    /// Short tag used when grouping bug reports.
    pub fn tag(&self) -> &'static str {
        match self {
            SnapshotDiff::Missing { .. } => "missing",
            SnapshotDiff::Unexpected { .. } => "unexpected",
            SnapshotDiff::TypeMismatch { .. } => "type",
            SnapshotDiff::SizeMismatch { .. } => "size",
            SnapshotDiff::NlinkMismatch { .. } => "nlink",
            SnapshotDiff::BlocksMismatch { .. } => "blocks",
            SnapshotDiff::DataMismatch { .. } => "data",
            SnapshotDiff::SymlinkMismatch { .. } => "symlink",
            SnapshotDiff::XattrMismatch { .. } => "xattr",
        }
    }
}

impl std::fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDiff::Missing { path } => write!(f, "{path}: missing after recovery"),
            SnapshotDiff::Unexpected { path } => {
                write!(f, "{path}: present after recovery but absent in oracle")
            }
            SnapshotDiff::TypeMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{path}: type {} expected, found {}",
                expected.as_str(),
                actual.as_str()
            ),
            SnapshotDiff::SizeMismatch {
                path,
                expected,
                actual,
            } => {
                write!(f, "{path}: size {expected} expected, found {actual}")
            }
            SnapshotDiff::NlinkMismatch {
                path,
                expected,
                actual,
            } => {
                write!(f, "{path}: nlink {expected} expected, found {actual}")
            }
            SnapshotDiff::BlocksMismatch {
                path,
                expected,
                actual,
            } => {
                write!(f, "{path}: {expected} sectors expected, found {actual}")
            }
            SnapshotDiff::DataMismatch {
                path,
                first_difference,
            } => match first_difference {
                Some(offset) => write!(f, "{path}: data differs at offset {offset}"),
                None => write!(f, "{path}: data differs"),
            },
            SnapshotDiff::SymlinkMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{path}: symlink target {expected:?} expected, found {actual:?}"
            ),
            SnapshotDiff::XattrMismatch {
                path,
                expected,
                actual,
            } => write!(f, "{path}: xattrs {expected:?} expected, found {actual:?}"),
        }
    }
}

/// Helper used by the file-system test suites: asserts two live file systems
/// have identical logical contents.
pub fn assert_logically_equal(a: &dyn FileSystem, b: &dyn FileSystem) -> FsResult<()> {
    let snap_a = LogicalSnapshot::capture(a)?;
    let snap_b = LogicalSnapshot::capture(b)?;
    let diffs = snap_a.diff_all(&snap_b);
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(FsError::Corrupted(format!(
            "file systems differ: {}",
            diffs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(file_type: FileType, size: u64) -> EntrySnapshot {
        EntrySnapshot {
            file_type,
            size,
            nlink: 1,
            blocks: size.div_ceil(512),
            data: if file_type == FileType::Regular {
                Some(vec![7u8; size as usize])
            } else {
                None
            },
            symlink_target: None,
            children: None,
            xattrs: BTreeMap::new(),
        }
    }

    fn snapshot_with(entries: Vec<(&str, EntrySnapshot)>) -> LogicalSnapshot {
        let mut snapshot = LogicalSnapshot::default();
        for (path, e) in entries {
            snapshot.entries.insert(path.to_string(), Arc::new(e));
        }
        snapshot
    }

    #[test]
    fn interner_deduplicates_content_equal_entries() {
        let interner = EntryInterner::new();
        let a = Arc::new(entry(FileType::Regular, 64));
        let b = Arc::new(entry(FileType::Regular, 64));
        assert!(!Arc::ptr_eq(&a, &b));
        let ia = interner.intern(a.clone());
        let ib = interner.intern(b);
        assert!(Arc::ptr_eq(&ia, &ib), "content-equal entries share one Arc");
        assert!(Arc::ptr_eq(&ia, &a), "first occurrence becomes canonical");
        assert_eq!(interner.len(), 1);

        let other = interner.intern(Arc::new(entry(FileType::Regular, 65)));
        assert!(!Arc::ptr_eq(&ia, &other));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_clears_when_over_budget() {
        let interner = EntryInterner::with_max_bytes(1024);
        for size in 0..64 {
            interner.intern(Arc::new(entry(FileType::Regular, size)));
        }
        // The bound is approximate, but the pool must stay near it instead
        // of growing without limit.
        assert!(interner.approx_bytes() <= 1024 + 4096);
        // Interning still works after a clear: this first call may itself
        // trip the bound, but the next two land in a near-empty pool and
        // must share one Arc.
        interner.intern(Arc::new(entry(FileType::Regular, 3)));
        let canonical = interner.intern(Arc::new(entry(FileType::Regular, 3)));
        assert!(Arc::ptr_eq(
            &canonical,
            &interner.intern(Arc::new(entry(FileType::Regular, 3)))
        ));
    }

    #[test]
    fn snapshot_intern_all_preserves_equality() {
        let interner = EntryInterner::new();
        let mut a = snapshot_with(vec![
            ("foo", entry(FileType::Regular, 10)),
            ("bar", entry(FileType::Regular, 10)),
        ]);
        let before = a.clone();
        a.intern_all(&interner);
        assert_eq!(a, before);
        // "foo" and "bar" have identical content, so they now share one Arc.
        let foo = a.get_shared("foo").unwrap();
        let bar = a.get_shared("bar").unwrap();
        assert!(Arc::ptr_eq(&foo, &bar));

        let mut b = snapshot_with(vec![("baz", entry(FileType::Regular, 10))]);
        b.intern_entry("baz", &interner);
        b.intern_entry("missing", &interner);
        assert!(Arc::ptr_eq(&foo, &b.get_shared("baz").unwrap()));
    }

    #[test]
    fn diff_reports_missing_and_unexpected() {
        let oracle = snapshot_with(vec![("foo", entry(FileType::Regular, 10))]);
        let crash = snapshot_with(vec![("bar", entry(FileType::Regular, 10))]);
        let diffs = oracle.diff_all(&crash);
        assert_eq!(diffs.len(), 2);
        assert!(diffs
            .iter()
            .any(|d| matches!(d, SnapshotDiff::Missing { path } if path == "foo")));
        assert!(diffs
            .iter()
            .any(|d| matches!(d, SnapshotDiff::Unexpected { path } if path == "bar")));
    }

    #[test]
    fn diff_reports_size_and_data() {
        let oracle = snapshot_with(vec![("foo", entry(FileType::Regular, 4096))]);
        let mut small = entry(FileType::Regular, 2048);
        small.data = Some(vec![9u8; 2048]);
        let crash = snapshot_with(vec![("foo", small)]);
        let diffs = oracle.diff_path(&crash, "foo");
        assert!(diffs.iter().any(|d| d.tag() == "size"));
        assert!(diffs.iter().any(|d| d.tag() == "blocks"));
        assert!(diffs.iter().any(|d| d.tag() == "data"));
    }

    #[test]
    fn type_mismatch_short_circuits() {
        let oracle = snapshot_with(vec![("foo", entry(FileType::Regular, 4096))]);
        let crash = snapshot_with(vec![("foo", entry(FileType::Directory, 0))]);
        let diffs = oracle.diff_path(&crash, "foo");
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].tag(), "type");
    }

    #[test]
    fn identical_snapshots_have_no_diffs() {
        let a = snapshot_with(vec![
            ("", entry(FileType::Directory, 0)),
            ("foo", entry(FileType::Regular, 512)),
        ]);
        assert!(a.diff_all(&a.clone()).is_empty());
    }

    #[test]
    fn diff_codec_round_trips_every_variant() {
        let diffs = vec![
            SnapshotDiff::Missing { path: "a".into() },
            SnapshotDiff::Unexpected { path: "b".into() },
            SnapshotDiff::TypeMismatch {
                path: "c".into(),
                expected: FileType::Regular,
                actual: FileType::Directory,
            },
            SnapshotDiff::SizeMismatch {
                path: "d".into(),
                expected: 4096,
                actual: 0,
            },
            SnapshotDiff::NlinkMismatch {
                path: "e".into(),
                expected: 2,
                actual: 1,
            },
            SnapshotDiff::BlocksMismatch {
                path: "f".into(),
                expected: 32,
                actual: 8,
            },
            SnapshotDiff::DataMismatch {
                path: "g".into(),
                first_difference: Some(17),
            },
            SnapshotDiff::DataMismatch {
                path: "h".into(),
                first_difference: None,
            },
            SnapshotDiff::SymlinkMismatch {
                path: "i".into(),
                expected: Some("target".into()),
                actual: None,
            },
            SnapshotDiff::XattrMismatch {
                path: "j".into(),
                expected: vec!["user.a".into(), "user.b".into()],
                actual: vec![],
            },
        ];
        let mut enc = crate::codec::Encoder::new();
        for diff in &diffs {
            diff.encode(&mut enc);
        }
        let bytes = enc.finish();
        let mut dec = crate::codec::Decoder::new(&bytes);
        for diff in &diffs {
            assert_eq!(&SnapshotDiff::decode(&mut dec).unwrap(), diff);
        }
        assert!(dec.is_exhausted());
    }

    #[test]
    fn data_mismatch_reports_first_difference() {
        let mut left = entry(FileType::Regular, 8);
        left.data = Some(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let mut right = left.clone();
        right.data = Some(vec![1, 2, 3, 9, 5, 6, 7, 8]);
        let oracle = snapshot_with(vec![("f", left)]);
        let crash = snapshot_with(vec![("f", right)]);
        let diffs = oracle.diff_path(&crash, "f");
        assert_eq!(diffs.len(), 1);
        match &diffs[0] {
            SnapshotDiff::DataMismatch {
                first_difference, ..
            } => {
                assert_eq!(*first_difference, Some(3));
            }
            other => panic!("expected data mismatch, got {other:?}"),
        }
    }
}
