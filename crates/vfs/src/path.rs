//! Path handling for the simulated file systems.
//!
//! Paths are plain `/`-separated strings relative to the file-system root
//! (e.g. `"A/foo"`). The root itself is written `""` or `"/"`. This module
//! provides the normalization and decomposition helpers shared by every file
//! system implementation, so that path semantics (and therefore workload
//! semantics) are identical across all of them.

use crate::error::{FsError, FsResult};

/// Maximum length of a single path component, mirroring `NAME_MAX`.
pub const NAME_MAX: usize = 255;

/// Normalizes a path: strips leading/trailing slashes and collapses empty
/// components. Returns the canonical relative path ("" for the root).
pub fn normalize(path: &str) -> String {
    path.split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect::<Vec<_>>()
        .join("/")
}

/// Splits a normalized path into its components.
pub fn components(path: &str) -> Vec<String> {
    let normalized = normalize(path);
    if normalized.is_empty() {
        Vec::new()
    } else {
        normalized.split('/').map(str::to_string).collect()
    }
}

/// Returns true if the path denotes the file-system root.
pub fn is_root(path: &str) -> bool {
    components(path).is_empty()
}

/// Splits a path into `(parent, name)`. Fails for the root.
pub fn split_parent(path: &str) -> FsResult<(String, String)> {
    let mut comps = components(path);
    let name = comps
        .pop()
        .ok_or_else(|| FsError::InvalidArgument("cannot split the root path".to_string()))?;
    Ok((comps.join("/"), name))
}

/// Returns the final component of a path, or an error for the root.
pub fn file_name(path: &str) -> FsResult<String> {
    Ok(split_parent(path)?.1)
}

/// Returns the parent of a path ("" for top-level entries).
pub fn parent(path: &str) -> FsResult<String> {
    Ok(split_parent(path)?.0)
}

/// Joins a parent path with a child name.
pub fn join(parent: &str, name: &str) -> String {
    let parent = normalize(parent);
    let name = normalize(name);
    if parent.is_empty() {
        name
    } else if name.is_empty() {
        parent
    } else {
        format!("{parent}/{name}")
    }
}

/// Depth of a path below the root (root = 0, "A/foo" = 2).
pub fn depth(path: &str) -> usize {
    components(path).len()
}

/// Returns true if `ancestor` is a (non-strict) prefix directory of `path`.
pub fn is_ancestor(ancestor: &str, path: &str) -> bool {
    let anc = components(ancestor);
    let comps = components(path);
    comps.len() >= anc.len() && comps[..anc.len()] == anc[..]
}

/// Validates a path for use in a file-system operation: no empty name, no
/// over-long components, no `..` traversal (the workload language never
/// produces one).
pub fn validate(path: &str) -> FsResult<()> {
    for comp in components(path) {
        if comp == ".." {
            return Err(FsError::InvalidArgument(format!(
                "parent traversal not supported: {path}"
            )));
        }
        if comp.len() > NAME_MAX {
            return Err(FsError::InvalidArgument(format!(
                "path component longer than {NAME_MAX} bytes"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_slashes() {
        assert_eq!(normalize("/A/foo/"), "A/foo");
        assert_eq!(normalize("A//foo"), "A/foo");
        assert_eq!(normalize("/"), "");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("./A/./foo"), "A/foo");
    }

    #[test]
    fn components_of_root_is_empty() {
        assert!(components("/").is_empty());
        assert_eq!(components("A/B/foo"), vec!["A", "B", "foo"]);
    }

    #[test]
    fn split_parent_works() {
        assert_eq!(
            split_parent("A/B/foo").unwrap(),
            ("A/B".to_string(), "foo".to_string())
        );
        assert_eq!(
            split_parent("foo").unwrap(),
            (String::new(), "foo".to_string())
        );
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("", "foo"), "foo");
        assert_eq!(join("A", "foo"), "A/foo");
        assert_eq!(join("A/", "/foo"), "A/foo");
        assert_eq!(join("A", ""), "A");
    }

    #[test]
    fn depth_and_ancestor() {
        assert_eq!(depth("/"), 0);
        assert_eq!(depth("A/C/foo"), 3);
        assert!(is_ancestor("A", "A/C/foo"));
        assert!(is_ancestor("", "A"));
        assert!(is_ancestor("A/C", "A/C"));
        assert!(!is_ancestor("A/C", "A"));
        assert!(!is_ancestor("B", "A/C/foo"));
    }

    #[test]
    fn validate_rejects_traversal_and_long_names() {
        assert!(validate("A/foo").is_ok());
        assert!(validate("A/../etc").is_err());
        let long = "x".repeat(NAME_MAX + 1);
        assert!(validate(&long).is_err());
    }
}
