//! The incremental crash-state recovery seam.
//!
//! The paper reports that mount-and-recover dominates per-crash-state cost
//! (§6.3): CrashMonkey mounts every crash state from scratch, so testing all
//! persistence points of a workload multiplies that cost by the number of
//! checkpoints. Adjacent crash states of one recorded run differ only in the
//! blocks written between the two checkpoints, though — a file system that
//! knows that delta can *patch its recovered view forward* instead of
//! re-reading and re-decoding everything.
//!
//! [`RecoverDelta`] is the seam: a per-workload session that recovers a
//! mountable view from each crash state in turn, optionally exploiting the
//! [`StateDelta`] between the previous state it recovered and the current
//! one. The default implementation ([`RemountSession`], returned by
//! [`FsSpec::recovery_session`]) simply remounts from scratch, so the seam
//! is always correct even for file systems that never opt in. Native
//! sessions must be *observationally identical* to a from-scratch mount:
//! same logical view on success, same error on failure. Debug builds of
//! CrashMonkey assert exactly that for every patched-forward state.

use b3_block::{BlockDevice, DiskImage, StateDelta};

use crate::diskfmt::{BlobRef, SuperBlock};
use crate::error::FsResult;
use crate::fs::{FileSystem, FsSpec};
use crate::tree::MemTree;

/// A recovery session: recovers a mounted view from each crash state of one
/// recorded run, in checkpoint order.
///
/// Implementations may carry state between calls (decoded trees, verified
/// structures) and reuse it when `delta` proves the underlying bytes did not
/// change. A `delta` of `None` means "no information about what changed"
/// (an out-of-order fallback, or a caller that never primed the session) —
/// the session must then recover from scratch.
///
/// One session may serve many workloads: the caller re-[primes](Self::prime)
/// it with the workload's base image at each workload boundary, which resets
/// the delta chain (and is what makes the *first* crash state of a run
/// incremental too, since all workloads of a sweep share one formatted base
/// image).
pub trait RecoverDelta {
    /// Establishes `base` as the reference state for the next `recover`
    /// call: that call's `delta` (if any) will be relative to `base`, as if
    /// a previous `recover` call had been made with it.
    ///
    /// Implementations carrying cached state MUST drop anything whose
    /// validity chain is not anchored to `base` — deltas from a different
    /// run prove nothing about this one. Priming is purely an optimization
    /// hook and must never fail a workload: sessions swallow errors (a
    /// corrupt base simply yields no reusable state, and `recover` reports
    /// the error exactly as a mount would).
    fn prime(&mut self, spec: &dyn FsSpec, base: &DiskImage) {
        let _ = (spec, base);
    }

    /// Recovers the file system from `device` (a crash state, i.e. an
    /// uncleanly unmounted image). `delta` is the set of blocks that
    /// changed since the state passed to the previous `recover` call on
    /// this session — or since the [primed](Self::prime) base image, on the
    /// first call after priming — when known.
    ///
    /// The result must be observationally identical to `spec.mount(device)`:
    /// the same logical view on success, an equal error on failure.
    fn recover(
        &mut self,
        spec: &dyn FsSpec,
        device: Box<dyn BlockDevice>,
        delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>>;

    /// True when this session actually patches forward (and therefore is
    /// worth cross-checking against a from-scratch mount in debug builds).
    /// The default remount session returns `false`.
    fn is_incremental(&self) -> bool {
        false
    }
}

/// The always-correct default session: ignores deltas and remounts from
/// scratch via [`FsSpec::mount`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RemountSession;

impl RecoverDelta for RemountSession {
    fn recover(
        &mut self,
        spec: &dyn FsSpec,
        device: Box<dyn BlockDevice>,
        _delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>> {
        spec.mount(device)
    }
}

/// Memoizes the expensive part of every simulated file system's mount: the
/// decode of the committed tree blob the superblock points at.
///
/// All four file systems in this workspace store their committed state as a
/// [`MemTree`] blob referenced from the [`SuperBlock`]; decoding it is the
/// bulk of mount cost. Between adjacent crash states the blob is usually
/// untouched — the cache returns the previously decoded tree when the
/// [`StateDelta`] proves the blob's blocks did not change.
///
/// The cache key is the blob reference *plus* the commit generation:
/// identical `(tree, generation)` alone does not guarantee identical bytes,
/// because the blob allocator wraps around when the device fills
/// ([`write_blob`](crate::diskfmt::write_blob)) and can overwrite an old
/// blob in place — which is exactly why a hit additionally requires the
/// delta to be disjoint from the blob's block range. Validity is inductive:
/// every fresh decode is stored, so a cached tree always describes the blob
/// bytes of the *previous* state, and a disjoint delta proves those bytes
/// survived into the current one.
///
/// When the delta chain cannot prove a blob unchanged (a commit moved it,
/// or a new run started), the entry is not thrown away: it keeps the raw
/// blob bytes it was decoded from, and [`verify`](Self::verify) revalidates
/// it against the current state's bytes directly. A byte compare is several
/// times cheaper than a decode, and adjacent workloads of an exhaustive
/// sweep constantly re-commit identical trees (bounded workload generation
/// varies the tail of the op sequence fastest, so long runs of neighbours
/// share their commit prefix).
///
/// Every distinct tree the cache hands out carries a `stamp`, a session-
/// unique id of the tree's *content*: two resolutions returning the same
/// stamp are guaranteed to have returned identical trees, even across runs.
/// Callers layering further caches on top (e.g. CowFs's replayed-log cache)
/// compare stamps to prove "same committed tree as last time" without
/// touching the tree itself.
#[derive(Debug, Default)]
pub struct CommittedTreeCache {
    entry: Option<CacheEntry>,
    /// True while `entry` is proven to describe the blob bytes of the state
    /// passed to the most recent [`lookup`](Self::lookup) — the premise the
    /// next lookup's delta extends. Cleared by a miss or a new run; set
    /// again by [`store`](Self::store) and a successful
    /// [`verify`](Self::verify).
    anchored: bool,
    /// Decode of the *base image's* committed tree, installed by
    /// [`pin`](Self::pin) when the session is primed. Unlike `entry` it
    /// survives [`start_run`](Self::start_run), so the first crash state of
    /// every workload replayed onto that base can hit the cache too (its
    /// delta is relative to the base).
    pinned: Option<(CacheKey, std::sync::Arc<MemTree>, u64)>,
    /// True while every lookup since the last [`start_run`](Self::start_run)
    /// hit. A miss means the current state's blob bytes were not proven
    /// equal to the previous state's — the validity chain from the pinned
    /// base is broken, so the pinned entry must not be consulted again
    /// until the next run re-anchors it.
    chain_intact: bool,
    /// Source of fresh stamps; `last_stamp` is the stamp of the tree the
    /// most recent successful resolution (lookup hit, verify hit, or store)
    /// referred to. Zero means "nothing resolved yet".
    next_stamp: u64,
    last_stamp: u64,
}

#[derive(Debug)]
struct CacheEntry {
    key: CacheKey,
    /// The raw blob bytes `tree` was decoded from, kept for
    /// [`verify`](CommittedTreeCache::verify).
    bytes: Vec<u8>,
    /// Shared so sessions can hand out recovered views without deep-copying
    /// the tree (recovered views are read-only until mutated through a
    /// copy-on-write guard).
    tree: std::sync::Arc<MemTree>,
    stamp: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct CacheKey {
    tree: BlobRef,
    generation: u64,
}

impl CacheKey {
    fn of(sb: &SuperBlock) -> CacheKey {
        CacheKey {
            tree: sb.tree,
            generation: sb.generation,
        }
    }
}

impl CommittedTreeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CommittedTreeCache::default()
    }

    fn mint_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Returns the cached decode of `sb.tree` when `delta` proves the blob's
    /// bytes are unchanged since the tree was cached. `None` demands the
    /// caller read the blob and try [`verify`](Self::verify), then decode
    /// and [`store`](Self::store) on a verify miss.
    ///
    /// A miss un-anchors the floating entry and breaks the pinned entry's
    /// chain: the bytes behind them were not proven to survive into this
    /// state, so neither may satisfy a later state's *delta-based* lookup
    /// (whose delta is relative to this one). The floating entry itself is
    /// retained — byte verification can still prove it valid.
    pub fn lookup(&mut self, sb: &SuperBlock, delta: Option<&StateDelta>) -> Option<&MemTree> {
        let key = CacheKey::of(sb);
        let unchanged = |d: &StateDelta| !d.overlaps_range(sb.tree.start, sb.tree.num_blocks());
        let floating_hit = self.anchored
            && delta.is_some_and(&unchanged)
            && self.entry.as_ref().is_some_and(|e| e.key == key);
        if floating_hit {
            let entry = self.entry.as_ref().expect("checked above");
            self.last_stamp = entry.stamp;
            return Some(&entry.tree);
        }
        self.anchored = false;
        let pinned_hit = self.chain_intact
            && delta.is_some_and(&unchanged)
            && self.pinned.as_ref().is_some_and(|(k, _, _)| *k == key);
        if pinned_hit {
            let (_, tree, stamp) = self.pinned.as_ref().expect("checked above");
            self.last_stamp = *stamp;
            return Some(tree);
        }
        self.chain_intact = false;
        None
    }

    /// Like the resolution methods but yielding the shared handle of the
    /// most recently resolved tree, for sessions that hand out recovered
    /// views without deep-copying ([`resolved`](Self::resolved) semantics).
    pub fn resolved_shared(&self) -> Option<&std::sync::Arc<MemTree>> {
        if let Some(entry) = self.entry.as_ref().filter(|e| e.stamp == self.last_stamp) {
            return Some(&entry.tree);
        }
        self.pinned
            .as_ref()
            .filter(|(_, _, stamp)| *stamp == self.last_stamp)
            .map(|(_, tree, _)| tree)
    }

    /// After a [`lookup`](Self::lookup) miss: revalidates the floating
    /// entry against the current state's freshly read blob bytes. Equal
    /// bytes prove the cached tree is exactly the decode of this state's
    /// blob — no delta chain needed — so the entry is re-anchored (keeping
    /// its stamp: the content did not change) and returned.
    pub fn verify(&mut self, sb: &SuperBlock, bytes: &[u8]) -> Option<&MemTree> {
        let key = CacheKey::of(sb);
        let entry = self
            .entry
            .as_ref()
            .filter(|e| e.key == key && e.bytes == bytes)?;
        self.last_stamp = entry.stamp;
        self.anchored = true;
        Some(&entry.tree)
    }

    /// Records a freshly decoded committed tree for `sb` together with the
    /// blob bytes it was decoded from, re-anchoring the floating entry to
    /// the current state under a fresh stamp.
    pub fn store(&mut self, sb: &SuperBlock, bytes: Vec<u8>, tree: MemTree) {
        let stamp = self.mint_stamp();
        self.entry = Some(CacheEntry {
            key: CacheKey::of(sb),
            bytes,
            tree: std::sync::Arc::new(tree),
            stamp,
        });
        self.anchored = true;
        self.last_stamp = stamp;
    }

    /// The tree returned by the most recent successful resolution
    /// ([`lookup`](Self::lookup) hit, [`verify`](Self::verify) hit, or
    /// [`store`](Self::store)) — lets callers borrow it back without
    /// re-running the resolution, sidestepping the borrow the resolution
    /// methods hold on `self`.
    pub fn resolved(&self) -> Option<&MemTree> {
        self.resolved_shared().map(std::convert::AsRef::as_ref)
    }

    /// Content stamp of the most recently resolved tree: equal stamps from
    /// the same cache guarantee identical tree content. Zero until the
    /// first resolution.
    pub fn last_stamp(&self) -> u64 {
        self.last_stamp
    }

    /// Installs the decode of the primed base image's committed tree. The
    /// entry survives [`start_run`](Self::start_run) and satisfies lookups
    /// whose delta chain proves the blob unchanged since the base.
    pub fn pin(&mut self, sb: &SuperBlock, tree: MemTree) {
        let stamp = self.mint_stamp();
        self.pinned = Some((CacheKey::of(sb), std::sync::Arc::new(tree), stamp));
    }

    /// Starts a new run over the pinned base image: un-anchors the floating
    /// entry (it describes a state of the *previous* run, which the new
    /// run's deltas prove nothing about — though its content remains
    /// reusable through [`verify`](Self::verify)) and re-arms the pinned
    /// entry (the first delta of the new run is relative to the base).
    pub fn start_run(&mut self) {
        self.anchored = false;
        self.chain_intact = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb_with(tree: BlobRef, generation: u64) -> SuperBlock {
        let mut sb = SuperBlock::new(0x7e57);
        sb.tree = tree;
        sb.generation = generation;
        sb
    }

    #[test]
    fn cache_hits_only_with_matching_key_and_disjoint_delta() {
        let disjoint = StateDelta::from_blocks(vec![0, 50]);
        let sb = sb_with(
            BlobRef {
                start: 10,
                len: 8192,
            },
            3,
        );

        let mut cache = CommittedTreeCache::new();
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        assert!(cache.lookup(&sb, Some(&disjoint)).is_some());
        let touching = StateDelta::from_blocks(vec![0, 11]);
        assert!(
            cache.lookup(&sb, Some(&touching)).is_none(),
            "delta overlaps blob"
        );

        let mut cache = CommittedTreeCache::new();
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        assert!(cache.lookup(&sb, None).is_none(), "no delta, no proof");

        let mut cache = CommittedTreeCache::new();
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        let moved = sb_with(
            BlobRef {
                start: 20,
                len: 8192,
            },
            3,
        );
        assert!(
            cache.lookup(&moved, Some(&disjoint)).is_none(),
            "blob moved"
        );

        let mut cache = CommittedTreeCache::new();
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        let committed = sb_with(sb.tree, 4);
        assert!(
            cache.lookup(&committed, Some(&disjoint)).is_none(),
            "generation bumped"
        );
    }

    #[test]
    fn a_miss_unanchors_the_floating_entry() {
        // The chain of per-state deltas is what keeps the entry valid: once
        // a state's delta fails to prove the blob unchanged, a later state's
        // (delta-disjoint) lookup must not resurrect the stale tree.
        let mut cache = CommittedTreeCache::new();
        let sb = sb_with(
            BlobRef {
                start: 10,
                len: 8192,
            },
            3,
        );
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        let touching = StateDelta::from_blocks(vec![11]);
        assert!(cache.lookup(&sb, Some(&touching)).is_none());
        let disjoint = StateDelta::from_blocks(vec![50]);
        assert!(
            cache.lookup(&sb, Some(&disjoint)).is_none(),
            "entry must not survive a broken delta chain"
        );
        // A fresh store re-anchors the entry to the current state.
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        assert!(cache.lookup(&sb, Some(&disjoint)).is_some());
    }

    #[test]
    fn byte_verification_revives_an_unanchored_entry() {
        let mut cache = CommittedTreeCache::new();
        let sb = sb_with(
            BlobRef {
                start: 10,
                len: 8192,
            },
            3,
        );
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        let first_stamp = cache.last_stamp();

        // A miss (overlapping delta) un-anchors the entry...
        let touching = StateDelta::from_blocks(vec![11]);
        assert!(cache.lookup(&sb, Some(&touching)).is_none());
        // ... but matching bytes prove the cached decode still describes
        // this state's blob, reviving it with the *same* content stamp.
        assert!(cache.verify(&sb, &[1, 2, 3]).is_some());
        assert_eq!(cache.last_stamp(), first_stamp, "content did not change");
        assert!(cache.resolved().is_some());

        // Once re-anchored, the delta chain works again.
        let disjoint = StateDelta::from_blocks(vec![50]);
        assert!(cache.lookup(&sb, Some(&disjoint)).is_some());

        // Different bytes, a different key, or a bumped generation refuse.
        assert!(cache.lookup(&sb, Some(&touching)).is_none());
        assert!(cache.verify(&sb, &[9, 9, 9]).is_none());
        let committed = sb_with(sb.tree, 4);
        assert!(cache.verify(&committed, &[1, 2, 3]).is_none());

        // A fresh store mints a fresh stamp: distinct content, distinct id.
        cache.store(&sb, vec![4, 5], MemTree::new());
        assert_ne!(cache.last_stamp(), first_stamp);
    }

    #[test]
    fn the_entry_survives_run_boundaries_through_verification() {
        // Adjacent workloads of a sweep constantly re-commit identical
        // trees; the entry outlives start_run so the next run can revive it
        // by byte compare instead of re-decoding.
        let mut cache = CommittedTreeCache::new();
        let sb = sb_with(
            BlobRef {
                start: 10,
                len: 8192,
            },
            3,
        );
        cache.store(&sb, vec![1, 2, 3], MemTree::new());
        let stamp = cache.last_stamp();

        cache.start_run();
        let disjoint = StateDelta::from_blocks(vec![50]);
        assert!(
            cache.lookup(&sb, Some(&disjoint)).is_none(),
            "deltas of a new run prove nothing about the old entry"
        );
        assert!(cache.verify(&sb, &[1, 2, 3]).is_some());
        assert_eq!(cache.last_stamp(), stamp);
    }

    #[test]
    fn pinned_entry_survives_runs_but_not_a_broken_chain() {
        let mut cache = CommittedTreeCache::new();
        let base_sb = sb_with(
            BlobRef {
                start: 10,
                len: 8192,
            },
            3,
        );
        cache.pin(&base_sb, MemTree::new());
        let disjoint = StateDelta::from_blocks(vec![50]);

        // First state of a run: delta relative to the base proves the blob
        // unchanged, so the pinned entry satisfies the lookup.
        cache.start_run();
        assert!(cache.lookup(&base_sb, Some(&disjoint)).is_some());
        // ... and keeps doing so while the chain holds.
        assert!(cache.lookup(&base_sb, Some(&disjoint)).is_some());

        // A miss (here: an overlapping delta) breaks the chain; the pinned
        // entry stays dormant for the rest of the run even when later
        // deltas are disjoint again.
        let touching = StateDelta::from_blocks(vec![11]);
        assert!(cache.lookup(&base_sb, Some(&touching)).is_none());
        assert!(cache.lookup(&base_sb, Some(&disjoint)).is_none());

        // The next run re-anchors it.
        cache.start_run();
        assert!(cache.lookup(&base_sb, Some(&disjoint)).is_some());

        // A floating entry shadows the pinned one at the same key, so a
        // re-decoded (current) tree wins over the base's.
        cache.start_run();
        cache.store(&base_sb, vec![1, 2, 3], MemTree::new());
        assert!(cache.lookup(&base_sb, Some(&disjoint)).is_some());
    }

    #[test]
    fn remount_session_is_not_incremental() {
        assert!(!RemountSession.is_incremental());
    }
}
