//! The POSIX-style `FileSystem` trait and related abstractions.

use b3_block::BlockDevice;

use crate::error::{FsError, FsResult};
use crate::metadata::Metadata;
use crate::workload::FallocMode;

/// How a write reaches the file system, mirroring the three data-operation
/// flavours the paper's workloads use (Table 4): buffered `write()`, memory-
/// mapped writes, and direct IO (`O_DIRECT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// Ordinary buffered `write()` through the page cache.
    Buffered,
    /// `O_DIRECT` write: data bypasses the page cache and is issued to the
    /// device immediately (metadata updates may still be delayed — which is
    /// exactly where the studied ext4 bug lives).
    Direct,
    /// A store through an `mmap()` mapping; becomes durable only via
    /// `msync`/`fsync` or a full `sync`.
    Mmap,
}

impl WriteMode {
    /// Short name used by the workload language.
    pub fn as_str(&self) -> &'static str {
        match self {
            WriteMode::Buffered => "write",
            WriteMode::Direct => "dwrite",
            WriteMode::Mmap => "mwrite",
        }
    }
}

/// Crash-consistency guarantees a file system intends to provide beyond the
/// POSIX minimum.
///
/// §5.1: "Since each file system has slightly different consistency
/// guarantees, we reached out to developers of each file system we tested, to
/// understand the guarantees provided by that file system." The AutoChecker
/// only reports violations of guarantees the file system claims to provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuaranteeProfile {
    /// `fsync(file)` also persists the directory entry that names the file
    /// (no separate `fsync(parent)` needed). True for ext4 and btrfs intent.
    pub fsync_file_persists_dentry: bool,
    /// `fsync(file)` persists *all* of the file's hard-link names, not just
    /// the one used to open it.
    pub fsync_persists_all_names: bool,
    /// `fsync(dir)` persists the directory's entries (creations, removals,
    /// renames of children recorded so far).
    pub fsync_dir_persists_entries: bool,
    /// `rename(src, dst)` is atomic across a crash: after recovery either the
    /// old file or the new file is visible, never neither/both.
    pub atomic_rename: bool,
    /// `fdatasync(file)` persists whatever metadata is needed to read back
    /// the data it persisted (notably the file size for appends).
    pub fdatasync_persists_needed_metadata: bool,
    /// A successful `sync()` persists everything that existed at that point.
    pub sync_persists_everything: bool,
}

impl GuaranteeProfile {
    /// The guarantees mainstream Linux file systems (ext4, btrfs, F2FS in its
    /// default `fsync_mode=posix`… in practice) aim to provide, per the
    /// developer conversations reported in §5.1.
    pub fn linux_default() -> Self {
        GuaranteeProfile {
            fsync_file_persists_dentry: true,
            fsync_persists_all_names: true,
            fsync_dir_persists_entries: true,
            atomic_rename: true,
            fdatasync_persists_needed_metadata: true,
            sync_persists_everything: true,
        }
    }

    /// The strict POSIX floor: an fsync on a newly created file does not by
    /// itself guarantee the file's directory entry survives; callers must
    /// fsync the parent directory too.
    pub fn strict_posix() -> Self {
        GuaranteeProfile {
            fsync_file_persists_dentry: false,
            fsync_persists_all_names: false,
            fsync_dir_persists_entries: true,
            atomic_rename: true,
            fdatasync_persists_needed_metadata: true,
            sync_persists_everything: true,
        }
    }
}

/// A POSIX-style file system under test.
///
/// Paths are `/`-separated strings relative to the root (see
/// [`crate::path`]). Every mutating operation only changes *in-memory* state;
/// durability is obtained exclusively through [`FileSystem::fsync`],
/// [`FileSystem::fdatasync`], [`FileSystem::msync`] and [`FileSystem::sync`],
/// which is the property at the heart of every crash-consistency bug the
/// paper studies.
pub trait FileSystem: Send {
    /// Short name of the file system ("cowfs", "flashfs", …).
    fn fs_name(&self) -> &'static str;

    // --- namespace operations -------------------------------------------------

    /// Creates an empty regular file (like `creat`/`touch`). Fails with
    /// [`FsError::AlreadyExists`] if the path exists.
    fn create(&mut self, path: &str) -> FsResult<()>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> FsResult<()>;

    /// Creates a named pipe (`mkfifo`).
    fn mkfifo(&mut self, path: &str) -> FsResult<()>;

    /// Creates a symbolic link at `linkpath` pointing at `target`.
    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()>;

    /// Creates a hard link `new` to the existing file `existing`.
    fn link(&mut self, existing: &str, new: &str) -> FsResult<()>;

    /// Removes a file, symlink, or fifo name (final unlink drops the inode).
    fn unlink(&mut self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> FsResult<()>;

    /// Renames `from` to `to`, replacing `to` if it exists (POSIX rename
    /// semantics).
    fn rename(&mut self, from: &str, to: &str) -> FsResult<()>;

    // --- data operations --------------------------------------------------------

    /// Writes `data` at `offset`, extending the file if needed.
    fn write(&mut self, path: &str, offset: u64, data: &[u8], mode: WriteMode) -> FsResult<()>;

    /// Truncates (or extends with zeroes) the file to `size` bytes.
    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()>;

    /// `fallocate(2)`: manipulates the file's allocation without writing
    /// user data (see [`FallocMode`]).
    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()>;

    // --- extended attributes ----------------------------------------------------

    /// Sets (creating or replacing) an extended attribute.
    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()>;

    /// Removes an extended attribute.
    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()>;

    /// Reads an extended attribute.
    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>>;

    // --- read-side operations ---------------------------------------------------

    /// Reads up to `len` bytes from `offset`. Reads past EOF return the
    /// available prefix (possibly empty).
    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>>;

    /// Lists the names in a directory, sorted.
    fn readdir(&self, path: &str) -> FsResult<Vec<String>>;

    /// Returns the metadata of a path.
    fn metadata(&self, path: &str) -> FsResult<Metadata>;

    /// Returns the target of a symbolic link.
    fn readlink(&self, path: &str) -> FsResult<String>;

    // --- persistence operations -------------------------------------------------

    /// `fsync(2)` on the given file or directory.
    fn fsync(&mut self, path: &str) -> FsResult<()>;

    /// `fdatasync(2)` on the given file.
    fn fdatasync(&mut self, path: &str) -> FsResult<()>;

    /// `msync(2)` of a mapped range of the file. The default forwards to
    /// [`FileSystem::fdatasync`], which matches how most file systems treat
    /// ranged msync for crash-consistency purposes.
    fn msync(&mut self, path: &str, _offset: u64, _len: u64) -> FsResult<()> {
        self.fdatasync(path)
    }

    /// Global `sync(2)`: commits everything.
    fn sync(&mut self) -> FsResult<()>;

    // --- lifecycle ---------------------------------------------------------------

    /// Cleanly unmounts the file system: completes all pending writes and
    /// checkpoints, then returns the underlying device. The resulting image
    /// is what the paper calls an *oracle* when captured at a persistence
    /// point.
    fn unmount(self: Box<Self>) -> FsResult<Box<dyn BlockDevice>>;

    // --- misc ---------------------------------------------------------------------

    /// The crash-consistency guarantees this file system aims to provide.
    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }

    /// Convenience: whole-file read.
    fn read_all(&self, path: &str) -> FsResult<Vec<u8>> {
        let meta = self.metadata(path)?;
        self.read(path, 0, meta.size)
    }

    /// Convenience: does the path exist?
    fn exists(&self, path: &str) -> bool {
        self.metadata(path).is_ok()
    }
}

/// Factory for a file-system implementation: formats fresh devices and mounts
/// existing images (running crash recovery when the image was not cleanly
/// unmounted). CrashMonkey is written entirely against this trait, which is
/// what makes it black-box.
pub trait FsSpec: Send + Sync {
    /// Short name of the file system this spec builds.
    fn name(&self) -> &'static str;

    /// Formats a fresh file system onto `device` and returns it mounted.
    fn mkfs(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>>;

    /// Mounts an existing image. If the image was not cleanly unmounted the
    /// file system runs its recovery (journal replay, log-tree replay,
    /// roll-forward, …). Returns [`FsError::Unmountable`] when recovery
    /// fails — the paper's most severe bug consequence.
    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>>;

    /// Runs the file system's offline checker ("fsck") on an image and
    /// returns a human-readable report. The paper runs fsck "only if the
    /// recovered file system is un-mountable". The default reports that no
    /// checker is available.
    fn fsck(&self, _device: &mut dyn BlockDevice) -> FsResult<String> {
        Err(FsError::Unsupported(format!(
            "{} has no offline checker",
            self.name()
        )))
    }

    /// Starts a [recovery session](crate::recover::RecoverDelta) for
    /// mounting sequences of adjacent crash states. The default session
    /// ignores deltas and remounts from scratch via [`FsSpec::mount`], so
    /// this seam is always correct; file systems override it to patch their
    /// recovered view forward incrementally. One session may serve many
    /// workloads: callers re-[`prime`](crate::recover::RecoverDelta::prime)
    /// it at each workload boundary.
    fn recovery_session(&self) -> Box<dyn crate::recover::RecoverDelta + Send> {
        Box::new(crate::recover::RemountSession)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_mode_names() {
        assert_eq!(WriteMode::Buffered.as_str(), "write");
        assert_eq!(WriteMode::Direct.as_str(), "dwrite");
        assert_eq!(WriteMode::Mmap.as_str(), "mwrite");
    }

    #[test]
    fn linux_default_guarantees_are_strongest() {
        let linux = GuaranteeProfile::linux_default();
        let posix = GuaranteeProfile::strict_posix();
        assert!(linux.fsync_file_persists_dentry);
        assert!(!posix.fsync_file_persists_dentry);
        assert!(linux.atomic_rename && posix.atomic_rename);
    }
}
