//! The workload language: the IR that ACE generates and CrashMonkey executes.
//!
//! A [`Workload`] is a short sequence of file-system operations ([`Op`]s),
//! split into *setup* operations (the dependency operations ACE's phase 4
//! prepends, e.g. creating a directory before a file is created inside it)
//! and *core* operations (the bounded sequence under test, interleaved with
//! the persistence points phase 3 added).
//!
//! The equivalent artifact in the original system is the "high-level
//! language" ACE's workload synthesizer emits, which a custom adapter then
//! compiles into a C++ test program for CrashMonkey (§5.2). In this
//! reproduction both tools share the IR directly; the text serialization in
//! [`parse_workload`]/[`Display`](std::fmt::Display) plays the role of the
//! intermediate language.

mod display;
mod files;
mod parse;

pub use files::FileSet;
pub use parse::{parse_workload, ParseError};

use crate::fs::WriteMode;

/// `fallocate(2)` modes exercised by the workloads.
///
/// The F2FS `ZERO_RANGE`/`KEEP_SIZE` interaction and the ext4/F2FS "blocks
/// allocated beyond EOF are lost" bugs live entirely in how these modes are
/// persisted, so the distinction matters to the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallocMode {
    /// Plain allocation; file size grows to cover the range.
    Allocate,
    /// `FALLOC_FL_KEEP_SIZE`: allocate blocks but do not change `st_size`.
    KeepSize,
    /// `FALLOC_FL_ZERO_RANGE`: zero the range, extending the file.
    ZeroRange,
    /// `FALLOC_FL_ZERO_RANGE | FALLOC_FL_KEEP_SIZE`.
    ZeroRangeKeepSize,
    /// `FALLOC_FL_PUNCH_HOLE` (always keeps size in Linux).
    PunchHole,
}

impl FallocMode {
    /// Token used in the workload text format.
    pub fn as_str(&self) -> &'static str {
        match self {
            FallocMode::Allocate => "alloc",
            FallocMode::KeepSize => "keep_size",
            FallocMode::ZeroRange => "zero_range",
            FallocMode::ZeroRangeKeepSize => "zero_range_keep_size",
            FallocMode::PunchHole => "punch_hole",
        }
    }

    /// Parses a token produced by [`FallocMode::as_str`].
    pub fn parse(s: &str) -> Option<FallocMode> {
        match s {
            "alloc" => Some(FallocMode::Allocate),
            "keep_size" => Some(FallocMode::KeepSize),
            "zero_range" => Some(FallocMode::ZeroRange),
            "zero_range_keep_size" => Some(FallocMode::ZeroRangeKeepSize),
            "punch_hole" => Some(FallocMode::PunchHole),
            _ => None,
        }
    }

    /// Does this mode leave `st_size` unchanged even when the range extends
    /// beyond EOF?
    pub fn keeps_size(&self) -> bool {
        matches!(
            self,
            FallocMode::KeepSize | FallocMode::ZeroRangeKeepSize | FallocMode::PunchHole
        )
    }

    /// All modes, for exhaustive generation.
    pub const ALL: [FallocMode; 5] = [
        FallocMode::Allocate,
        FallocMode::KeepSize,
        FallocMode::ZeroRange,
        FallocMode::ZeroRangeKeepSize,
        FallocMode::PunchHole,
    ];
}

/// Symbolic description of where a data operation lands in the file, used by
/// ACE's phase 2. The study found that "a broad classification of writes such
/// as appends to the end of a file, overwrites to overlapping regions of
/// file, etc. is sufficient to find crash-consistency bugs" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePattern {
    /// Append one block at the current end of file.
    Append,
    /// Overwrite the first block of the file.
    OverwriteStart,
    /// Overwrite a block in the middle of the file.
    OverwriteMiddle,
    /// Overwrite the last block of the file (straddling EOF if unaligned).
    OverwriteEnd,
    /// Append a partial (sub-block) amount of data, leaving EOF unaligned.
    AppendUnaligned,
}

impl WritePattern {
    /// Token used in the workload text format.
    pub fn as_str(&self) -> &'static str {
        match self {
            WritePattern::Append => "append",
            WritePattern::OverwriteStart => "overwrite_start",
            WritePattern::OverwriteMiddle => "overwrite_middle",
            WritePattern::OverwriteEnd => "overwrite_end",
            WritePattern::AppendUnaligned => "append_unaligned",
        }
    }

    /// Parses a token produced by [`WritePattern::as_str`].
    pub fn parse(s: &str) -> Option<WritePattern> {
        match s {
            "append" => Some(WritePattern::Append),
            "overwrite_start" => Some(WritePattern::OverwriteStart),
            "overwrite_middle" => Some(WritePattern::OverwriteMiddle),
            "overwrite_end" => Some(WritePattern::OverwriteEnd),
            "append_unaligned" => Some(WritePattern::AppendUnaligned),
            _ => None,
        }
    }

    /// All patterns, for exhaustive generation.
    pub const ALL: [WritePattern; 5] = [
        WritePattern::Append,
        WritePattern::OverwriteStart,
        WritePattern::OverwriteMiddle,
        WritePattern::OverwriteEnd,
        WritePattern::AppendUnaligned,
    ];
}

/// Byte range of a data operation: either a concrete range (used by the bug
/// corpus, which reproduces exact reported workloads) or a symbolic pattern
/// (used by ACE, resolved against the file's size at execution time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteSpec {
    /// Concrete byte range `[offset, offset + len)`.
    Range {
        /// Start offset in bytes.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Symbolic pattern resolved by the executor.
    Pattern(WritePattern),
}

impl WriteSpec {
    /// Convenience constructor for a concrete range.
    pub fn range(offset: u64, len: u64) -> WriteSpec {
        WriteSpec::Range { offset, len }
    }
}

/// One file-system operation in a workload.
///
/// Paths are plain strings relative to the file-system root.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `creat`/`touch`: create an empty regular file.
    Creat { path: String },
    /// `mkdir`: create a directory.
    Mkdir { path: String },
    /// `mkfifo`: create a named pipe.
    Mkfifo { path: String },
    /// `symlink target linkpath`.
    Symlink { target: String, linkpath: String },
    /// `link existing new`: create a hard link.
    Link { existing: String, new: String },
    /// `unlink`: remove a file name.
    Unlink { path: String },
    /// `remove`: remove a file or an empty directory (rm/rmdir hybrid, the
    /// paper lists both `remove` and `unlink` among ACE's operations).
    Remove { path: String },
    /// `rmdir`: remove an empty directory.
    Rmdir { path: String },
    /// `rename from to`.
    Rename { from: String, to: String },
    /// A data write in one of the three [`WriteMode`]s.
    Write {
        path: String,
        mode: WriteMode,
        spec: WriteSpec,
    },
    /// Declare an `mmap` of a byte range (no state change; the subsequent
    /// mmap writes use [`WriteMode::Mmap`]).
    Mmap { path: String, offset: u64, len: u64 },
    /// `msync` of a byte range — a persistence point for that range.
    Msync { path: String, offset: u64, len: u64 },
    /// `truncate` to a size.
    Truncate { path: String, size: u64 },
    /// `fallocate` with a mode and range.
    Falloc {
        path: String,
        mode: FallocMode,
        offset: u64,
        len: u64,
    },
    /// `setxattr path name value`.
    SetXattr {
        path: String,
        name: String,
        value: String,
    },
    /// `removexattr path name`.
    RemoveXattr { path: String, name: String },
    /// `fsync path` — persistence point.
    Fsync { path: String },
    /// `fdatasync path` — persistence point.
    Fdatasync { path: String },
    /// Global `sync` — persistence point.
    Sync,
}

impl Op {
    /// The operation's kind (for skeleton grouping).
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Creat { .. } => OpKind::Creat,
            Op::Mkdir { .. } => OpKind::Mkdir,
            Op::Mkfifo { .. } => OpKind::Mkfifo,
            Op::Symlink { .. } => OpKind::Symlink,
            Op::Link { .. } => OpKind::Link,
            Op::Unlink { .. } => OpKind::Unlink,
            Op::Remove { .. } => OpKind::Remove,
            Op::Rmdir { .. } => OpKind::Rmdir,
            Op::Rename { .. } => OpKind::Rename,
            Op::Write { mode, .. } => match mode {
                WriteMode::Buffered => OpKind::WriteBuffered,
                WriteMode::Direct => OpKind::WriteDirect,
                WriteMode::Mmap => OpKind::WriteMmap,
            },
            Op::Mmap { .. } => OpKind::Mmap,
            Op::Msync { .. } => OpKind::Msync,
            Op::Truncate { .. } => OpKind::Truncate,
            Op::Falloc { .. } => OpKind::Falloc,
            Op::SetXattr { .. } => OpKind::SetXattr,
            Op::RemoveXattr { .. } => OpKind::RemoveXattr,
            Op::Fsync { .. } => OpKind::Fsync,
            Op::Fdatasync { .. } => OpKind::Fdatasync,
            Op::Sync => OpKind::Sync,
        }
    }

    /// Is this operation a persistence point (after which CrashMonkey
    /// simulates a crash)?
    pub fn is_persistence_point(&self) -> bool {
        matches!(
            self,
            Op::Fsync { .. } | Op::Fdatasync { .. } | Op::Msync { .. } | Op::Sync
        )
    }

    /// The paths this operation names (used for dependency analysis and for
    /// tracking the explicitly-persisted set).
    pub fn paths(&self) -> Vec<&str> {
        match self {
            Op::Creat { path }
            | Op::Mkdir { path }
            | Op::Mkfifo { path }
            | Op::Unlink { path }
            | Op::Remove { path }
            | Op::Rmdir { path }
            | Op::Truncate { path, .. }
            | Op::Falloc { path, .. }
            | Op::SetXattr { path, .. }
            | Op::RemoveXattr { path, .. }
            | Op::Write { path, .. }
            | Op::Mmap { path, .. }
            | Op::Msync { path, .. }
            | Op::Fsync { path }
            | Op::Fdatasync { path } => vec![path],
            Op::Symlink { target, linkpath } => vec![target, linkpath],
            Op::Link { existing, new } => vec![existing, new],
            Op::Rename { from, to } => vec![from, to],
            Op::Sync => vec![],
        }
    }

    /// The path whose durability this persistence operation is about, if any
    /// (`None` for the global `sync`).
    pub fn persistence_target(&self) -> Option<&str> {
        match self {
            Op::Fsync { path } | Op::Fdatasync { path } | Op::Msync { path, .. } => Some(path),
            _ => None,
        }
    }
}

/// The kind of an operation, used for skeletons (phase 1 of ACE) and for
/// grouping bug reports (§5.3, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    Creat,
    Mkdir,
    Mkfifo,
    Symlink,
    Link,
    Unlink,
    Remove,
    Rmdir,
    Rename,
    WriteBuffered,
    WriteDirect,
    WriteMmap,
    Mmap,
    Msync,
    Truncate,
    Falloc,
    SetXattr,
    RemoveXattr,
    Fsync,
    Fdatasync,
    Sync,
}

impl OpKind {
    /// Short mnemonic used in skeleton strings and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            OpKind::Creat => "creat",
            OpKind::Mkdir => "mkdir",
            OpKind::Mkfifo => "mkfifo",
            OpKind::Symlink => "symlink",
            OpKind::Link => "link",
            OpKind::Unlink => "unlink",
            OpKind::Remove => "remove",
            OpKind::Rmdir => "rmdir",
            OpKind::Rename => "rename",
            OpKind::WriteBuffered => "write",
            OpKind::WriteDirect => "dwrite",
            OpKind::WriteMmap => "mwrite",
            OpKind::Mmap => "mmap",
            OpKind::Msync => "msync",
            OpKind::Truncate => "truncate",
            OpKind::Falloc => "falloc",
            OpKind::SetXattr => "setxattr",
            OpKind::RemoveXattr => "removexattr",
            OpKind::Fsync => "fsync",
            OpKind::Fdatasync => "fdatasync",
            OpKind::Sync => "sync",
        }
    }

    /// Every operation kind, in declaration order. `as_str` round-trips
    /// through [`OpKind::parse`] for each of them.
    pub const ALL: [OpKind; 21] = [
        OpKind::Creat,
        OpKind::Mkdir,
        OpKind::Mkfifo,
        OpKind::Symlink,
        OpKind::Link,
        OpKind::Unlink,
        OpKind::Remove,
        OpKind::Rmdir,
        OpKind::Rename,
        OpKind::WriteBuffered,
        OpKind::WriteDirect,
        OpKind::WriteMmap,
        OpKind::Mmap,
        OpKind::Msync,
        OpKind::Truncate,
        OpKind::Falloc,
        OpKind::SetXattr,
        OpKind::RemoveXattr,
        OpKind::Fsync,
        OpKind::Fdatasync,
        OpKind::Sync,
    ];

    /// Parses the mnemonic produced by [`OpKind::as_str`].
    pub fn parse(s: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|kind| kind.as_str() == s)
    }

    /// The 14 core operations ACE supports (§5.2: "ACE … currently supports
    /// 14 file-system operations. All bugs analyzed in our study used one of
    /// these 14 file-system operations.").
    pub const ACE_CORE_OPS: [OpKind; 14] = [
        OpKind::Creat,
        OpKind::Mkdir,
        OpKind::Falloc,
        OpKind::WriteBuffered,
        OpKind::WriteMmap,
        OpKind::Link,
        OpKind::WriteDirect,
        OpKind::Unlink,
        OpKind::Rmdir,
        OpKind::SetXattr,
        OpKind::RemoveXattr,
        OpKind::Remove,
        OpKind::Truncate,
        OpKind::Rename,
    ];

    /// Is this kind a persistence operation?
    pub fn is_persistence(&self) -> bool {
        matches!(
            self,
            OpKind::Fsync | OpKind::Fdatasync | OpKind::Msync | OpKind::Sync
        )
    }

    /// Is this a data operation (as opposed to a metadata operation)?
    pub fn is_data_op(&self) -> bool {
        matches!(
            self,
            OpKind::WriteBuffered
                | OpKind::WriteDirect
                | OpKind::WriteMmap
                | OpKind::Falloc
                | OpKind::Truncate
                | OpKind::Mmap
        )
    }
}

/// A persistence point to append after a core operation (ACE phase 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PersistTarget {
    /// `fsync` of a specific file or directory.
    Fsync(String),
    /// `fdatasync` of a specific file.
    Fdatasync(String),
    /// Global `sync`.
    Sync,
}

impl PersistTarget {
    /// Converts the target into the corresponding operation.
    pub fn to_op(&self) -> Op {
        match self {
            PersistTarget::Fsync(path) => Op::Fsync { path: path.clone() },
            PersistTarget::Fdatasync(path) => Op::Fdatasync { path: path.clone() },
            PersistTarget::Sync => Op::Sync,
        }
    }
}

/// A complete workload: the dependency (setup) prefix plus the core operation
/// sequence with its persistence points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Human-readable identifier (e.g. `"seq2-001734"` or `"known-btrfs-16"`).
    pub name: String,
    /// Dependency operations prepended by ACE phase 4 (or handwritten for
    /// corpus workloads). Executed before profiling starts measuring core
    /// behaviour, but still recorded and crash-tested like everything else.
    pub setup: Vec<Op>,
    /// The core operations and persistence points under test.
    pub ops: Vec<Op>,
}

impl Workload {
    /// Creates a workload with no setup prefix.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        Workload {
            name: name.into(),
            setup: Vec::new(),
            ops,
        }
    }

    /// Creates a workload with a setup prefix.
    pub fn with_setup(name: impl Into<String>, setup: Vec<Op>, ops: Vec<Op>) -> Self {
        Workload {
            name: name.into(),
            setup,
            ops,
        }
    }

    /// All operations in execution order (setup followed by core).
    pub fn all_ops(&self) -> impl Iterator<Item = &Op> {
        self.setup.iter().chain(self.ops.iter())
    }

    /// The skeleton: the sequence of core operation kinds, excluding
    /// persistence points and setup. This is the grouping key of §5.3.
    pub fn skeleton(&self) -> Vec<OpKind> {
        self.ops
            .iter()
            .filter(|op| !op.is_persistence_point())
            .map(Op::kind)
            .collect()
    }

    /// The skeleton as a compact string, e.g. `"link-write"`.
    pub fn skeleton_string(&self) -> String {
        self.skeleton()
            .iter()
            .map(OpKind::as_str)
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Number of core (non-persistence) operations — the paper's
    /// "sequence length".
    pub fn sequence_length(&self) -> usize {
        self.skeleton().len()
    }

    /// Number of persistence points in the core sequence.
    pub fn num_persistence_points(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| op.is_persistence_point())
            .count()
    }

    /// True if the workload ends with a persistence point, which ACE
    /// guarantees "so that it is not truncated to a workload of lower
    /// sequence length" (§5.2 phase 3).
    pub fn ends_with_persistence_point(&self) -> bool {
        self.ops.last().is_some_and(Op::is_persistence_point)
    }

    /// Total number of operations including setup and persistence points.
    pub fn total_ops(&self) -> usize {
        self.setup.len() + self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::with_setup(
            "fig4",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Mkdir { path: "B".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Rename {
                    from: "A/foo".into(),
                    to: "B/bar".into(),
                },
                Op::Sync,
                Op::Link {
                    existing: "B/bar".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        )
    }

    #[test]
    fn skeleton_excludes_setup_and_persistence() {
        let w = sample();
        assert_eq!(w.skeleton(), vec![OpKind::Rename, OpKind::Link]);
        assert_eq!(w.skeleton_string(), "rename-link");
        assert_eq!(w.sequence_length(), 2);
        assert_eq!(w.num_persistence_points(), 2);
        assert!(w.ends_with_persistence_point());
        assert_eq!(w.total_ops(), 7);
    }

    #[test]
    fn persistence_point_detection() {
        assert!(Op::Sync.is_persistence_point());
        assert!(Op::Fsync { path: "x".into() }.is_persistence_point());
        assert!(Op::Msync {
            path: "x".into(),
            offset: 0,
            len: 10
        }
        .is_persistence_point());
        assert!(!Op::Creat { path: "x".into() }.is_persistence_point());
    }

    #[test]
    fn op_paths_cover_both_arguments() {
        let op = Op::Rename {
            from: "A/foo".into(),
            to: "B/bar".into(),
        };
        assert_eq!(op.paths(), vec!["A/foo", "B/bar"]);
        assert_eq!(Op::Sync.paths(), Vec::<&str>::new());
    }

    #[test]
    fn persistence_target() {
        assert_eq!(
            Op::Fsync {
                path: "A/foo".into()
            }
            .persistence_target(),
            Some("A/foo")
        );
        assert_eq!(Op::Sync.persistence_target(), None);
    }

    #[test]
    fn ace_core_ops_count_is_14() {
        assert_eq!(OpKind::ACE_CORE_OPS.len(), 14);
        assert!(OpKind::ACE_CORE_OPS.iter().all(|k| !k.is_persistence()));
    }

    #[test]
    fn op_kind_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(OpKind::parse("chmod"), None);
    }

    #[test]
    fn falloc_mode_round_trip() {
        for mode in FallocMode::ALL {
            assert_eq!(FallocMode::parse(mode.as_str()), Some(mode));
        }
        assert!(FallocMode::KeepSize.keeps_size());
        assert!(FallocMode::PunchHole.keeps_size());
        assert!(!FallocMode::Allocate.keeps_size());
    }

    #[test]
    fn write_pattern_round_trip() {
        for pattern in WritePattern::ALL {
            assert_eq!(WritePattern::parse(pattern.as_str()), Some(pattern));
        }
    }

    #[test]
    fn persist_target_to_op() {
        assert_eq!(
            PersistTarget::Fsync("A".into()).to_op(),
            Op::Fsync { path: "A".into() }
        );
        assert_eq!(PersistTarget::Sync.to_op(), Op::Sync);
    }

    #[test]
    fn op_kind_strings_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            OpKind::Creat,
            OpKind::Mkdir,
            OpKind::Mkfifo,
            OpKind::Symlink,
            OpKind::Link,
            OpKind::Unlink,
            OpKind::Remove,
            OpKind::Rmdir,
            OpKind::Rename,
            OpKind::WriteBuffered,
            OpKind::WriteDirect,
            OpKind::WriteMmap,
            OpKind::Mmap,
            OpKind::Msync,
            OpKind::Truncate,
            OpKind::Falloc,
            OpKind::SetXattr,
            OpKind::RemoveXattr,
            OpKind::Fsync,
            OpKind::Fdatasync,
            OpKind::Sync,
        ];
        let unique: HashSet<&str> = kinds.iter().map(super::OpKind::as_str).collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
