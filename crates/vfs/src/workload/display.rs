//! Text serialization of workloads (the "high-level language" of §5.2).
//!
//! The format is line-oriented: one operation per line, a `[setup]` section
//! for dependency operations and an `[ops]` section for the core sequence.
//! [`super::parse_workload`] parses exactly what `Display` prints, and the
//! round-trip property is tested with proptest in the crate's test suite.

use std::fmt;

use crate::workload::{Op, Workload, WriteSpec};

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Creat { path } => write!(f, "creat {}", root_name(path)),
            Op::Mkdir { path } => write!(f, "mkdir {}", root_name(path)),
            Op::Mkfifo { path } => write!(f, "mkfifo {}", root_name(path)),
            Op::Symlink { target, linkpath } => {
                write!(f, "symlink {} {}", root_name(target), root_name(linkpath))
            }
            Op::Link { existing, new } => {
                write!(f, "link {} {}", root_name(existing), root_name(new))
            }
            Op::Unlink { path } => write!(f, "unlink {}", root_name(path)),
            Op::Remove { path } => write!(f, "remove {}", root_name(path)),
            Op::Rmdir { path } => write!(f, "rmdir {}", root_name(path)),
            Op::Rename { from, to } => write!(f, "rename {} {}", root_name(from), root_name(to)),
            Op::Write { path, mode, spec } => match spec {
                WriteSpec::Range { offset, len } => {
                    write!(
                        f,
                        "{} {} {} {}",
                        mode.as_str(),
                        root_name(path),
                        offset,
                        len
                    )
                }
                WriteSpec::Pattern(p) => {
                    write!(f, "{} {} {}", mode.as_str(), root_name(path), p.as_str())
                }
            },
            Op::Mmap { path, offset, len } => {
                write!(f, "mmap {} {} {}", root_name(path), offset, len)
            }
            Op::Msync { path, offset, len } => {
                write!(f, "msync {} {} {}", root_name(path), offset, len)
            }
            Op::Truncate { path, size } => write!(f, "truncate {} {}", root_name(path), size),
            Op::Falloc {
                path,
                mode,
                offset,
                len,
            } => write!(
                f,
                "falloc {} {} {} {}",
                root_name(path),
                mode.as_str(),
                offset,
                len
            ),
            Op::SetXattr { path, name, value } => {
                write!(f, "setxattr {} {} {}", root_name(path), name, value)
            }
            Op::RemoveXattr { path, name } => {
                write!(f, "removexattr {} {}", root_name(path), name)
            }
            Op::Fsync { path } => write!(f, "fsync {}", root_name(path)),
            Op::Fdatasync { path } => write!(f, "fdatasync {}", root_name(path)),
            Op::Sync => write!(f, "sync"),
        }
    }
}

/// The root directory is spelled `/` in the text format so that every
/// operation has a non-empty argument.
fn root_name(path: &str) -> &str {
    if path.is_empty() {
        "/"
    } else {
        path
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# workload {}", self.name)?;
        if !self.setup.is_empty() {
            writeln!(f, "[setup]")?;
            for op in &self.setup {
                writeln!(f, "{op}")?;
            }
        }
        writeln!(f, "[ops]")?;
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::WriteMode;
    use crate::workload::{FallocMode, WritePattern};

    #[test]
    fn op_display_matches_language() {
        assert_eq!(
            Op::Creat {
                path: "A/foo".into()
            }
            .to_string(),
            "creat A/foo"
        );
        assert_eq!(
            Op::Rename {
                from: "A/foo".into(),
                to: "B/bar".into()
            }
            .to_string(),
            "rename A/foo B/bar"
        );
        assert_eq!(
            Op::Write {
                path: "foo".into(),
                mode: WriteMode::Buffered,
                spec: WriteSpec::range(0, 4096),
            }
            .to_string(),
            "write foo 0 4096"
        );
        assert_eq!(
            Op::Write {
                path: "foo".into(),
                mode: WriteMode::Direct,
                spec: WriteSpec::Pattern(WritePattern::Append),
            }
            .to_string(),
            "dwrite foo append"
        );
        assert_eq!(
            Op::Falloc {
                path: "foo".into(),
                mode: FallocMode::KeepSize,
                offset: 8192,
                len: 8192
            }
            .to_string(),
            "falloc foo keep_size 8192 8192"
        );
        assert_eq!(Op::Fsync { path: "".into() }.to_string(), "fsync /");
        assert_eq!(Op::Sync.to_string(), "sync");
    }

    #[test]
    fn workload_display_has_sections() {
        let w = Workload::with_setup(
            "demo",
            vec![Op::Mkdir { path: "A".into() }],
            vec![
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
            ],
        );
        let text = w.to_string();
        assert!(text.contains("# workload demo"));
        assert!(text.contains("[setup]\nmkdir A"));
        assert!(text.contains("[ops]\ncreat A/foo\nfsync A/foo"));
    }
}
