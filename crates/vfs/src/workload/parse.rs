//! Parser for the workload text format produced by the `Display` impls in
//! [`super::display`].

use std::fmt;

use crate::fs::WriteMode;
use crate::workload::{FallocMode, Op, Workload, WritePattern, WriteSpec};

/// Error produced while parsing a serialized workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the text form of a workload (as produced by `Workload::to_string`).
///
/// Lines starting with `#` are comments; the workload name is taken from a
/// leading `# workload <name>` comment if present, otherwise `fallback_name`
/// is used.
pub fn parse_workload(text: &str, fallback_name: &str) -> Result<Workload, ParseError> {
    let mut name = fallback_name.to_string();
    let mut setup = Vec::new();
    let mut ops = Vec::new();
    let mut in_setup = false;
    let mut seen_section = false;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(n) = rest.strip_prefix("workload ") {
                name = n.trim().to_string();
            }
            continue;
        }
        if line == "[setup]" {
            in_setup = true;
            seen_section = true;
            continue;
        }
        if line == "[ops]" {
            in_setup = false;
            seen_section = true;
            continue;
        }
        let op = parse_op(line, line_no)?;
        if in_setup {
            setup.push(op);
        } else {
            if !seen_section {
                // Section-less files are treated as all-core ops.
            }
            ops.push(op);
        }
    }

    Ok(Workload { name, setup, ops })
}

/// Parses one operation line.
pub fn parse_op(line: &str, line_no: usize) -> Result<Op, ParseError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let cmd = tokens
        .first()
        .copied()
        .ok_or_else(|| err(line_no, "empty operation"))?;
    let arg = |i: usize| -> Result<String, ParseError> {
        tokens
            .get(i)
            .map(|s| normalize_root(s))
            .ok_or_else(|| err(line_no, format!("`{cmd}` is missing argument {i}")))
    };
    let num = |i: usize| -> Result<u64, ParseError> {
        let token = tokens
            .get(i)
            .ok_or_else(|| err(line_no, format!("`{cmd}` is missing numeric argument {i}")))?;
        token
            .parse::<u64>()
            .map_err(|_| err(line_no, format!("`{token}` is not a number")))
    };

    let op = match cmd {
        "creat" | "touch" => Op::Creat { path: arg(1)? },
        "mkdir" => Op::Mkdir { path: arg(1)? },
        "mkfifo" => Op::Mkfifo { path: arg(1)? },
        "symlink" => Op::Symlink {
            target: arg(1)?,
            linkpath: arg(2)?,
        },
        "link" => Op::Link {
            existing: arg(1)?,
            new: arg(2)?,
        },
        "unlink" => Op::Unlink { path: arg(1)? },
        "remove" => Op::Remove { path: arg(1)? },
        "rmdir" => Op::Rmdir { path: arg(1)? },
        "rename" | "mv" => Op::Rename {
            from: arg(1)?,
            to: arg(2)?,
        },
        "write" | "dwrite" | "mwrite" => {
            let mode = match cmd {
                "write" => WriteMode::Buffered,
                "dwrite" => WriteMode::Direct,
                _ => WriteMode::Mmap,
            };
            let path = arg(1)?;
            let spec_token = tokens
                .get(2)
                .ok_or_else(|| err(line_no, "write needs a range or pattern"))?;
            let spec = if let Some(pattern) = WritePattern::parse(spec_token) {
                WriteSpec::Pattern(pattern)
            } else {
                WriteSpec::Range {
                    offset: num(2)?,
                    len: num(3)?,
                }
            };
            Op::Write { path, mode, spec }
        }
        "mmap" => Op::Mmap {
            path: arg(1)?,
            offset: num(2)?,
            len: num(3)?,
        },
        "msync" => Op::Msync {
            path: arg(1)?,
            offset: num(2)?,
            len: num(3)?,
        },
        "truncate" => Op::Truncate {
            path: arg(1)?,
            size: num(2)?,
        },
        "falloc" => {
            let mode_token = tokens
                .get(2)
                .ok_or_else(|| err(line_no, "falloc needs a mode"))?;
            let mode = FallocMode::parse(mode_token)
                .ok_or_else(|| err(line_no, format!("unknown falloc mode `{mode_token}`")))?;
            Op::Falloc {
                path: arg(1)?,
                mode,
                offset: num(3)?,
                len: num(4)?,
            }
        }
        "setxattr" => Op::SetXattr {
            path: arg(1)?,
            name: arg(2)?,
            value: arg(3)?,
        },
        "removexattr" => Op::RemoveXattr {
            path: arg(1)?,
            name: arg(2)?,
        },
        "fsync" => Op::Fsync { path: arg(1)? },
        "fdatasync" => Op::Fdatasync { path: arg(1)? },
        "sync" => Op::Sync,
        other => return Err(err(line_no, format!("unknown operation `{other}`"))),
    };
    Ok(op)
}

fn normalize_root(token: &str) -> String {
    if token == "/" {
        String::new()
    } else {
        token.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_ops() {
        assert_eq!(
            parse_op("creat A/foo", 1).unwrap(),
            Op::Creat {
                path: "A/foo".into()
            }
        );
        assert_eq!(
            parse_op("rename A/foo B/bar", 1).unwrap(),
            Op::Rename {
                from: "A/foo".into(),
                to: "B/bar".into()
            }
        );
        assert_eq!(parse_op("sync", 1).unwrap(), Op::Sync);
        assert_eq!(
            parse_op("fsync /", 1).unwrap(),
            Op::Fsync { path: "".into() }
        );
    }

    #[test]
    fn parses_write_variants() {
        assert_eq!(
            parse_op("write foo 0 4096", 1).unwrap(),
            Op::Write {
                path: "foo".into(),
                mode: WriteMode::Buffered,
                spec: WriteSpec::range(0, 4096)
            }
        );
        assert_eq!(
            parse_op("dwrite foo append", 1).unwrap(),
            Op::Write {
                path: "foo".into(),
                mode: WriteMode::Direct,
                spec: WriteSpec::Pattern(WritePattern::Append)
            }
        );
        assert_eq!(
            parse_op("falloc foo zero_range_keep_size 16384 4096", 1).unwrap(),
            Op::Falloc {
                path: "foo".into(),
                mode: FallocMode::ZeroRangeKeepSize,
                offset: 16384,
                len: 4096
            }
        );
    }

    #[test]
    fn rejects_unknown_ops_and_bad_numbers() {
        assert!(parse_op("explode foo", 3).is_err());
        let e = parse_op("truncate foo abc", 7).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn workload_round_trip() {
        let text = "\
# workload demo
[setup]
mkdir A
creat A/foo
[ops]
link A/foo A/bar
fsync A/bar
";
        let workload = parse_workload(text, "fallback").unwrap();
        assert_eq!(workload.name, "demo");
        assert_eq!(workload.setup.len(), 2);
        assert_eq!(workload.ops.len(), 2);
        let reparsed = parse_workload(&workload.to_string(), "x").unwrap();
        assert_eq!(reparsed, workload);
    }

    #[test]
    fn sectionless_text_is_all_core_ops() {
        let workload = parse_workload("creat foo\nfsync foo\n", "w").unwrap();
        assert_eq!(workload.name, "w");
        assert!(workload.setup.is_empty());
        assert_eq!(workload.ops.len(), 2);
    }
}
