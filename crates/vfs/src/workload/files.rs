//! The bounded file-and-directory sets ACE draws operation arguments from.
//!
//! Table 3: the paper bounds workloads to "2 directories of depth 2, each
//! with 2 unique files"; phase 2 "uses two files at the top level and two
//! sub-directories with two files each as arguments for metadata-related
//! operations". The `seq-3-nested` workloads additionally use a directory at
//! depth 3.

/// A bounded set of directories and file names available to a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSet {
    /// Directories (not including the root), in canonical order.
    dirs: Vec<String>,
    /// Regular-file paths, in canonical order.
    files: Vec<String>,
}

impl FileSet {
    /// Builds a file set from explicit directory and file lists.
    pub fn new(dirs: Vec<String>, files: Vec<String>) -> Self {
        FileSet { dirs, files }
    }

    /// The paper's default bound (Table 3): two top-level files (`foo`,
    /// `bar`), two directories (`A`, `B`), and two files in each directory.
    pub fn paper_default() -> Self {
        FileSet {
            dirs: vec!["A".into(), "B".into()],
            files: vec![
                "foo".into(),
                "bar".into(),
                "A/foo".into(),
                "A/bar".into(),
                "B/foo".into(),
                "B/bar".into(),
            ],
        }
    }

    /// The `seq-3-nested` bound: adds one nested directory `A/C` with two
    /// files at depth 3 (§6.2: "metadata operations involving a file at depth
    /// three").
    pub fn nested() -> Self {
        let mut set = FileSet::paper_default();
        set.dirs.push("A/C".into());
        set.files.push("A/C/foo".into());
        set.files.push("A/C/bar".into());
        set
    }

    /// A deliberately tiny set (one directory, two files) for unit tests and
    /// quick demos.
    pub fn minimal() -> Self {
        FileSet {
            dirs: vec!["A".into()],
            files: vec!["foo".into(), "A/foo".into()],
        }
    }

    /// Directories available to workloads (excluding the root).
    pub fn dirs(&self) -> &[String] {
        &self.dirs
    }

    /// Files available to workloads.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// All paths (directories then files).
    pub fn all_paths(&self) -> Vec<String> {
        let mut all = self.dirs.clone();
        all.extend(self.files.iter().cloned());
        all
    }

    /// Directories plus the root path (`""`), the candidates for `fsync` of a
    /// directory.
    pub fn dirs_and_root(&self) -> Vec<String> {
        let mut all = vec![String::new()];
        all.extend(self.dirs.iter().cloned());
        all
    }

    /// Maximum directory depth of any path in the set.
    pub fn max_depth(&self) -> usize {
        self.all_paths()
            .iter()
            .map(|p| crate::path::depth(p))
            .max()
            .unwrap_or(0)
    }

    /// Number of files per directory level, used when reporting bounds.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Number of directories (excluding the root).
    pub fn num_dirs(&self) -> usize {
        self.dirs.len()
    }
}

impl Default for FileSet {
    fn default() -> Self {
        FileSet::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table3() {
        let set = FileSet::paper_default();
        assert_eq!(set.num_dirs(), 2);
        assert_eq!(set.num_files(), 6);
        assert_eq!(set.max_depth(), 2);
        assert!(set.files().contains(&"A/bar".to_string()));
    }

    #[test]
    fn nested_adds_depth_three() {
        let set = FileSet::nested();
        assert_eq!(set.max_depth(), 3);
        assert!(set.files().contains(&"A/C/foo".to_string()));
        assert_eq!(set.num_dirs(), 3);
    }

    #[test]
    fn dirs_and_root_includes_root() {
        let set = FileSet::paper_default();
        let dirs = set.dirs_and_root();
        assert_eq!(dirs[0], "");
        assert_eq!(dirs.len(), 3);
    }

    #[test]
    fn all_paths_is_dirs_then_files() {
        let set = FileSet::minimal();
        assert_eq!(set.all_paths(), vec!["A", "foo", "A/foo"]);
    }
}
