//! Shared on-disk layout helpers for the simulated file systems.
//!
//! Every file system in this workspace persists two kinds of structures
//! through its block device: large *blobs* (serialized trees, checkpoints,
//! journal transactions, fsync logs) and a single *superblock* in block 0
//! that locates the current blobs. Blobs are written copy-on-write style to
//! fresh blocks from a bump allocator, and the superblock is flipped last
//! with FLUSH+FUA — the write ordering every journaling/COW file system
//! relies on for crash consistency.

use b3_block::{BlockDevice, BlockIndex, IoFlags, BLOCK_SIZE};

use crate::codec::{Decoder, Encoder};
use crate::error::{FsError, FsResult};

/// First block available to blob allocation (block 0 is the superblock; a
/// few blocks are reserved for future use, mirroring real layouts that keep
/// backup superblocks).
pub const FIRST_DATA_BLOCK: u64 = 8;

/// Location and length of one serialized blob on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlobRef {
    /// First block of the blob (0 = no blob).
    pub start: BlockIndex,
    /// Length of the blob in bytes.
    pub len: u64,
}

impl BlobRef {
    /// A reference to "no blob".
    pub const EMPTY: BlobRef = BlobRef { start: 0, len: 0 };

    /// True if the reference points at an actual blob.
    pub fn is_present(&self) -> bool {
        self.start != 0 && self.len > 0
    }

    /// Number of blocks the blob occupies.
    pub fn num_blocks(&self) -> u64 {
        self.len.div_ceil(BLOCK_SIZE as u64)
    }
}

/// The generic superblock shared by the simulated file systems.
///
/// `tree` points at the last committed full tree (the "FS tree" in btrfs
/// terms, the last checkpoint in F2FS terms, the primary metadata image in
/// ext4 terms); `log` points at the persistence log written by fsync-class
/// operations (the btrfs log tree, the F2FS roll-forward node log, the ext4
/// journal). `alloc_cursor` is the bump allocator position for blob writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    /// File-system magic number (distinct per implementation).
    pub magic: u32,
    /// Commit generation, incremented on every full commit.
    pub generation: u64,
    /// Last committed full tree.
    pub tree: BlobRef,
    /// Current persistence log (empty after a full commit).
    pub log: BlobRef,
    /// Next free block for blob allocation.
    pub alloc_cursor: BlockIndex,
    /// Set while the file system is mounted read-write; a cleanly unmounted
    /// image has this cleared. Mounting an image with the flag set triggers
    /// crash recovery.
    pub dirty: bool,
}

impl SuperBlock {
    /// Creates a fresh superblock for a newly formatted file system.
    pub fn new(magic: u32) -> Self {
        SuperBlock {
            magic,
            generation: 0,
            tree: BlobRef::EMPTY,
            log: BlobRef::EMPTY,
            alloc_cursor: FIRST_DATA_BLOCK,
            dirty: false,
        }
    }

    /// Serializes the superblock into a single block payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(self.magic);
        enc.put_u64(self.generation);
        enc.put_u64(self.tree.start);
        enc.put_u64(self.tree.len);
        enc.put_u64(self.log.start);
        enc.put_u64(self.log.len);
        enc.put_u64(self.alloc_cursor);
        enc.put_bool(self.dirty);
        enc.finish()
    }

    /// Decodes a superblock previously written with [`SuperBlock::encode`],
    /// verifying the expected magic.
    pub fn decode(bytes: &[u8], expected_magic: u32) -> FsResult<SuperBlock> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.get_u32()?;
        if magic != expected_magic {
            return Err(FsError::Unmountable(format!(
                "bad superblock magic {magic:#x}, expected {expected_magic:#x}"
            )));
        }
        Ok(SuperBlock {
            magic,
            generation: dec.get_u64()?,
            tree: BlobRef {
                start: dec.get_u64()?,
                len: dec.get_u64()?,
            },
            log: BlobRef {
                start: dec.get_u64()?,
                len: dec.get_u64()?,
            },
            alloc_cursor: dec.get_u64()?,
            dirty: dec.get_bool()?,
        })
    }

    /// Writes the superblock to block 0 with FLUSH|FUA semantics (the
    /// ordering point of every commit).
    pub fn write_to(&self, dev: &mut dyn BlockDevice) -> FsResult<()> {
        dev.flush()?;
        dev.write_block(
            0,
            &self.encode(),
            IoFlags::META | IoFlags::FLUSH | IoFlags::FUA,
        )?;
        Ok(())
    }

    /// Reads and validates the superblock from block 0.
    pub fn read_from(dev: &dyn BlockDevice, expected_magic: u32) -> FsResult<SuperBlock> {
        let block = dev.read_block(0)?;
        SuperBlock::decode(&block, expected_magic)
    }
}

/// Writes `bytes` as a blob starting at the superblock's allocation cursor,
/// advancing the cursor. Returns the blob reference. The data is written
/// with META|SYNC flags (these writes happen on persistence paths).
pub fn write_blob(
    dev: &mut dyn BlockDevice,
    sb: &mut SuperBlock,
    bytes: &[u8],
    flags: IoFlags,
) -> FsResult<BlobRef> {
    let start = sb.alloc_cursor;
    let num_blocks = (bytes.len() as u64).div_ceil(BLOCK_SIZE as u64).max(1);
    if start + num_blocks >= dev.num_blocks() {
        // Wrap the bump allocator back to the start of the data area. With
        // the paper's 100 MB image and three-operation workloads this never
        // overwrites a live blob; it simply keeps long-running property
        // tests from exhausting the device.
        sb.alloc_cursor = FIRST_DATA_BLOCK;
        return write_blob(dev, sb, bytes, flags);
    }
    if bytes.is_empty() {
        dev.write_block(start, &[], flags)?;
    } else {
        dev.write_blocks(start, bytes, flags)?;
    }
    sb.alloc_cursor = start + num_blocks;
    Ok(BlobRef {
        start,
        len: bytes.len() as u64,
    })
}

/// Reads a blob previously written with [`write_blob`].
pub fn read_blob(dev: &dyn BlockDevice, blob: BlobRef) -> FsResult<Vec<u8>> {
    if !blob.is_present() {
        return Ok(Vec::new());
    }
    let mut bytes = dev.read_blocks(blob.start, blob.num_blocks())?;
    bytes.truncate(blob.len as usize);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;

    const MAGIC: u32 = 0xc0ff_ee01;

    #[test]
    fn superblock_round_trip() {
        let mut dev = RamDisk::new(64);
        let mut sb = SuperBlock::new(MAGIC);
        sb.generation = 5;
        sb.tree = BlobRef { start: 9, len: 777 };
        sb.dirty = true;
        sb.write_to(&mut dev).unwrap();
        let read = SuperBlock::read_from(&dev, MAGIC).unwrap();
        assert_eq!(read, sb);
    }

    #[test]
    fn wrong_magic_is_unmountable() {
        let mut dev = RamDisk::new(64);
        SuperBlock::new(MAGIC).write_to(&mut dev).unwrap();
        let err = SuperBlock::read_from(&dev, 0x1234).unwrap_err();
        assert!(matches!(err, FsError::Unmountable(_)));
    }

    #[test]
    fn zeroed_device_is_unmountable() {
        let dev = RamDisk::new(64);
        assert!(SuperBlock::read_from(&dev, MAGIC).is_err());
    }

    #[test]
    fn blob_round_trip_and_cursor_advance() {
        let mut dev = RamDisk::new(64);
        let mut sb = SuperBlock::new(MAGIC);
        let data = vec![0x5au8; BLOCK_SIZE + 123];
        let blob = write_blob(&mut dev, &mut sb, &data, IoFlags::META).unwrap();
        assert_eq!(blob.start, FIRST_DATA_BLOCK);
        assert_eq!(blob.num_blocks(), 2);
        assert_eq!(sb.alloc_cursor, FIRST_DATA_BLOCK + 2);
        assert_eq!(read_blob(&dev, blob).unwrap(), data);

        let second = write_blob(&mut dev, &mut sb, b"tiny", IoFlags::META).unwrap();
        assert_eq!(second.start, FIRST_DATA_BLOCK + 2);
        assert_eq!(read_blob(&dev, second).unwrap(), b"tiny");
    }

    #[test]
    fn empty_blob_reference() {
        let dev = RamDisk::new(16);
        assert!(!BlobRef::EMPTY.is_present());
        assert!(read_blob(&dev, BlobRef::EMPTY).unwrap().is_empty());
    }

    #[test]
    fn allocator_wraps_when_full() {
        let mut dev = RamDisk::new(16);
        let mut sb = SuperBlock::new(MAGIC);
        sb.alloc_cursor = 15;
        let data = vec![1u8; 2 * BLOCK_SIZE];
        let blob = write_blob(&mut dev, &mut sb, &data, IoFlags::DATA).unwrap();
        assert_eq!(blob.start, FIRST_DATA_BLOCK);
    }
}
