//! Kernel-era model.
//!
//! The paper reproduces bugs "across seven kernel versions" (§1) and reports
//! for each new bug the kernel release it has been present since (Table 5).
//! Real kernels differ in which crash-consistency fixes they contain; our
//! simulated file systems expose the same dimension through [`KernelEra`]:
//! constructing a file system for an era enables exactly the injected bugs
//! that were unfixed in that era.

use std::fmt;

/// A Linux kernel release relevant to the bug study.
///
/// The ordering (`V3_12 < … < V4_16 < Patched`) matches release order;
/// `Patched` represents a hypothetical kernel with every bug in the corpus
/// fixed, and is what a "correct" file system is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelEra {
    /// Linux 3.12 (2013).
    V3_12,
    /// Linux 3.13 (2014) — the era most studied btrfs bugs date from.
    V3_13,
    /// Linux 3.16 (2014).
    V3_16,
    /// Linux 4.1.1 (2015).
    V4_1_1,
    /// Linux 4.4 (2016).
    V4_4,
    /// Linux 4.15 (2018).
    V4_15,
    /// Linux 4.16 (2018) — the kernel all of §6's testing ran on.
    V4_16,
    /// Every corpus bug fixed (used as the regression-free baseline).
    Patched,
}

impl KernelEra {
    /// All concrete kernel versions from the study, oldest first
    /// (excluding the synthetic [`KernelEra::Patched`]).
    pub const ALL_VERSIONS: [KernelEra; 7] = [
        KernelEra::V3_12,
        KernelEra::V3_13,
        KernelEra::V3_16,
        KernelEra::V4_1_1,
        KernelEra::V4_4,
        KernelEra::V4_15,
        KernelEra::V4_16,
    ];

    /// The kernel used for the paper's evaluation runs (§6.2: "All the tests
    /// are run only on 4.16 kernel").
    pub const EVALUATION: KernelEra = KernelEra::V4_16;

    /// Human-readable version string.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelEra::V3_12 => "3.12",
            KernelEra::V3_13 => "3.13",
            KernelEra::V3_16 => "3.16",
            KernelEra::V4_1_1 => "4.1.1",
            KernelEra::V4_4 => "4.4",
            KernelEra::V4_15 => "4.15",
            KernelEra::V4_16 => "4.16",
            KernelEra::Patched => "patched",
        }
    }

    /// Parses a version string as printed by [`KernelEra::as_str`].
    pub fn parse(s: &str) -> Option<KernelEra> {
        match s {
            "3.12" => Some(KernelEra::V3_12),
            "3.13" => Some(KernelEra::V3_13),
            "3.16" => Some(KernelEra::V3_16),
            "4.1.1" => Some(KernelEra::V4_1_1),
            "4.4" => Some(KernelEra::V4_4),
            "4.15" => Some(KernelEra::V4_15),
            "4.16" => Some(KernelEra::V4_16),
            "patched" => Some(KernelEra::Patched),
            _ => None,
        }
    }

    /// True if a bug introduced in `introduced` and (optionally) fixed in
    /// `fixed_in` is present in this era.
    pub fn bug_present(&self, introduced: KernelEra, fixed_in: Option<KernelEra>) -> bool {
        if *self == KernelEra::Patched {
            return false;
        }
        if *self < introduced {
            return false;
        }
        match fixed_in {
            Some(fixed) => *self < fixed,
            None => true,
        }
    }
}

impl fmt::Display for KernelEra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_release_order() {
        assert!(KernelEra::V3_12 < KernelEra::V3_13);
        assert!(KernelEra::V3_16 < KernelEra::V4_1_1);
        assert!(KernelEra::V4_16 < KernelEra::Patched);
    }

    #[test]
    fn round_trip_parse() {
        for era in KernelEra::ALL_VERSIONS {
            assert_eq!(KernelEra::parse(era.as_str()), Some(era));
        }
        assert_eq!(KernelEra::parse("patched"), Some(KernelEra::Patched));
        assert_eq!(KernelEra::parse("2.6"), None);
    }

    #[test]
    fn bug_presence_window() {
        // Bug introduced in 3.13, fixed in 4.4.
        let introduced = KernelEra::V3_13;
        let fixed = Some(KernelEra::V4_4);
        assert!(!KernelEra::V3_12.bug_present(introduced, fixed));
        assert!(KernelEra::V3_13.bug_present(introduced, fixed));
        assert!(KernelEra::V3_16.bug_present(introduced, fixed));
        assert!(!KernelEra::V4_4.bug_present(introduced, fixed));
        assert!(!KernelEra::V4_16.bug_present(introduced, fixed));
        assert!(!KernelEra::Patched.bug_present(introduced, fixed));
    }

    #[test]
    fn unfixed_bug_present_in_all_later_eras() {
        let introduced = KernelEra::V3_13;
        assert!(KernelEra::V4_16.bug_present(introduced, None));
        assert!(!KernelEra::Patched.bug_present(introduced, None));
    }

    #[test]
    fn evaluation_kernel_is_4_16() {
        assert_eq!(KernelEra::EVALUATION.as_str(), "4.16");
    }
}
