//! VFS layer shared by every file system and tool in the B3 workspace.
//!
//! This crate defines:
//!
//! * the POSIX-style [`FileSystem`] trait that all simulated file systems
//!   implement and that CrashMonkey drives black-box,
//! * the [`FsSpec`] factory trait used to format (`mkfs`) and mount file
//!   systems on arbitrary [block devices](b3_block::BlockDevice),
//! * common [`Metadata`], [`FileType`], and [error](FsError) types,
//! * the [`KernelEra`] model used to express "bug present since kernel X,
//!   fixed in Y",
//! * the per-file-system [`GuaranteeProfile`] describing which
//!   crash-consistency guarantees a file system promises beyond POSIX
//!   (the paper confirmed these with each file system's developers, §5.1),
//! * the *workload language*: the [`Op`]/[`Workload`] IR that ACE generates
//!   and CrashMonkey executes, together with its text serialization, and
//! * [`LogicalSnapshot`]s — full logical captures of a file system's state
//!   used as oracles by the AutoChecker.

pub mod codec;
pub mod diskfmt;
pub mod era;
pub mod error;
pub mod exec;
pub mod fs;
pub mod metadata;
pub mod path;
pub mod recover;
pub mod snapshot;
pub mod tree;
pub mod workload;

pub use era::KernelEra;
pub use error::{FsError, FsResult};
pub use exec::{apply_op, apply_workload, ExecPolicy, Executor};
pub use fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
pub use metadata::{FileType, Metadata};
pub use recover::{CommittedTreeCache, RecoverDelta, RemountSession};
pub use snapshot::{EntryInterner, EntrySnapshot, LogicalSnapshot, SnapshotDiff};
pub use tree::{Inode, InodeId, MemTree, ROOT_INO};
pub use workload::{
    FallocMode, FileSet, Op, OpKind, PersistTarget, Workload, WritePattern, WriteSpec,
};
