//! Executing workload operations against a [`FileSystem`].
//!
//! The executor is the reproduction's equivalent of the C++ test programs
//! ACE's adapter emits for CrashMonkey: it turns each [`Op`] into calls on
//! the file-system under test, resolves symbolic write patterns into
//! concrete byte ranges, and fills writes with deterministic data so the
//! AutoChecker can detect data loss and corruption byte-for-byte.

use crate::error::{FsError, FsResult};
use crate::fs::FileSystem;
use crate::workload::{Op, Workload, WritePattern, WriteSpec};

/// Size of one "block" of workload data (matches the 4 KiB writes that
/// dominate the paper's workloads).
pub const WRITE_BLOCK: u64 = 4096;

/// Length used for deliberately unaligned appends (mirrors the partial-page
/// writes in corpus workloads such as the btrfs punch-hole bug).
pub const UNALIGNED_LEN: u64 = 3000;

/// Policy knobs for workload execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy {
    /// Treat `EEXIST` from `creat`/`mkdir` as success, like `touch` and
    /// `mkdir -p`. ACE-generated workloads rely on this because dependency
    /// resolution may create a file that a later core `creat` also names.
    pub idempotent_creates: bool,
    /// Treat `ENOENT` from `unlink`/`remove`/`rmdir` as success. Disabled by
    /// default; corpus workloads are exact and should not need it.
    pub ignore_missing_removes: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            idempotent_creates: true,
            ignore_missing_removes: false,
        }
    }
}

/// Stateful workload executor.
#[derive(Debug, Default)]
pub struct Executor {
    policy: ExecPolicy,
    op_counter: u64,
}

impl Executor {
    /// Creates an executor with the default policy.
    pub fn new() -> Self {
        Executor::with_policy(ExecPolicy::default())
    }

    /// Creates an executor with an explicit policy.
    pub fn with_policy(policy: ExecPolicy) -> Self {
        Executor {
            policy,
            op_counter: 0,
        }
    }

    /// Number of operations applied so far.
    pub fn ops_applied(&self) -> u64 {
        self.op_counter
    }

    /// Applies one operation to the file system.
    pub fn apply(&mut self, fs: &mut dyn FileSystem, op: &Op) -> FsResult<()> {
        self.op_counter += 1;
        let seed = self.op_counter;
        let result = match op {
            Op::Creat { path } => soften_exists(fs.create(path), self.policy.idempotent_creates),
            Op::Mkdir { path } => soften_exists(fs.mkdir(path), self.policy.idempotent_creates),
            Op::Mkfifo { path } => soften_exists(fs.mkfifo(path), self.policy.idempotent_creates),
            Op::Symlink { target, linkpath } => fs.symlink(target, linkpath),
            Op::Link { existing, new } => fs.link(existing, new),
            Op::Unlink { path } => {
                soften_missing(fs.unlink(path), self.policy.ignore_missing_removes)
            }
            Op::Remove { path } => {
                let result = match fs.metadata(path) {
                    Ok(meta) if meta.is_dir() => fs.rmdir(path),
                    Ok(_) => fs.unlink(path),
                    Err(e) => Err(e),
                };
                soften_missing(result, self.policy.ignore_missing_removes)
            }
            Op::Rmdir { path } => {
                soften_missing(fs.rmdir(path), self.policy.ignore_missing_removes)
            }
            Op::Rename { from, to } => fs.rename(from, to),
            Op::Write { path, mode, spec } => {
                let (offset, len) = resolve_write(fs, path, *spec)?;
                let data = fill_data(seed, offset, len);
                fs.write(path, offset, &data, *mode)
            }
            Op::Mmap { path, .. } => {
                // Mapping itself does not change durable state; it only
                // requires the file to exist.
                fs.metadata(path).map(|_| ())
            }
            Op::Msync { path, offset, len } => fs.msync(path, *offset, *len),
            Op::Truncate { path, size } => fs.truncate(path, *size),
            Op::Falloc {
                path,
                mode,
                offset,
                len,
            } => fs.fallocate(path, *mode, *offset, *len),
            Op::SetXattr { path, name, value } => fs.setxattr(path, name, value.as_bytes()),
            Op::RemoveXattr { path, name } => fs.removexattr(path, name),
            Op::Fsync { path } => fs.fsync(path),
            Op::Fdatasync { path } => fs.fdatasync(path),
            Op::Sync => fs.sync(),
        };
        result
    }

    /// Applies every operation of a workload (setup then core).
    pub fn apply_all(&mut self, fs: &mut dyn FileSystem, workload: &Workload) -> FsResult<()> {
        for op in workload.all_ops() {
            self.apply(fs, op)?;
        }
        Ok(())
    }
}

/// Applies one operation with a fresh default-policy executor.
pub fn apply_op(fs: &mut dyn FileSystem, op: &Op) -> FsResult<()> {
    Executor::new().apply(fs, op)
}

/// Applies a whole workload with a fresh default-policy executor.
pub fn apply_workload(fs: &mut dyn FileSystem, workload: &Workload) -> FsResult<()> {
    Executor::new().apply_all(fs, workload)
}

/// Resolves a [`WriteSpec`] into a concrete `(offset, len)` against the
/// file's current size. Patterns on a missing file behave as writes from
/// offset 0, so ACE's phase-4 dependency resolution (which creates the file
/// first) and hand-written corpus workloads behave identically.
pub fn resolve_write(fs: &dyn FileSystem, path: &str, spec: WriteSpec) -> FsResult<(u64, u64)> {
    match spec {
        WriteSpec::Range { offset, len } => Ok((offset, len)),
        WriteSpec::Pattern(pattern) => {
            let size = match fs.metadata(path) {
                Ok(meta) => meta.size,
                Err(FsError::NotFound(_)) => 0,
                Err(e) => return Err(e),
            };
            Ok(resolve_pattern(pattern, size))
        }
    }
}

/// Pure pattern-to-range resolution (exposed for ACE's tests).
pub fn resolve_pattern(pattern: WritePattern, file_size: u64) -> (u64, u64) {
    match pattern {
        WritePattern::Append => (file_size, WRITE_BLOCK),
        WritePattern::AppendUnaligned => (file_size, UNALIGNED_LEN),
        WritePattern::OverwriteStart => (0, WRITE_BLOCK),
        WritePattern::OverwriteMiddle => {
            let mid = (file_size / 2) & !511;
            (mid, WRITE_BLOCK)
        }
        WritePattern::OverwriteEnd => {
            let start = file_size.saturating_sub(WRITE_BLOCK / 2);
            (start, WRITE_BLOCK)
        }
    }
}

/// Deterministic fill data for a write: a function of the op sequence number
/// and the absolute file offset, so every byte is distinguishable from both
/// zeroes and the data written by any other operation.
pub fn fill_data(seed: u64, offset: u64, len: u64) -> Vec<u8> {
    let mut data = Vec::with_capacity(len as usize);
    for i in 0..len {
        let pos = offset + i;
        let byte = (seed as u8)
            .wrapping_mul(31)
            .wrapping_add((pos / 512) as u8)
            .wrapping_add(0x41);
        data.push(byte);
    }
    data
}

fn soften_exists(result: FsResult<()>, soften: bool) -> FsResult<()> {
    match result {
        Err(FsError::AlreadyExists(_)) if soften => Ok(()),
        other => other,
    }
}

fn soften_missing(result: FsResult<()>, soften: bool) -> FsResult<()> {
    match result {
        Err(FsError::NotFound(_)) if soften => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_resolution_on_empty_file() {
        assert_eq!(resolve_pattern(WritePattern::Append, 0), (0, WRITE_BLOCK));
        assert_eq!(
            resolve_pattern(WritePattern::OverwriteStart, 0),
            (0, WRITE_BLOCK)
        );
        assert_eq!(
            resolve_pattern(WritePattern::OverwriteMiddle, 0),
            (0, WRITE_BLOCK)
        );
        assert_eq!(
            resolve_pattern(WritePattern::OverwriteEnd, 0),
            (0, WRITE_BLOCK)
        );
    }

    #[test]
    fn pattern_resolution_on_16k_file() {
        let size = 16 * 1024;
        assert_eq!(
            resolve_pattern(WritePattern::Append, size),
            (size, WRITE_BLOCK)
        );
        assert_eq!(
            resolve_pattern(WritePattern::AppendUnaligned, size),
            (size, UNALIGNED_LEN)
        );
        assert_eq!(
            resolve_pattern(WritePattern::OverwriteMiddle, size),
            (8192, WRITE_BLOCK)
        );
        // Overwrite-end straddles EOF: starts 2 KiB before the end.
        assert_eq!(
            resolve_pattern(WritePattern::OverwriteEnd, size),
            (size - 2048, WRITE_BLOCK)
        );
    }

    #[test]
    fn fill_data_is_deterministic_and_offset_sensitive() {
        let a = fill_data(3, 0, 1024);
        let b = fill_data(3, 0, 1024);
        assert_eq!(a, b);
        let shifted = fill_data(3, 512, 1024);
        assert_ne!(a, shifted);
        let other_op = fill_data(4, 0, 1024);
        assert_ne!(a, other_op);
        assert!(
            a.iter().all(|&byte| byte != 0),
            "fill data must be non-zero"
        );
    }

    #[test]
    fn softening_helpers() {
        assert!(soften_exists(Err(FsError::AlreadyExists("x".into())), true).is_ok());
        assert!(soften_exists(Err(FsError::AlreadyExists("x".into())), false).is_err());
        assert!(soften_missing(Err(FsError::NotFound("x".into())), true).is_ok());
        assert!(soften_missing(Err(FsError::NoSpace), true).is_err());
    }
}
