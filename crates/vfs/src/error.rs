//! File-system error types.

use std::fmt;

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by simulated file systems.
///
/// The variants mirror the POSIX errno values the corresponding kernel
/// operations return, plus two crash-testing-specific variants:
/// [`FsError::Corrupted`] (internal inconsistency detected while the file
/// system is mounted) and [`FsError::Unmountable`] (recovery failed, the
/// image cannot be mounted — the most severe consequence in the paper's
/// Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: a path component does not exist.
    NotFound(String),
    /// EEXIST: the target already exists.
    AlreadyExists(String),
    /// ENOTDIR: a non-directory was used as a directory.
    NotADirectory(String),
    /// EISDIR: a directory was used where a file was required.
    IsADirectory(String),
    /// ENOTEMPTY: attempted to remove a non-empty directory.
    DirectoryNotEmpty(String),
    /// EINVAL: invalid argument (bad offset, bad rename, …).
    InvalidArgument(String),
    /// ENOSPC: the device is out of blocks.
    NoSpace,
    /// ENODATA: the requested extended attribute does not exist.
    NoXattr(String),
    /// EMLINK / ELOOP style errors.
    TooManyLinks(String),
    /// EROFS: the file system is mounted read-only.
    ReadOnly,
    /// The operation is not supported by this file system.
    Unsupported(String),
    /// An underlying block-device error.
    Device(String),
    /// The file system detected an internal inconsistency at runtime
    /// (analogous to the kernel remounting read-only or logging a
    /// corruption warning).
    Corrupted(String),
    /// Recovery failed; the image cannot be mounted. Mirrors the paper's
    /// "file system becomes un-mountable" consequence (e.g. Figure 1).
    Unmountable(String),
}

impl FsError {
    /// Short machine-readable tag, used when grouping bug reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FsError::NotFound(_) => "ENOENT",
            FsError::AlreadyExists(_) => "EEXIST",
            FsError::NotADirectory(_) => "ENOTDIR",
            FsError::IsADirectory(_) => "EISDIR",
            FsError::DirectoryNotEmpty(_) => "ENOTEMPTY",
            FsError::InvalidArgument(_) => "EINVAL",
            FsError::NoSpace => "ENOSPC",
            FsError::NoXattr(_) => "ENODATA",
            FsError::TooManyLinks(_) => "EMLINK",
            FsError::ReadOnly => "EROFS",
            FsError::Unsupported(_) => "ENOTSUP",
            FsError::Device(_) => "EIO",
            FsError::Corrupted(_) => "CORRUPTED",
            FsError::Unmountable(_) => "UNMOUNTABLE",
        }
    }

    /// True for errors that indicate the file system itself is damaged
    /// (rather than the caller misusing the API).
    pub fn is_integrity_failure(&self) -> bool {
        matches!(self, FsError::Corrupted(_) | FsError::Unmountable(_))
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoXattr(n) => write!(f, "no such extended attribute: {n}"),
            FsError::TooManyLinks(p) => write!(f, "too many links: {p}"),
            FsError::ReadOnly => write!(f, "read-only file system"),
            FsError::Unsupported(m) => write!(f, "operation not supported: {m}"),
            FsError::Device(m) => write!(f, "device error: {m}"),
            FsError::Corrupted(m) => write!(f, "file system corrupted: {m}"),
            FsError::Unmountable(m) => write!(f, "file system unmountable: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<b3_block::BlockError> for FsError {
    fn from(err: b3_block::BlockError) -> Self {
        FsError::Device(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(FsError::NotFound("x".into()).tag(), "ENOENT");
        assert_eq!(FsError::Unmountable("x".into()).tag(), "UNMOUNTABLE");
        assert_eq!(FsError::NoSpace.tag(), "ENOSPC");
    }

    #[test]
    fn integrity_failures() {
        assert!(FsError::Corrupted("bad tree".into()).is_integrity_failure());
        assert!(FsError::Unmountable("log replay".into()).is_integrity_failure());
        assert!(!FsError::NotFound("f".into()).is_integrity_failure());
    }

    #[test]
    fn block_error_converts() {
        let err: FsError = b3_block::BlockError::ReadOnly.into();
        assert_eq!(err.tag(), "EIO");
    }

    #[test]
    fn display_includes_path() {
        let err = FsError::AlreadyExists("A/foo".into());
        assert!(err.to_string().contains("A/foo"));
    }
}
