//! Static persistence-order analysis of recorded workload executions.
//!
//! The B3 checker is dynamic: every crash state is constructed, mounted,
//! and compared against an oracle. This crate adds the static layer in
//! front of it — WITCHER-style persistence-ordering analysis over the
//! recorded block IO stream (`b3_block::record`) and the syscall-level ops
//! that produced it:
//!
//! * a **happens-before graph** over the log, ordered by flush barriers
//!   (writes between two barriers form one *flush epoch* and are mutually
//!   unordered);
//! * a **persistence-race report** — write pairs and rename/fsync patterns
//!   left unordered at a crash point, mapped back to the syscall span that
//!   produced them ([`analyze`], printed by the `b3-analyze` binary);
//! * a **crash-state triage** — each crash point partitioned into *hazard
//!   windows* (states that can differ across legal reorderings) and
//!   *provably-quiescent* states (bit-identical to an already-tested
//!   neighbor, established via [`StateDigest`] content digests). The
//!   dynamic checker's `CrashPointPolicy::AllTriaged` tests only the new
//!   states and reuses recorded verdicts for the quiescent ones (see
//!   docs/ANALYSIS.md).

pub mod digest;
pub mod hb;

pub use digest::{state_digests, Digest128, StateDigest};
pub use hb::{analyze, Analysis, CrashWindow, PersistenceRace, RaceKind, RaceSite, WindowClass};

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::{BlockDevice, IoFlags, RamDisk, RecordingDevice};
    use b3_vfs::workload::Op;
    use b3_vfs::Workload;

    fn fsync(path: &str) -> Op {
        Op::Fsync { path: path.into() }
    }

    /// Builds a log by hand: each element is a tiny script instruction.
    enum Step {
        Write(u64, &'static [u8]),
        Flush,
        Checkpoint,
    }

    fn record(steps: &[Step]) -> b3_block::IoLog {
        let mut dev = RecordingDevice::new(Box::new(RamDisk::new(64)));
        let handle = dev.log_handle();
        for step in steps {
            match step {
                Step::Write(block, data) => {
                    dev.write_block(*block, data, IoFlags::META).unwrap();
                }
                Step::Flush => dev.flush().unwrap(),
                Step::Checkpoint => {
                    handle.checkpoint();
                }
            }
        }
        handle.snapshot()
    }

    #[test]
    fn ordered_window_has_no_races() {
        let log = record(&[
            Step::Write(1, b"a"),
            Step::Flush,
            Step::Write(2, b"b"),
            Step::Flush,
            Step::Checkpoint,
        ]);
        let workload = Workload::new("ordered", vec![Op::Creat { path: "f".into() }, fsync("f")]);
        let analysis = analyze(&log, &workload, true);
        assert_eq!(analysis.windows.len(), 1);
        assert_eq!(analysis.windows[0].class, WindowClass::Ordered);
        assert!(analysis.races.is_empty());
        assert_eq!(analysis.epochs, 3);
        assert_eq!(analysis.windows[0].op_span, Some((0, 1)));
    }

    #[test]
    fn unordered_writes_make_a_hazard_window() {
        let log = record(&[Step::Write(1, b"a"), Step::Write(2, b"b"), Step::Checkpoint]);
        let workload = Workload::new("racy", vec![Op::Creat { path: "f".into() }, fsync("f")]);
        let analysis = analyze(&log, &workload, true);
        assert_eq!(analysis.windows.len(), 1);
        let WindowClass::Hazard { races } = &analysis.windows[0].class else {
            panic!("expected hazard, got {:?}", analysis.windows[0].class);
        };
        assert_eq!(races.len(), 1);
        let race = &analysis.races[races[0]];
        assert_eq!(race.kind, RaceKind::UnorderedWrites);
        assert_eq!(race.first.block, 1);
        assert_eq!(race.second.block, 2);
        assert_eq!(race.pending_writes, 2);
        assert_eq!(race.op_descriptions.len(), 2);
    }

    #[test]
    fn unflushed_rename_is_reported() {
        let log = record(&[
            Step::Write(1, b"dirent"),
            Step::Write(2, b"inode"),
            Step::Checkpoint,
        ]);
        let workload = Workload::new(
            "rename",
            vec![
                Op::Rename {
                    from: "a".into(),
                    to: "b".into(),
                },
                fsync("b"),
            ],
        );
        let analysis = analyze(&log, &workload, true);
        assert!(analysis
            .races
            .iter()
            .any(|race| race.kind == RaceKind::UnflushedRename));
    }

    #[test]
    fn repeated_and_empty_states_are_quiescent() {
        let log = record(&[
            // Marker 1: no writes at all -> base image.
            Step::Checkpoint,
            // Marker 2: new content.
            Step::Write(1, b"x"),
            Step::Flush,
            Step::Checkpoint,
            // Marker 3: block 1 rewritten to the same final bytes -> the
            // content digest matches marker 2.
            Step::Write(1, b"x"),
            Step::Checkpoint,
        ]);
        let workload = Workload::new("quiesce", vec![fsync("a"), fsync("a"), fsync("a")]);
        let analysis = analyze(&log, &workload, true);
        assert_eq!(analysis.windows.len(), 3);
        assert_eq!(
            analysis.windows[0].class,
            WindowClass::Quiescent { witness: None }
        );
        assert_eq!(analysis.windows[1].class, WindowClass::Ordered);
        assert_eq!(
            analysis.windows[2].class,
            WindowClass::Quiescent { witness: Some(2) }
        );
        assert_eq!(analysis.quiescent_windows(), 2);
        assert_eq!(analysis.hazard_windows(), 0);
    }

    #[test]
    fn pending_writes_carry_across_markers_until_flushed() {
        // A write before marker 1 is still unflushed at marker 2: the
        // second window inherits the race even though the new write is the
        // only one in its own window.
        let log = record(&[
            Step::Write(1, b"a"),
            Step::Checkpoint,
            Step::Write(2, b"b"),
            Step::Checkpoint,
        ]);
        let workload = Workload::new("carry", vec![fsync("a"), fsync("b")]);
        let analysis = analyze(&log, &workload, true);
        assert_eq!(analysis.windows[0].class, WindowClass::Ordered);
        assert!(matches!(
            analysis.windows[1].class,
            WindowClass::Hazard { .. }
        ));
    }

    #[test]
    fn display_mentions_races_and_witnesses() {
        let log = record(&[
            Step::Write(1, b"a"),
            Step::Write(2, b"b"),
            Step::Checkpoint,
            Step::Checkpoint,
        ]);
        let workload = Workload::new("show", vec![fsync("a"), fsync("b")]);
        let analysis = analyze(&log, &workload, true);
        let text = analysis.to_string();
        assert!(text.contains("unordered-writes"), "{text}");
        assert!(text.contains("bit-identical to crash point 1"), "{text}");
    }

    #[test]
    fn state_digests_match_analysis_windows() {
        let log = record(&[
            Step::Write(1, b"a"),
            Step::Checkpoint,
            Step::Write(2, b"b"),
            Step::Checkpoint,
        ]);
        let workload = Workload::new("digests", vec![fsync("a"), fsync("b")]);
        let analysis = analyze(&log, &workload, true);
        let digests = state_digests(&log);
        assert_eq!(digests.len(), 2);
        for (window, (id, digest)) in analysis.windows.iter().zip(&digests) {
            assert_eq!(window.checkpoint, *id);
            assert_eq!(window.state_digest, *digest);
        }
    }
}
