//! The happens-before model over a recorded IO stream, and the race and
//! triage analyses built on it.
//!
//! The model (docs/ANALYSIS.md): a recorded [`IoLog`] is a sequence of block
//! writes, `Flush` barriers, and `Checkpoint` markers (one per completed
//! persistence operation). Flush barriers are the only ordering the storage
//! stack guarantees — a write issued before a flush is persisted before any
//! write issued after it. Writes between two consecutive barriers form one
//! *flush epoch* and are mutually unordered: a crash may expose them in any
//! subset/order the hardware chooses. The happens-before relation is
//! therefore the total order on epochs lifted to writes, with writes inside
//! one epoch incomparable.
//!
//! Two products are derived per workload:
//!
//! * **Persistence races** — pairs of incomparable writes pending at a crash
//!   point (plus the rename/fsync special case), each mapped back to the
//!   syscall span that produced them.
//! * **Crash-window triage** — each crash point is classified as a *hazard
//!   window* (incomparable writes pending: the exposed state is one of
//!   several legal reorderings) or as *ordered* (every pending pair is
//!   flush-separated), and — when its content digest matches an
//!   already-seen state — as *provably quiescent*: bit-identical to a
//!   neighbor that has already been tested.

use std::collections::HashMap;

use b3_block::{BlockIndex, CheckpointId, IoLog, IoRecord};
use b3_vfs::{Op, Workload, WriteMode};

use crate::digest::StateDigest;

/// A write that is part of a race: where it landed and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    /// Sequence number of the write record in the log.
    pub seq: u64,
    /// Destination block.
    pub block: BlockIndex,
}

/// The kind of a reported persistence race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two writes to different blocks share a flush epoch at a crash point:
    /// the crash may persist either, both, or neither.
    UnorderedWrites,
    /// A rename executed in the window but its metadata writes are not
    /// followed by a flush barrier before the crash point, so the crash can
    /// expose a half-renamed namespace (the classic rename/fsync bug shape).
    UnflushedRename,
}

impl RaceKind {
    /// Short tag used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RaceKind::UnorderedWrites => "unordered-writes",
            RaceKind::UnflushedRename => "unflushed-rename",
        }
    }
}

/// One persistence race left open at a crash point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceRace {
    /// The race's kind.
    pub kind: RaceKind,
    /// The crash point (checkpoint marker) the race is pending at.
    pub checkpoint: CheckpointId,
    /// The two incomparable writes ([`RaceKind::UnflushedRename`] reports
    /// the rename's first and last pending metadata write).
    pub first: RaceSite,
    /// See [`PersistenceRace::first`].
    pub second: RaceSite,
    /// Total incomparable writes pending in the epoch this race belongs to
    /// (the two sites above are representatives).
    pub pending_writes: usize,
    /// The syscall span `[start, end]` (indices into the workload's
    /// `all_ops()` order) that produced the window's writes.
    pub op_span: (usize, usize),
    /// Human-readable description of the syscalls in the span.
    pub op_descriptions: Vec<String>,
}

/// How a crash window was classified by the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowClass {
    /// The state is bit-identical (by content digest) to an earlier crash
    /// state of the same log: crash point `witness` for states repeating an
    /// earlier marker, or the base image when no write has landed yet.
    Quiescent {
        /// The earlier checkpoint this state is bit-identical to; `None`
        /// means the state equals the base (pre-workload) image.
        witness: Option<CheckpointId>,
    },
    /// New state, and every pending write pair is separated by a flush
    /// barrier: exactly one legal post-crash content.
    Ordered,
    /// New state with incomparable pending writes: the exposed content is
    /// one of several legal reorderings.
    Hazard {
        /// Indices into [`Analysis::races`] of the races pending here.
        races: Vec<usize>,
    },
}

impl WindowClass {
    /// Short tag used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            WindowClass::Quiescent { .. } => "quiescent",
            WindowClass::Ordered => "ordered",
            WindowClass::Hazard { .. } => "hazard",
        }
    }
}

/// One crash point (checkpoint marker) and what the analysis concluded
/// about the window of IO leading up to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashWindow {
    /// The checkpoint marker id (1-based).
    pub checkpoint: CheckpointId,
    /// Number of write records in the window (since the previous marker).
    pub writes: usize,
    /// Number of flush barriers inside the window.
    pub flushes: usize,
    /// Content digest of the crash state cut at this marker.
    pub state_digest: u128,
    /// The syscall span `[start, end]` (indices into `all_ops()` order)
    /// whose execution produced this window, when the workload structure
    /// could be aligned with the marker stream.
    pub op_span: Option<(usize, usize)>,
    /// The persistence operation that created this marker, e.g. `"fsync A"`.
    pub op_description: String,
    /// The classification.
    pub class: WindowClass,
}

/// The full analysis of one workload's recorded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The workload's name.
    pub workload_name: String,
    /// One entry per checkpoint marker, in marker order.
    pub windows: Vec<CrashWindow>,
    /// Every reported race, in discovery order.
    pub races: Vec<PersistenceRace>,
    /// Total flush epochs in the log (barrier count + 1).
    pub epochs: usize,
}

impl Analysis {
    /// Number of hazard windows.
    pub fn hazard_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| matches!(w.class, WindowClass::Hazard { .. }))
            .count()
    }

    /// Number of provably-quiescent windows.
    pub fn quiescent_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| matches!(w.class, WindowClass::Quiescent { .. }))
            .count()
    }
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "workload {}: {} crash points, {} flush epochs, {} races, {} hazard / {} quiescent",
            self.workload_name,
            self.windows.len(),
            self.epochs,
            self.races.len(),
            self.hazard_windows(),
            self.quiescent_windows(),
        )?;
        for window in &self.windows {
            let span = match window.op_span {
                Some((start, end)) if start == end => format!("op {start}"),
                Some((start, end)) => format!("ops {start}..={end}"),
                None => "ops ?".to_string(),
            };
            writeln!(
                f,
                "  crash point {} ({}; {}): {} writes, {} flushes -> {}",
                window.checkpoint,
                window.op_description,
                span,
                window.writes,
                window.flushes,
                window.class.as_str(),
            )?;
            match &window.class {
                WindowClass::Quiescent { witness: Some(w) } => {
                    writeln!(f, "    bit-identical to crash point {w}")?;
                }
                WindowClass::Quiescent { witness: None } => {
                    writeln!(f, "    bit-identical to the base image")?;
                }
                WindowClass::Hazard { races } => {
                    for &index in races {
                        let race = &self.races[index];
                        writeln!(
                            f,
                            "    race [{}]: write seq {} (block {}) vs write seq {} (block {}), {} pending; from {}",
                            race.kind.as_str(),
                            race.first.seq,
                            race.first.block,
                            race.second.seq,
                            race.second.block,
                            race.pending_writes,
                            race.op_descriptions.join("; "),
                        )?;
                    }
                }
                WindowClass::Ordered => {}
            }
        }
        Ok(())
    }
}

/// Indices (into `all_ops()` order) of the operations that insert checkpoint
/// markers, mirroring the profiler's rule: persistence points always, plus
/// direct writes when the configuration models them as persistence points.
fn checkpoint_op_indices(
    workload: &Workload,
    direct_write_is_persistence_point: bool,
) -> Vec<usize> {
    workload
        .all_ops()
        .enumerate()
        .filter(|(_, op)| {
            op.is_persistence_point()
                || (direct_write_is_persistence_point
                    && matches!(
                        op,
                        Op::Write {
                            mode: WriteMode::Direct,
                            ..
                        }
                    ))
        })
        .map(|(index, _)| index)
        .collect()
}

/// Runs the static persistence-order analysis of one recorded execution.
///
/// `log` is the workload's recorded IO stream;
/// `direct_write_is_persistence_point` must match the profiling
/// configuration so that checkpoint markers align with syscall spans.
pub fn analyze(
    log: &IoLog,
    workload: &Workload,
    direct_write_is_persistence_point: bool,
) -> Analysis {
    let checkpoint_ops = checkpoint_op_indices(workload, direct_write_is_persistence_point);
    let all_ops: Vec<&Op> = workload.all_ops().collect();

    let mut windows = Vec::new();
    let mut races = Vec::new();
    let mut state = StateDigest::new();
    // Content digests of every crash state seen so far (plus the base
    // image), mapping digest -> first marker that exposed it.
    let mut seen: HashMap<u128, Option<CheckpointId>> = HashMap::new();
    seen.insert(state.value(), None);

    let mut epochs = 1usize;
    // Writes of the current window, grouped into epoch runs. Each entry is
    // one epoch's pending writes (cleared when a flush barrier retires it).
    let mut pending: Vec<RaceSite> = Vec::new();
    let mut window_writes = 0usize;
    let mut window_flushes = 0usize;
    let mut prev_checkpoint_op: Option<usize> = None;
    let mut markers_seen = 0usize;

    for record in log.records() {
        match record {
            IoRecord::Write {
                seq, index, data, ..
            } => {
                state.apply_write(*index, data);
                pending.push(RaceSite {
                    seq: *seq,
                    block: *index,
                });
                window_writes += 1;
            }
            IoRecord::Flush { .. } => {
                epochs += 1;
                window_flushes += 1;
                pending.clear();
            }
            IoRecord::Checkpoint { id, .. } => {
                let op_index = checkpoint_ops.get(markers_seen).copied();
                markers_seen += 1;
                let op_span = op_index.map(|end| {
                    let start = prev_checkpoint_op.map_or(0, |p| p + 1);
                    (start.min(end), end)
                });
                let op_description = op_index
                    .and_then(|i| all_ops.get(i))
                    .map_or_else(|| format!("marker {id}"), std::string::ToString::to_string);

                let digest = state.value();
                let class = if let Some(&witness) = seen.get(&digest) {
                    WindowClass::Quiescent { witness }
                } else {
                    seen.insert(digest, Some(*id));
                    let race_indices = detect_races(&pending, *id, op_span, &all_ops, &mut races);
                    if race_indices.is_empty() {
                        WindowClass::Ordered
                    } else {
                        WindowClass::Hazard {
                            races: race_indices,
                        }
                    }
                };

                windows.push(CrashWindow {
                    checkpoint: *id,
                    writes: window_writes,
                    flushes: window_flushes,
                    state_digest: digest,
                    op_span,
                    op_description,
                    class,
                });

                if let Some(end) = op_index {
                    prev_checkpoint_op = Some(end);
                }
                window_writes = 0;
                window_flushes = 0;
            }
        }
    }

    Analysis {
        workload_name: workload.name.clone(),
        windows,
        races,
        epochs,
    }
}

/// Reports the races pending at a crash point: the unordered tail epoch's
/// write pairs, plus the rename/fsync pattern when the span renamed.
fn detect_races(
    pending: &[RaceSite],
    checkpoint: CheckpointId,
    op_span: Option<(usize, usize)>,
    all_ops: &[&Op],
    races: &mut Vec<PersistenceRace>,
) -> Vec<usize> {
    let mut indices = Vec::new();
    // Two or more pending writes to distinct blocks are incomparable: the
    // crash may persist any subset.
    let distinct = {
        let mut blocks: Vec<BlockIndex> = pending.iter().map(|site| site.block).collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len()
    };
    if distinct < 2 {
        return indices;
    }
    let first = pending[0].clone();
    let second = pending
        .iter()
        .rev()
        .find(|site| site.block != first.block)
        .cloned()
        .unwrap_or_else(|| pending[pending.len() - 1].clone());
    let op_descriptions: Vec<String> = match op_span {
        Some((start, end)) => all_ops
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= start && *i <= end)
            .map(|(_, op)| op.to_string())
            .collect(),
        None => Vec::new(),
    };
    let span = op_span.unwrap_or((0, 0));
    let renamed = match op_span {
        Some((start, end)) => all_ops
            .iter()
            .enumerate()
            .any(|(i, op)| i >= start && i <= end && matches!(op, Op::Rename { .. })),
        None => false,
    };

    indices.push(races.len());
    races.push(PersistenceRace {
        kind: RaceKind::UnorderedWrites,
        checkpoint,
        first: first.clone(),
        second: second.clone(),
        pending_writes: pending.len(),
        op_span: span,
        op_descriptions: op_descriptions.clone(),
    });
    if renamed {
        indices.push(races.len());
        races.push(PersistenceRace {
            kind: RaceKind::UnflushedRename,
            checkpoint,
            first,
            second,
            pending_writes: pending.len(),
            op_span: span,
            op_descriptions,
        });
    }
    indices
}
