//! Deterministic content digests used by the analyzer and the triage cache.
//!
//! Two pieces:
//!
//! * [`Digest128`] — a streaming 128-bit FNV-1a digest (two independent
//!   64-bit lanes), used wherever a stable, platform-independent fingerprint
//!   of structured data is needed. It deliberately avoids `std`'s
//!   `DefaultHasher`, whose output is not specified across releases: triage
//!   keys feed audit sampling and cross-run comparisons, so they must never
//!   drift.
//! * [`StateDigest`] — an incrementally maintained digest of a crash
//!   state's *content*: the final bytes of every block written so far. Two
//!   prefixes of an IO log that leave the device with identical bytes get
//!   identical digests no matter how the writes were ordered or how often
//!   blocks were overwritten. Updates are O(1) per write via XOR-multiset
//!   hashing: the digest is the XOR of one term per written block, so an
//!   overwrite removes the stale term and mixes in the new one.

use std::collections::HashMap;

use b3_block::{BlockIndex, IoLog, IoRecord};

const SEED_LO: u64 = 0xcbf2_9ce4_8422_2325;
const SEED_HI: u64 = 0x6c62_272e_07bb_0142;
const PRIME_LO: u64 = 0x2545_f491_4f6c_dd1d;
const PRIME_HI: u64 = 0x9e37_79b9_7f4a_7c15;

/// A streaming 128-bit multiply-mix digest: two 64-bit lanes seeded with
/// the FNV offset bases, fed one 64-bit chunk at a time (the tail chunk is
/// zero-padded and the byte length of each `write` call is folded in, so
/// `"abc"` and `"abc\0"` digest differently).
///
/// Each `write` call is absorbed as a unit — the digest is a function of
/// the *sequence of calls*, not of the concatenated byte stream. Chunked
/// absorption is what makes hashing 4 KiB block payloads cheap enough for
/// the triage hot path (one multiply per 8 bytes instead of one per byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest128 {
    lo: u64,
    hi: u64,
}

impl Default for Digest128 {
    fn default() -> Self {
        Digest128::new()
    }
}

impl Digest128 {
    /// A fresh digest at the seed state.
    pub fn new() -> Self {
        Digest128 {
            lo: SEED_LO,
            hi: SEED_HI,
        }
    }

    #[inline]
    fn absorb(&mut self, chunk: u64) {
        self.lo = (self.lo ^ chunk).wrapping_mul(PRIME_LO);
        self.hi = (self.hi ^ chunk.rotate_left(32)).wrapping_mul(PRIME_HI);
    }

    /// Absorbs raw bytes (one multiply per 8-byte chunk, plus the length).
    pub fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.absorb(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut padded = [0u8; 8];
            padded[..tail.len()].copy_from_slice(tail);
            self.absorb(u64::from_le_bytes(padded));
        }
        self.absorb(bytes.len() as u64);
    }

    /// Absorbs a `u64` as one chunk.
    pub fn write_u64(&mut self, value: u64) {
        self.absorb(value);
    }

    /// Absorbs a `u32` as one chunk.
    pub fn write_u32(&mut self, value: u32) {
        self.absorb(u64::from(value));
    }

    /// Absorbs a length-prefixed string, so `("ab", "c")` and `("a", "bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest value accumulated so far.
    pub fn value(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// One-shot digest of a byte string.
    pub fn of(bytes: &[u8]) -> u128 {
        let mut d = Digest128::new();
        d.write(bytes);
        d.value()
    }
}

/// The content digest of the device state a crash at "now" would expose:
/// base image plus the final payload of every block written so far.
///
/// Maintained incrementally while scanning an [`IoLog`]: feed every write in
/// record order, read [`StateDigest::value`] at each crash point. The digest
/// is order-insensitive by construction — it depends only on each block's
/// *final* contents — which is exactly the bit-identity the triage layer
/// needs: two crash states with equal digests expose equal device bytes
/// (up to digest collision) regardless of the write history behind them.
#[derive(Debug, Clone, Default)]
pub struct StateDigest {
    acc: u128,
    terms: HashMap<BlockIndex, u128>,
}

impl StateDigest {
    /// An empty state (no blocks written over the base image).
    pub fn new() -> Self {
        StateDigest::default()
    }

    /// Records that `index` now holds `data`, replacing any earlier write
    /// to the same block.
    pub fn apply_write(&mut self, index: BlockIndex, data: &[u8]) {
        let mut term = Digest128::new();
        term.write_u64(index);
        term.write(data);
        let term = term.value();
        if let Some(old) = self.terms.insert(index, term) {
            self.acc ^= old;
        }
        self.acc ^= term;
    }

    /// The digest of the current state.
    pub fn value(&self) -> u128 {
        self.acc
    }

    /// Number of distinct blocks written so far.
    pub fn blocks_written(&self) -> usize {
        self.terms.len()
    }
}

/// The cumulative [`StateDigest`] value at every checkpoint marker of a log,
/// in marker order: `(checkpoint id, content digest of the crash state cut
/// at that marker)`.
pub fn state_digests(log: &IoLog) -> Vec<(b3_block::CheckpointId, u128)> {
    let mut state = StateDigest::new();
    let mut out = Vec::with_capacity(log.num_checkpoints() as usize);
    for record in log.records() {
        match record {
            IoRecord::Write { index, data, .. } => state.apply_write(*index, data),
            IoRecord::Checkpoint { id, .. } => out.push((*id, state.value())),
            IoRecord::Flush { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest128_is_stable_and_length_prefixed() {
        let mut a = Digest128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.value(), b.value());
        // Pinned value: the digest feeds persisted audit sampling, so it
        // must never change across releases.
        assert_eq!(
            Digest128::of(b"b3"),
            0x0a8b_8dd7_1023_dab2_6f29_1e14_dd17_bd05
        );
    }

    #[test]
    fn state_digest_depends_on_final_content_only() {
        let mut a = StateDigest::new();
        a.apply_write(1, b"one");
        a.apply_write(2, b"two");
        a.apply_write(1, b"one-final");

        let mut b = StateDigest::new();
        b.apply_write(2, b"scratch");
        b.apply_write(2, b"two");
        b.apply_write(1, b"one-final");

        assert_eq!(a.value(), b.value());
        assert_eq!(a.blocks_written(), 2);

        let mut c = StateDigest::new();
        c.apply_write(1, b"one-final");
        c.apply_write(2, b"two-x");
        assert_ne!(a.value(), c.value());
    }

    #[test]
    fn state_digest_distinguishes_block_indices() {
        let mut a = StateDigest::new();
        a.apply_write(1, b"same");
        let mut b = StateDigest::new();
        b.apply_write(2, b"same");
        assert_ne!(a.value(), b.value());
    }
}
